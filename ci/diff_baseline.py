#!/usr/bin/env python3
"""Diff a gate JSON's metrics block against a committed baseline.

Usage: diff_baseline.py LABEL CURRENT.json BASELINE.json

Only keys present in the baseline are compared — that is the contract
that lets nondeterministic metrics (wall-clock latency, pps) ride in the
same JSON as the deterministic counters: baselines simply omit them.
New metrics absent from the baseline are noted, never failed, so adding
instrumentation does not break CI. Exit 1 on any drift in a baselined
metric.

Shared by the scenario matrix and the live-smoke job in
.github/workflows/ci.yml; edit the comparison logic here, in one place.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    label, cur_path, base_path = sys.argv[1:4]
    with open(cur_path) as f:
        cur = json.load(f)
    with open(base_path) as f:
        base = json.load(f)
    bad = []
    for k, v in base["metrics"].items():
        got = cur["metrics"].get(k)
        if got != v:
            bad.append(f"{k}: baseline {v} -> current {got}")
    missing = [k for k in cur["metrics"] if k not in base["metrics"]]
    if missing:
        print("note: new metrics not in baseline:", ", ".join(missing))
    if bad:
        print(f"{label}: metric regressions vs {base_path}:")
        print("\n".join("  " + b for b in bad))
        return 1
    print(f"{label}: {len(base['metrics'])} metrics match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
