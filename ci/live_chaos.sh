#!/usr/bin/env bash
# Live crash/restart drill: auth daemon -> relay daemon -> loadgen over
# real UDP sockets, with the relay SIGKILLed mid-run and restarted on
# the same address. The chaos-profile loadgen runs short-idle clients
# that auto-redial, so the gate is crash recovery end to end:
#
#   * every client notices the dead relay (idle timeout), redials, and
#     re-subscribes through the restarted process (`clients_redialed`);
#   * the retry count stays bounded (`stub_redials_bounded` — no redial
#     storm against the dead address);
#   * the replay still converges on the final published TXT version
#     (`final_version_complete` — the rejoin's joining fetch recovers
#     rounds published while the relay was down);
#   * both daemons drain cleanly on SIGTERM, including the restarted
#     relay that inherited stale-DCID traffic from its predecessor.
#
# Used by the CI `live` job and runnable locally:
#   cargo build --release -p moqdns-relayd && ci/live_chaos.sh
set -u

BIN=${BIN:-target/release}
AUTH_ADDR=127.0.0.1:4490
RELAY_ADDR=127.0.0.1:4491
OUT=${OUT:-results/live_chaos.json}
ROUNDS=6

mkdir -p results

start_relay() {
    "$BIN"/moqdns-relayd --mode relay --listen "$RELAY_ADDR" --workers 2 \
        --parent "$AUTH_ADDR" &
    RELAY_PID=$!
}

# Rounds r1..r6 publish at 1.5s + 0.6s*(r-1), i.e. the last lands at
# ~4.5s — squarely inside the kill window, so convergence *requires*
# the rejoin fetch to recover it.
"$BIN"/moqdns-relayd --mode auth --listen "$AUTH_ADDR" --workers 2 \
    --tracks 8 --rounds "$ROUNDS" --interval-ms 600 &
AUTH_PID=$!
sleep 0.5
start_relay
sleep 0.5

# Chaos clients: 1.5s idle + 400ms keep-alive detects the kill in
# seconds; 250ms redial bounds the reconnect latency. The 25s deadline
# leaves room for detection + restart + reconvergence on slow runners.
timeout 35 "$BIN"/moqdns-loadgen --server "$RELAY_ADDR" --rounds "$ROUNDS" \
    --profile chaos --deadline-ms 25000 \
    --idle-ms 1500 --keep-alive-ms 400 --redial-ms 250 \
    --check --json "$OUT" &
LOADGEN_PID=$!

# Kill -9 the relay mid-run: no CONNECTION_CLOSE, no drain — the clients
# and the auth are left holding connections to a corpse.
sleep 2.5
kill -9 "$RELAY_PID" 2>/dev/null
wait "$RELAY_PID" 2>/dev/null
echo "live_chaos: relay SIGKILLed at t=2.5s"

# Restart on the same address after a dark window. The new process has
# none of its predecessor's QUIC state: stale-DCID packets are dropped,
# clients attach via fresh handshakes, and the relay re-subscribes
# upstream on demand.
sleep 1.5
start_relay
echo "live_chaos: relay restarted at t=4.0s (pid $RELAY_PID)"

wait "$LOADGEN_PID"
LOADGEN_RC=$?

# Graceful drain: SIGTERM the auth and the *restarted* relay; their exit
# codes are part of the gate (nonzero = a worker died or the drain was
# unclean).
kill -TERM "$RELAY_PID" "$AUTH_PID" 2>/dev/null
wait "$RELAY_PID"
RELAY_RC=$?
wait "$AUTH_PID"
AUTH_RC=$?

echo "live_chaos: loadgen=$LOADGEN_RC relay_drain=$RELAY_RC auth_drain=$AUTH_RC"
if [ "$LOADGEN_RC" -ne 0 ] || [ "$RELAY_RC" -ne 0 ] || [ "$AUTH_RC" -ne 0 ]; then
    exit 1
fi
exit 0
