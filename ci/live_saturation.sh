#!/usr/bin/env bash
# Live saturation smoke: auth daemon -> relay daemon -> loadgen in
# sustained-rate mode, all over real UDP sockets.
#
# Used by the CI `live` job and runnable locally:
#   cargo build --release -p moqdns-relayd && ci/live_saturation.sh
#
# The loadgen first converges the ordinary smoke plan (same deterministic
# gates as live_smoke), then holds an open-loop probe rate — standalone
# MoQT fetches, each a full wire round-trip — for a fixed duration.
# RATE/DURATION are deliberately low for CI (a functional smoke of the
# saturation path, not a throughput measurement); achieved pps and the
# latency tails ride in the JSON artifact but are never exact-diffed.
# The ramp search for the actual knee is a local/bench concern (--ramp;
# see BENCH_PR9.json and the ROADMAP methodology note).
set -u

BIN=${BIN:-target/release}
AUTH_ADDR=127.0.0.1:4480
RELAY_ADDR=127.0.0.1:4481
OUT=${OUT:-results/live_saturation.json}
ROUNDS=5
RATE=${RATE:-2000}
DURATION=${DURATION:-5}

mkdir -p results

"$BIN"/moqdns-relayd --mode auth --listen "$AUTH_ADDR" --workers 2 \
    --tracks 8 --rounds "$ROUNDS" --interval-ms 400 &
AUTH_PID=$!
sleep 0.5
"$BIN"/moqdns-relayd --mode relay --listen "$RELAY_ADDR" --workers 2 \
    --parent "$AUTH_ADDR" &
RELAY_PID=$!
sleep 0.5

# Budget: plan convergence (~3 s) + the rate phase + grace. The shared
# sockets (4 clients each) exercise the DCID demux path in CI.
timeout 40 "$BIN"/moqdns-loadgen --server "$RELAY_ADDR" --rounds "$ROUNDS" \
    --profile saturation --clients-per-socket 4 \
    --rate "$RATE" --duration "$DURATION" \
    --check --json "$OUT"
LOADGEN_RC=$?

kill -TERM "$RELAY_PID" "$AUTH_PID" 2>/dev/null
wait "$RELAY_PID"
RELAY_RC=$?
wait "$AUTH_PID"
AUTH_RC=$?

echo "live_saturation: loadgen=$LOADGEN_RC relay_drain=$RELAY_RC auth_drain=$AUTH_RC"
if [ "$LOADGEN_RC" -ne 0 ] || [ "$RELAY_RC" -ne 0 ] || [ "$AUTH_RC" -ne 0 ]; then
    exit 1
fi
exit 0
