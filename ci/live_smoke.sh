#!/usr/bin/env bash
# Live loopback smoke: auth daemon -> relay daemon -> loadgen, all over
# real UDP sockets, with the loadgen's invariant gate as the verdict.
#
# Used by the CI `live` job and runnable locally:
#   cargo build --release -p moqdns-relayd && ci/live_smoke.sh
#
# Gated hard (deterministic): complete delivery at the final published
# version, monotone updates, zero lookup failures, clean drain exit codes
# from both daemons on SIGTERM. Latency/pps land in the JSON for the
# artifact upload but are never exact-diffed.
set -u

BIN=${BIN:-target/release}
AUTH_ADDR=127.0.0.1:4470
RELAY_ADDR=127.0.0.1:4471
OUT=${OUT:-results/live_smoke.json}
ROUNDS=5

mkdir -p results

"$BIN"/moqdns-relayd --mode auth --listen "$AUTH_ADDR" --workers 2 \
    --tracks 8 --rounds "$ROUNDS" --interval-ms 400 &
AUTH_PID=$!
sleep 0.5
"$BIN"/moqdns-relayd --mode relay --listen "$RELAY_ADDR" --workers 2 \
    --parent "$AUTH_ADDR" &
RELAY_PID=$!
sleep 0.5

# The 30 s budget bounds the whole replay; the loadgen's own deadline is
# tighter and fails the completeness gates first with a readable JSON.
timeout 30 "$BIN"/moqdns-loadgen --server "$RELAY_ADDR" --rounds "$ROUNDS" \
    --check --json "$OUT"
LOADGEN_RC=$?

# Graceful drain: SIGTERM both daemons; their exit codes are part of the
# gate (nonzero = a worker died or the drain was unclean).
kill -TERM "$RELAY_PID" "$AUTH_PID" 2>/dev/null
wait "$RELAY_PID"
RELAY_RC=$?
wait "$AUTH_PID"
AUTH_RC=$?

echo "live_smoke: loadgen=$LOADGEN_RC relay_drain=$RELAY_RC auth_drain=$AUTH_RC"
if [ "$LOADGEN_RC" -ne 0 ] || [ "$RELAY_RC" -ne 0 ] || [ "$AUTH_RC" -ne 0 ]; then
    exit 1
fi
exit 0
