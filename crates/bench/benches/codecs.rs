//! Criterion micro-benchmarks: wire-format codecs.
//!
//! These measure the per-message cost of the encoders/decoders on the hot
//! paths: DNS messages (with name compression), MoQT control messages and
//! objects, and QUIC varints/frames.

use criterion::{criterion_group, criterion_main, Criterion};
use moqdns_core::mapping::{object_from_response, track_from_question, RequestFlags};
use moqdns_dns::message::{Message, Question};
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_moqt::message::{ControlMessage, FilterType};
use moqdns_wire::{varint, Reader, Writer};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn dns_response() -> Message {
    let q = Question::new("www.example.com".parse().unwrap(), RecordType::A);
    let mut m = Message::query(0x1234, q);
    m.header.qr = true;
    m.header.aa = true;
    for i in 0..4 {
        m.answers.push(Record::new(
            "www.example.com".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, i + 1)),
        ));
    }
    m.authorities.push(Record::new(
        "example.com".parse().unwrap(),
        3600,
        RData::NS("ns1.example.com".parse().unwrap()),
    ));
    m
}

fn bench_dns_codec(c: &mut Criterion) {
    let msg = dns_response();
    let wire = msg.encode();
    c.bench_function("dns/encode_response", |b| {
        b.iter(|| black_box(&msg).encode())
    });
    c.bench_function("dns/decode_response", |b| {
        b.iter(|| Message::decode(black_box(&wire)).unwrap())
    });
}

fn bench_moqt_codec(c: &mut Criterion) {
    let q = Question::new("www.example.com".parse().unwrap(), RecordType::A);
    let track = track_from_question(&q, RequestFlags::recursive()).unwrap();
    let sub = ControlMessage::Subscribe {
        request_id: 2,
        track_alias: 2,
        track: track.clone(),
        filter: FilterType::LatestObject,
    };
    let wire = sub.encode();
    c.bench_function("moqt/encode_subscribe", |b| {
        b.iter(|| black_box(&sub).encode())
    });
    c.bench_function("moqt/decode_subscribe", |b| {
        b.iter(|| ControlMessage::decode(black_box(&wire)).unwrap())
    });
    let resp = dns_response();
    c.bench_function("moqt/dns_object_wrap", |b| {
        b.iter(|| object_from_response(black_box(&resp), 42))
    });
}

fn bench_varint(c: &mut Criterion) {
    c.bench_function("wire/varint_roundtrip", |b| {
        b.iter(|| {
            let mut w = Writer::with_capacity(64);
            for v in [0u64, 63, 16_000, 1 << 29, 1 << 61] {
                varint::put_varint(&mut w, black_box(v));
            }
            let buf = w.into_vec();
            let mut r = Reader::new(&buf);
            let mut sum = 0u64;
            while !r.is_empty() {
                sum = sum.wrapping_add(varint::get_varint(&mut r).unwrap());
            }
            sum
        })
    });
}

fn bench_mapping(c: &mut Criterion) {
    let q = Question::new(
        "www.some-long-domain-name.example.com".parse().unwrap(),
        RecordType::HTTPS,
    );
    c.bench_function("mapping/track_from_question", |b| {
        b.iter(|| track_from_question(black_box(&q), RequestFlags::recursive()).unwrap())
    });
}

criterion_group!(
    benches,
    bench_dns_codec,
    bench_moqt_codec,
    bench_varint,
    bench_mapping
);
criterion_main!(benches);
