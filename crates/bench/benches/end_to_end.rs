//! Criterion macro-benchmark: a complete simulated DNS-over-MoQT world per
//! iteration — build the hierarchy, resolve a name end to end (classic vs
//! MoQT), push one update. Measures the whole-stack event-processing cost,
//! which bounds how large the traffic experiments can scale.

use criterion::{criterion_group, criterion_main, Criterion};
use moqdns_bench::worlds::{World, WorldSpec};
use moqdns_core::recursive::UpstreamMode;
use moqdns_core::stub::{StubMode, StubResolver};
use std::hint::black_box;
use std::time::Duration;

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e");
    g.sample_size(20);
    g.bench_function("classic_full_lookup", |b| {
        b.iter(|| {
            let spec = WorldSpec {
                seed: 1,
                mode: UpstreamMode::Classic,
                stub_mode: StubMode::Classic,
                ..WorldSpec::default()
            };
            let mut w = World::build(&spec);
            w.lookup(0, "www", Duration::from_secs(3));
            let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
            assert!(stub.metrics.lookups[0].ok);
            black_box(w.sim.now())
        })
    });
    g.bench_function("moqt_full_lookup", |b| {
        b.iter(|| {
            let spec = WorldSpec {
                seed: 1,
                ..WorldSpec::default()
            };
            let mut w = World::build(&spec);
            w.lookup(0, "www", Duration::from_secs(3));
            let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
            assert!(stub.metrics.lookups[0].ok);
            black_box(w.sim.now())
        })
    });
    g.bench_function("moqt_lookup_plus_update_push", |b| {
        b.iter(|| {
            let spec = WorldSpec {
                seed: 1,
                ..WorldSpec::default()
            };
            let mut w = World::build(&spec);
            w.lookup(0, "www", Duration::from_secs(3));
            w.update_record("www", 42);
            w.sim.run_for(Duration::from_secs(1));
            let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
            assert!(!stub.metrics.updates.is_empty());
            black_box(w.sim.now())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
