//! Criterion micro-benchmarks: the two hot paths the paper's experiments
//! lean on — relay object fan-out (publish → N subscribers) and the DNS
//! TTL cache under eviction pressure.
//!
//! The fan-out benchmark demonstrates that publish cost is O(1) in
//! subscriber count for payload bytes copied: one encode per object,
//! payload shared by reference across subscribers. The cache benchmark
//! exercises insert-at-capacity, which must not do a full-map scan.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moqdns_dns::cache::Cache;
use moqdns_dns::message::Rcode;
use moqdns_dns::name::Name;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_moqt::data::Object;
use moqdns_moqt::relay::RelayCore;
use moqdns_moqt::track::FullTrackName;
use moqdns_netsim::SimTime;
use std::hint::black_box;
use std::time::Duration;

fn track() -> FullTrackName {
    FullTrackName::new(
        vec![vec![0x02], vec![0x00, 0x01], vec![0x00, 0x01]],
        b"\x03www\x07example\x03com\x00".to_vec(),
    )
    .unwrap()
}

/// A typical DNS response payload (~512 bytes of records).
fn payload_bytes() -> Vec<u8> {
    (0..512u32).map(|i| (i % 251) as u8).collect()
}

fn bench_relay_fanout(c: &mut Criterion) {
    for subs in [1usize, 8, 64, 256] {
        let mut g = c.benchmark_group("fanout/publish");
        g.throughput(Throughput::Elements(subs as u64));
        g.bench_function(format!("{subs}_subscribers"), |b| {
            let mut relay = RelayCore::new(8);
            for s in 0..subs {
                relay.on_downstream_subscribe(s as u64, 2, track());
            }
            let data = payload_bytes();
            let mut group = 0u64;
            b.iter(|| {
                group += 1;
                let object = Object {
                    group_id: group,
                    object_id: 0,
                    payload: data.clone().into(),
                };
                let actions = relay.on_upstream_object(&track(), object);
                assert_eq!(actions.len(), subs);
                black_box(actions)
            })
        });
        g.finish();
    }
}

fn bench_cache_insert_at_capacity(c: &mut Criterion) {
    const CAP: usize = 4096;
    let names: Vec<Name> = (0..CAP + 1024)
        .map(|i| format!("host-{i}.example.com").parse().unwrap())
        .collect();
    c.bench_function("fanout/cache_insert_at_capacity", |b| {
        let mut cache = Cache::new(CAP);
        let t0 = SimTime::from_secs(0);
        for (i, n) in names.iter().take(CAP).enumerate() {
            cache.insert(
                t0 + Duration::from_millis(i as u64),
                n,
                RecordType::A,
                vec![Record::new(
                    n.clone(),
                    3600,
                    RData::A([192, 0, 2, 1].into()),
                )],
            );
        }
        let mut i = 0usize;
        b.iter(|| {
            // Every insert lands in a full cache and must evict.
            i = (i + 1) % names.len();
            let now = SimTime::from_secs(10) + Duration::from_millis(i as u64);
            cache.insert(
                now,
                &names[i],
                RecordType::A,
                vec![Record::new(
                    names[i].clone(),
                    3600,
                    RData::A([192, 0, 2, 2].into()),
                )],
            );
            black_box(cache.len())
        })
    });
}

fn bench_cache_churn(c: &mut Criterion) {
    // Mixed get/insert/expiry workload: the §2 TTL machinery under load.
    const CAP: usize = 4096;
    let names: Vec<Name> = (0..CAP)
        .map(|i| format!("churn-{i}.example.com").parse().unwrap())
        .collect();
    c.bench_function("fanout/cache_mixed_churn", |b| {
        let mut cache = Cache::new(CAP);
        let mut tick = 0u64;
        b.iter(|| {
            tick += 1;
            let now = SimTime::from_secs(tick / 64);
            let n = &names[(tick as usize * 7) % names.len()];
            if tick.is_multiple_of(4) {
                cache.insert(
                    now,
                    n,
                    RecordType::A,
                    vec![Record::new(n.clone(), 30, RData::A([192, 0, 2, 3].into()))],
                );
            } else if tick.is_multiple_of(97) {
                cache.insert_negative(now, n, RecordType::AAAA, Rcode::NxDomain, 30);
            } else {
                black_box(cache.get(now, n, RecordType::A));
            }
            black_box(cache.len())
        })
    });
}

criterion_group!(
    benches,
    bench_relay_fanout,
    bench_cache_insert_at_capacity,
    bench_cache_churn
);
criterion_main!(benches);
