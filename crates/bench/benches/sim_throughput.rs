//! Criterion micro-benchmarks: the simulator's data plane itself.
//!
//! The metro-scale scenario made the *simulator* the bottleneck, so its
//! raw machinery gets its own benchmarks alongside the protocol ones:
//!
//! * `events_per_sec` — the bare event loop: a ring of nodes forwarding
//!   a datagram hop after hop. Measures scheduler push/pop plus link
//!   lookup plus delivery dispatch, with `Throughput::Elements` =
//!   executed events so the report reads directly in events/sec;
//! * `timer_churn` — arm-then-cancel timer storms (the keep-alive
//!   re-arm pattern at 10k-stub scale), exercising the generation-
//!   tagged slot recycling;
//! * `federation_stampede` / `federation_update_round` — the standing
//!   cross-region federation world built (joining-fetch stampede) and
//!   driven through one full update round, in-process so wall-clock
//!   comparisons are free of process startup noise. Elements =
//!   deliveries, so the report reads in deliveries/sec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moqdns_bench::worlds::{FederationWorld, MetroWorld};
use moqdns_netsim::{Addr, Ctx, LinkConfig, Node, NodeId, Payload, Simulator};
use moqdns_workload::scenarios::{FederationScenario, MetroScenario};
use std::any::Any;
use std::hint::black_box;
use std::time::Duration;

/// Forwards every datagram to the next node in the ring, `hops` times.
struct RingHop {
    next: Option<Addr>,
    remaining: u64,
}

impl Node for RingHop {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, _from: Addr, to_port: u16, p: Payload) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(to_port, self.next.unwrap(), p);
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

fn bench_events_per_sec(c: &mut Criterion) {
    const NODES: usize = 64;
    const HOPS: u64 = 10_000;
    let mut g = c.benchmark_group("sim_throughput");
    // The token circulates until every node's countdown hits zero: the
    // run executes NODES * HOPS delivery events.
    g.throughput(Throughput::Elements(NODES as u64 * HOPS));
    g.bench_function("events_per_sec", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(7);
            sim.set_default_link(LinkConfig::with_delay(Duration::from_micros(50)));
            let ids: Vec<NodeId> = (0..NODES)
                .map(|i| {
                    sim.add_node(
                        format!("n{i}"),
                        Box::new(RingHop {
                            next: None,
                            remaining: HOPS,
                        }),
                    )
                })
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                let next = ids[(i + 1) % NODES];
                sim.with_node::<RingHop, _>(id, |n, _| n.next = Some(Addr::new(next, 1)));
            }
            sim.with_node::<RingHop, _>(ids[0], |_, ctx| {
                ctx.send(1, Addr::new(ids[1], 1), vec![0u8; 300]);
            });
            black_box(sim.run_until_idle())
        })
    });
    g.finish();
}

fn bench_timer_churn(c: &mut Criterion) {
    const TIMERS: u64 = 1_000;
    let mut g = c.benchmark_group("sim_throughput");
    g.throughput(Throughput::Elements(TIMERS));
    g.bench_function("timer_churn", |b| {
        let mut sim = Simulator::new(9);
        let a = sim.add_node(
            "a",
            Box::new(RingHop {
                next: None,
                remaining: 0,
            }),
        );
        sim.run_until_idle();
        b.iter(|| {
            // The keep-alive re-arm pattern: arm far out, cancel, re-arm.
            let ids: Vec<u64> = sim.with_node::<RingHop, _>(a, |_, ctx| {
                (0..TIMERS)
                    .map(|i| ctx.set_timer(Duration::from_millis(10 + (i % 97)), i))
                    .collect()
            });
            sim.with_node::<RingHop, _>(a, |_, ctx| {
                for id in ids {
                    ctx.cancel_timer(id);
                }
            });
            black_box(sim.run_for(Duration::from_millis(200)))
        })
    });
    g.finish();
}

fn bench_federation_world(c: &mut Criterion) {
    let spec = FederationScenario::federation();
    let mut g = c.benchmark_group("sim_throughput");
    g.throughput(Throughput::Elements(
        spec.stub_count() as u64 * spec.tracks as u64,
    ));
    g.sample_size(10);
    g.bench_function("federation_stampede", |b| {
        b.iter(|| black_box(FederationWorld::build(&spec, 91).delivered_updates()))
    });
    g.finish();

    let mut g = c.benchmark_group("sim_throughput");
    // One round delivers one update of every track to every stub.
    g.throughput(Throughput::Elements(
        spec.stub_count() as u64 * spec.tracks as u64,
    ));
    g.sample_size(10);
    g.bench_function("federation_update_round", |b| {
        let mut w = FederationWorld::build(&spec, 91);
        let mut octet = 0u8;
        b.iter(|| {
            octet = octet.wrapping_add(1);
            w.update_round(octet);
            black_box(w.delivered_updates())
        })
    });
    g.finish();
}

/// The sharded data plane against the single-threaded one: the metro
/// smoke world driven through update rounds at 0 (single), 1, 2, and 4
/// workers. The event history is bit-identical across the axis (the
/// parity tests pin that), so any delta is pure synchronization cost or
/// parallel speedup — on a multi-core box the curve should drop, on a
/// single hardware thread it shows the barrier overhead ceiling.
fn bench_parallel_scaling(c: &mut Criterion) {
    let spec = MetroScenario::metro().smoke();
    let mut g = c.benchmark_group("parallel_scaling");
    g.throughput(Throughput::Elements(
        spec.stub_count() as u64 * spec.tracks_per_stub as u64,
    ));
    g.sample_size(10);
    for workers in [0usize, 1, 2, 4] {
        let mut w = MetroWorld::build_with_workers(&spec, 91, workers);
        let mut octet = 0u8;
        g.bench_function(format!("metro_update_round/{workers}"), |b| {
            b.iter(|| {
                octet = octet.wrapping_add(1);
                w.update_round(octet);
                black_box(w.delivered_updates())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_events_per_sec,
    bench_timer_churn,
    bench_federation_world,
    bench_parallel_scaling
);
criterion_main!(benches);
