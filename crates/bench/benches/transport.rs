//! Criterion micro-benchmarks: the QUIC-like transport.
//!
//! Measures handshake cost (two connections exchanging flights in memory)
//! and bulk stream transfer throughput through the full sans-io pipeline
//! (framing, packetization, ACK processing, reassembly).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moqdns_netsim::SimTime;
use moqdns_quic::{Connection, Dir, TransportConfig};
use std::hint::black_box;
use std::time::Duration;

fn alpns() -> moqdns_quic::AlpnList {
    moqdns_quic::alpn_list(&[b"bench/1"])
}

/// Shuttles until quiet; returns the virtual end time.
fn shuttle(a: &mut Connection, b: &mut Connection, start: SimTime) -> SimTime {
    let mut now = start;
    for _ in 0..256 {
        let mut moved = false;
        while let Some(d) = a.poll_transmit(now) {
            moved = true;
            b.handle_datagram(now, &d);
        }
        while let Some(d) = b.poll_transmit(now) {
            moved = true;
            a.handle_datagram(now, &d);
        }
        now += Duration::from_micros(10);
        if !moved {
            break;
        }
    }
    now
}

fn bench_handshake(c: &mut Criterion) {
    c.bench_function("quic/handshake_pair", |b| {
        b.iter(|| {
            let t0 = SimTime::ZERO;
            let mut client = Connection::client(1, TransportConfig::default(), alpns(), None, t0);
            let mut server = Connection::server(1, TransportConfig::default(), alpns(), 9, t0);
            shuttle(&mut client, &mut server, t0);
            assert!(client.is_established());
            black_box((client, server))
        })
    });
}

fn bench_stream_transfer(c: &mut Criterion) {
    const SIZE: usize = 64 * 1024;
    let mut g = c.benchmark_group("quic/stream_transfer");
    g.throughput(Throughput::Bytes(SIZE as u64));
    g.bench_function("64KiB", |b| {
        b.iter(|| {
            let t0 = SimTime::ZERO;
            let mut client = Connection::client(1, TransportConfig::default(), alpns(), None, t0);
            let mut server = Connection::server(1, TransportConfig::default(), alpns(), 9, t0);
            let mut now = shuttle(&mut client, &mut server, t0);
            let id = client.open_stream(Dir::Uni).unwrap();
            let payload = vec![0xAB; SIZE];
            let mut written = 0;
            let mut received = 0;
            while received < SIZE {
                if written < SIZE {
                    written += client.send_stream(id, &payload[written..]).unwrap();
                }
                now = shuttle(&mut client, &mut server, now);
                loop {
                    let (chunk, _) = server.read_stream(id, usize::MAX).unwrap();
                    if chunk.is_empty() {
                        break;
                    }
                    received += chunk.len();
                }
            }
            black_box(received)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_handshake, bench_stream_transfer);
criterion_main!(benches);
