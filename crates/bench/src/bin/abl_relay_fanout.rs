//! A3 — ablation (§3): relay aggregation and caching.
//!
//! S subscribers of the same record, once connected directly to the
//! authoritative server and once through a MoQT relay. The relay must (a)
//! aggregate S downstream subscriptions into one upstream subscription,
//! (b) keep the authoritative server's egress constant in S, and (c)
//! serve late joiners' fetches from its object cache.
//!
//! Topologies come from `netsim::topo` (auth → relay → subs) instead of
//! hand-wired node lists.
//!
//! Run with `--smoke` for a scaled-down CI variant (fewer subscriber
//! counts, fewer updates) and `--check` to emit the machine-readable
//! invariant summary (`results/ci_relay_fanout.json`) and exit nonzero
//! on any violation.

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::TreeStub;
use moqdns_core::auth::AuthServer;
use moqdns_core::relay_node::RelayNode;
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_netsim::topo::TopoBuilder;
use moqdns_netsim::{Addr, LinkConfig, NodeId, SimTime, Simulator};
use moqdns_quic::TransportConfig;
use moqdns_stats::Table;
use std::net::Ipv4Addr;
use std::time::Duration;

struct Built {
    sim: Simulator,
    auth: NodeId,
    relay: Option<NodeId>,
    subs: Vec<NodeId>,
}

fn question() -> Question {
    Question::new("www.pop.example".parse().unwrap(), RecordType::A)
}

fn build(n_subs: usize, via_relay: bool, seed: u64) -> Built {
    let mut sim = Simulator::new(seed);
    let link = LinkConfig::with_delay(Duration::from_millis(15));
    sim.set_default_link(link);
    let name: moqdns_dns::name::Name = "www.pop.example".parse().unwrap();
    let mut zone = Zone::with_default_soa("pop.example".parse().unwrap());
    zone.add_record(Record::new(
        name.clone(),
        60,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    let q = question();

    let mut b = TopoBuilder::new().tier("auth", 1, 0, link);
    if via_relay {
        b = b.tier("relay", 1, 1, link);
    }
    b = b.tier("sub", n_subs, 1, link);
    let topo = b.build(&mut sim, |sim, ctx| match ctx.tier_name {
        "auth" => sim.add_node(
            ctx.name.clone(),
            Box::new(AuthServer::new(
                Authority::single(zone.clone()),
                TransportConfig::default(),
                1,
            )),
        ),
        "relay" => sim.add_node(
            ctx.name.clone(),
            Box::new(RelayNode::new(Addr::new(ctx.parents[0], MOQT_PORT), 0, 2)),
        ),
        _ => sim.add_node(
            ctx.name.clone(),
            Box::new(TreeStub::new(
                Addr::new(ctx.parents[0], MOQT_PORT),
                vec![q.clone()],
                100 + ctx.index as u64,
            )),
        ),
    });
    sim.run_until(SimTime::from_secs(5));
    Built {
        sim,
        auth: topo.tier_named("auth")[0],
        relay: topo.tier_named("relay").first().copied(),
        subs: topo.tier_named("sub").to_vec(),
    }
}

fn push_updates(b: &mut Built, n: u64) {
    let t0 = b.sim.now();
    b.sim.stats_mut().reset();
    let auth = b.auth;
    for i in 0..n {
        let at = t0 + Duration::from_secs(i + 1);
        let octet = (i % 200) as u8 + 1;
        b.sim.schedule_at(at, move |sim| {
            let name: moqdns_dns::name::Name = "www.pop.example".parse().unwrap();
            sim.with_node::<AuthServer, _>(auth, |a, ctx| {
                a.update_zone(ctx, |authority| {
                    if let Some(z) = authority.find_zone_mut(&name) {
                        z.set_records(
                            &name,
                            RecordType::A,
                            vec![Record::new(
                                name.clone(),
                                60,
                                RData::A(Ipv4Addr::new(203, 0, 113, octet)),
                            )],
                        );
                    }
                });
            });
        });
    }
    b.sim.run_until(t0 + Duration::from_secs(n + 10));
}

fn main() {
    let opts = BenchOpts::from_args();
    report::heading("A3 / §3 — relay fan-out: aggregation and caching");
    let mut gate = InvariantGate::new("relay_fanout", &opts);

    let updates: u64 = if opts.smoke { 3 } else { 10 };
    let sub_counts: &[usize] = if opts.smoke { &[1, 5] } else { &[1, 5, 20] };
    let mut t = Table::new(
        format!("{updates} updates to S subscribers: authoritative egress bytes"),
        &[
            "S",
            "direct: auth egress",
            "via relay: auth egress",
            "relay egress",
            "agg factor",
        ],
    );
    for (i, s) in sub_counts.iter().enumerate() {
        // Direct.
        let mut direct = build(*s, false, 300 + i as u64);
        push_updates(&mut direct, updates);
        let direct_egress = direct.sim.stats().bytes_out_of(direct.auth);
        let delivered: u64 = direct
            .subs
            .iter()
            .map(|n| direct.sim.node_ref::<TreeStub>(*n).updates)
            .sum();
        gate.check_eq(
            &format!("s{s}_direct_delivery"),
            updates * *s as u64,
            delivered,
        );

        // Via relay.
        let mut relayed = build(*s, true, 400 + i as u64);
        push_updates(&mut relayed, updates);
        let relay_id = relayed.relay.unwrap();
        let auth_egress = relayed.sim.stats().bytes_out_of(relayed.auth);
        let relay_egress = relayed.sim.stats().bytes_out_of(relay_id);
        let delivered: u64 = relayed
            .subs
            .iter()
            .map(|n| relayed.sim.node_ref::<TreeStub>(*n).updates)
            .sum();
        gate.check_eq(
            &format!("s{s}_relayed_delivery"),
            updates * *s as u64,
            delivered,
        );
        // The relay's whole point: S downstream subscriptions cost ONE
        // upstream subscription, so the origin pushes each update once.
        let relay = relayed.sim.node_ref::<RelayNode>(relay_id);
        gate.check_eq(
            &format!("s{s}_single_upstream_subscription"),
            1,
            relay.upstream_subscription_count() as u64,
        );
        let agg = relay.aggregation_factor();
        gate.check_eq(&format!("s{s}_aggregation_factor"), *s as u64, agg as u64);
        if *s > 1 {
            // Aggregation keeps the origin cheaper than direct fan-out.
            gate.check_true(
                &format!("s{s}_origin_egress_shrinks"),
                auth_egress < direct_egress,
                format!("relayed {auth_egress} B < direct {direct_egress} B"),
            );
        }
        gate.metric(&format!("s{s}_direct_auth_egress_bytes"), direct_egress);
        gate.metric(&format!("s{s}_relayed_auth_egress_bytes"), auth_egress);
        gate.metric(&format!("s{s}_relay_egress_bytes"), relay_egress);

        t.push(&[
            s.to_string(),
            direct_egress.to_string(),
            auth_egress.to_string(),
            relay_egress.to_string(),
            format!("{agg:.0}"),
        ]);
    }
    report::emit(&t, "abl_relay_fanout");

    // Cache: a late joiner's fetch is served by the relay without touching
    // the authoritative server.
    let mut b = build(3, true, 777);
    push_updates(&mut b, 3);
    let relay_id = b.relay.unwrap();
    b.sim.stats_mut().reset();
    let late = b.sim.add_node(
        "late-joiner",
        Box::new(TreeStub::new(
            Addr::new(relay_id, MOQT_PORT),
            vec![question()],
            999,
        )),
    );
    let deadline = b.sim.now() + Duration::from_secs(5);
    b.sim.run_until(deadline);
    let fetched = b.sim.node_ref::<TreeStub>(late).fetched > 0;
    let auth_touched = b.sim.stats().between(relay_id, b.auth).datagrams;
    let hits = b
        .sim
        .node_ref::<RelayNode>(relay_id)
        .stats()
        .fetch_cache_hits;
    println!(
        "Late joiner: fetch answered = {fetched}, relay cache hits = {hits}, \
         relay→auth datagrams during join = {auth_touched} (cache absorbed the fetch)."
    );
    gate.check_true(
        "late_joiner_served_from_cache",
        fetched,
        format!("fetch answered = {fetched}"),
    );
    gate.check_ge("late_joiner_cache_hits", 1, hits);
    gate.check_eq("late_join_auth_datagrams", 0, auth_touched);
    gate.metric("late_joiner_cache_hits", hits);
    gate.finish();
}
