//! A3 — ablation (§3): relay aggregation and caching.
//!
//! S subscribers of the same record, once connected directly to the
//! authoritative server and once through a MoQT relay. The relay must (a)
//! aggregate S downstream subscriptions into one upstream subscription,
//! (b) keep the authoritative server's egress constant in S, and (c)
//! serve late joiners' fetches from its object cache.

use moqdns_bench::report;
use moqdns_core::auth::AuthServer;
use moqdns_core::mapping::{track_from_question, RequestFlags};
use moqdns_core::relay_node::RelayNode;
use moqdns_core::stack::{MoqtStack, StackEvent};
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_moqt::session::SessionEvent;
use moqdns_netsim::{Addr, Ctx, LinkConfig, Node, NodeId, SimTime, Simulator};
use moqdns_quic::TransportConfig;
use moqdns_stats::Table;
use std::any::Any;
use std::net::Ipv4Addr;
use std::time::Duration;

struct Sub {
    stack: MoqtStack,
    server: Option<Addr>,
    question: Question,
    updates: u64,
    fetched: bool,
}

impl Node for Sub {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let server = self.server.unwrap();
        let h = self.stack.connect(ctx.now(), server, false);
        let track = track_from_question(&self.question, RequestFlags::iterative()).unwrap();
        if let Some((sess, conn)) = self.stack.session_conn(h) {
            sess.subscribe_with_joining_fetch(conn, track, 1);
        }
        let evs = self.stack.flush(ctx);
        self.collect(evs);
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _p: u16, d: Vec<u8>) {
        let evs = self.stack.on_datagram(ctx, from, &d);
        self.collect(evs);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let evs = self.stack.on_timer(ctx);
        self.collect(evs);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

impl Sub {
    fn collect(&mut self, evs: Vec<StackEvent>) {
        for e in evs {
            match e {
                StackEvent::Session(_, SessionEvent::SubscriptionObject { .. }) => {
                    self.updates += 1
                }
                StackEvent::Session(_, SessionEvent::FetchObjects { objects, .. }) => {
                    self.fetched = !objects.is_empty();
                }
                _ => {}
            }
        }
    }
}

struct Built {
    sim: Simulator,
    auth: NodeId,
    relay: Option<NodeId>,
    subs: Vec<NodeId>,
}

fn build(n_subs: usize, via_relay: bool, seed: u64) -> Built {
    let mut sim = Simulator::new(seed);
    sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(15)));
    let name: moqdns_dns::name::Name = "www.pop.example".parse().unwrap();
    let mut zone = Zone::with_default_soa("pop.example".parse().unwrap());
    zone.add_record(Record::new(
        name.clone(),
        60,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    let auth = sim.add_node(
        "auth",
        Box::new(AuthServer::new(
            Authority::single(zone),
            TransportConfig::default(),
            1,
        )),
    );
    let relay = if via_relay {
        Some(sim.add_node(
            "relay",
            Box::new(RelayNode::new(Addr::new(auth, MOQT_PORT), 0, 2)),
        ))
    } else {
        None
    };
    let upstream = relay.unwrap_or(auth);
    let q = Question::new(name, RecordType::A);
    let mut subs = Vec::new();
    for i in 0..n_subs {
        subs.push(sim.add_node(
            format!("sub{i}"),
            Box::new(Sub {
                stack: MoqtStack::client(TransportConfig::default(), 100 + i as u64),
                server: Some(Addr::new(upstream, MOQT_PORT)),
                question: q.clone(),
                updates: 0,
                fetched: false,
            }),
        ));
    }
    sim.run_until(SimTime::from_secs(5));
    Built {
        sim,
        auth,
        relay,
        subs,
    }
}

fn push_updates(b: &mut Built, n: u64) {
    let t0 = b.sim.now();
    b.sim.stats_mut().reset();
    let auth = b.auth;
    for i in 0..n {
        let at = t0 + Duration::from_secs(i + 1);
        let octet = (i % 200) as u8 + 1;
        b.sim.schedule_at(at, move |sim| {
            let name: moqdns_dns::name::Name = "www.pop.example".parse().unwrap();
            sim.with_node::<AuthServer, _>(auth, |a, ctx| {
                a.update_zone(ctx, |authority| {
                    if let Some(z) = authority.find_zone_mut(&name) {
                        z.set_records(
                            &name,
                            RecordType::A,
                            vec![Record::new(
                                name.clone(),
                                60,
                                RData::A(Ipv4Addr::new(203, 0, 113, octet)),
                            )],
                        );
                    }
                });
            });
        });
    }
    b.sim.run_until(t0 + Duration::from_secs(n + 10));
}

fn main() {
    report::heading("A3 / §3 — relay fan-out: aggregation and caching");

    const UPDATES: u64 = 10;
    let mut t = Table::new(
        format!("{UPDATES} updates to S subscribers: authoritative egress bytes"),
        &[
            "S",
            "direct: auth egress",
            "via relay: auth egress",
            "relay egress",
            "agg factor",
        ],
    );
    for (i, s) in [1usize, 5, 20].iter().enumerate() {
        // Direct.
        let mut direct = build(*s, false, 300 + i as u64);
        push_updates(&mut direct, UPDATES);
        let direct_egress = direct.sim.stats().bytes_out_of(direct.auth);
        let delivered: u64 = direct
            .subs
            .iter()
            .map(|n| direct.sim.node_ref::<Sub>(*n).updates)
            .sum();
        assert_eq!(delivered, UPDATES * *s as u64, "direct delivery complete");

        // Via relay.
        let mut relayed = build(*s, true, 400 + i as u64);
        push_updates(&mut relayed, UPDATES);
        let relay_id = relayed.relay.unwrap();
        let auth_egress = relayed.sim.stats().bytes_out_of(relayed.auth);
        let relay_egress = relayed.sim.stats().bytes_out_of(relay_id);
        let delivered: u64 = relayed
            .subs
            .iter()
            .map(|n| relayed.sim.node_ref::<Sub>(*n).updates)
            .sum();
        assert_eq!(delivered, UPDATES * *s as u64, "relayed delivery complete");
        let agg = relayed
            .sim
            .node_ref::<RelayNode>(relay_id)
            .aggregation_factor();

        t.push(&[
            s.to_string(),
            direct_egress.to_string(),
            auth_egress.to_string(),
            relay_egress.to_string(),
            format!("{agg:.0}"),
        ]);
    }
    report::emit(&t, "abl_relay_fanout");

    // Cache: a late joiner's fetch is served by the relay without touching
    // the authoritative server.
    let mut b = build(3, true, 777);
    push_updates(&mut b, 3);
    let relay_id = b.relay.unwrap();
    b.sim.stats_mut().reset();
    let q = Question::new("www.pop.example".parse().unwrap(), RecordType::A);
    let late = b.sim.add_node(
        "late-joiner",
        Box::new(Sub {
            stack: MoqtStack::client(TransportConfig::default(), 999),
            server: Some(Addr::new(relay_id, MOQT_PORT)),
            question: q,
            updates: 0,
            fetched: false,
        }),
    );
    let deadline = b.sim.now() + Duration::from_secs(5);
    b.sim.run_until(deadline);
    let fetched = b.sim.node_ref::<Sub>(late).fetched;
    let auth_touched = b.sim.stats().between(relay_id, b.auth).datagrams;
    let hits = b
        .sim
        .node_ref::<RelayNode>(relay_id)
        .stats()
        .fetch_cache_hits;
    println!(
        "Late joiner: fetch answered = {fetched}, relay cache hits = {hits}, \
         relay→auth datagrams during join = {auth_touched} (cache absorbed the fetch)."
    );
    assert!(fetched, "late joiner got the record from the relay cache");
    assert!(hits >= 1);
}
