//! A2 — ablation (§4.1): "Our DNS over MoQT prototype uses QUIC streams
//! and no datagrams to avoid losing messages due to the unreliability of
//! datagrams."
//!
//! One authoritative server pushes a sequence of updates to one subscriber
//! over a lossy link, once with subgroup streams (retransmitted by QUIC
//! loss recovery) and once with RFC 9221 datagrams (fire and forget). We
//! count delivered updates at each loss rate.

use moqdns_bench::report;
use moqdns_core::auth::AuthServer;
use moqdns_core::mapping::{track_from_question, RequestFlags};
use moqdns_core::stack::{MoqtStack, StackEvent};
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_moqt::session::SessionEvent;
use moqdns_netsim::{Addr, Ctx, LinkConfig, Node, Payload, SimTime, Simulator};
use moqdns_quic::TransportConfig;
use moqdns_stats::Table;
use std::any::Any;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::time::Duration;

const UPDATES: u64 = 50;

struct Sub {
    stack: MoqtStack,
    server: Option<Addr>,
    question: Question,
    versions: BTreeSet<u64>,
}

impl Node for Sub {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let server = self.server.unwrap();
        let Some(h) = self.stack.connect(ctx.now(), server, false) else {
            return;
        };
        let track = track_from_question(&self.question, RequestFlags::iterative()).unwrap();
        if let Some((sess, conn)) = self.stack.session_conn(h) {
            sess.subscribe_with_joining_fetch(conn, track, 1);
        }
        let evs = self.stack.flush(ctx);
        self.collect(evs);
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _p: u16, d: Payload) {
        let evs = self.stack.on_datagram(ctx, from, &d);
        self.collect(evs);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let evs = self.stack.on_timer(ctx);
        self.collect(evs);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

impl Sub {
    fn collect(&mut self, evs: Vec<StackEvent>) {
        for e in evs {
            if let StackEvent::Session(_, SessionEvent::SubscriptionObject { object, .. }) = e {
                self.versions.insert(object.group_id);
            }
        }
    }
}

fn run(loss: f64, datagrams: bool, seed: u64) -> u64 {
    let mut sim = Simulator::new(seed);
    sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(20)).loss(loss));
    let name: moqdns_dns::name::Name = "lb.cdn.example".parse().unwrap();
    let mut zone = Zone::with_default_soa("cdn.example".parse().unwrap());
    zone.add_record(Record::new(
        name.clone(),
        10,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    let mut auth_node = AuthServer::new(Authority::single(zone), TransportConfig::default(), 1);
    auth_node.set_use_datagrams(datagrams);
    let auth = sim.add_node("auth", Box::new(auth_node));
    let q = Question::new(name.clone(), RecordType::A);
    let sub = sim.add_node(
        "sub",
        Box::new(Sub {
            stack: MoqtStack::client(TransportConfig::default(), 2),
            server: Some(Addr::new(auth, MOQT_PORT)),
            question: q,
            versions: BTreeSet::new(),
        }),
    );
    sim.run_until(SimTime::from_secs(10));

    let t0 = sim.now();
    for i in 0..UPDATES {
        let at = t0 + Duration::from_secs(2 * (i + 1));
        let nm = name.clone();
        let octet = (i % 250) as u8 + 1;
        sim.schedule_at(at, move |sim| {
            sim.with_node::<AuthServer, _>(auth, |a, ctx| {
                a.update_zone(ctx, |authority| {
                    if let Some(z) = authority.find_zone_mut(&nm) {
                        z.set_records(
                            &nm,
                            RecordType::A,
                            vec![Record::new(
                                nm.clone(),
                                10,
                                RData::A(Ipv4Addr::new(203, 0, 113, octet)),
                            )],
                        );
                    }
                });
            });
        });
    }
    sim.run_until(t0 + Duration::from_secs(2 * UPDATES + 30));
    sim.node_ref::<Sub>(sub).versions.len() as u64
}

fn main() {
    report::heading("A2 / §4.1 — streams vs datagrams under loss");

    let mut t = Table::new(
        format!("{UPDATES} record updates pushed over a lossy link; delivered versions"),
        &["loss %", "via streams", "via datagrams"],
    );
    for (i, loss) in [0.0, 0.05, 0.15, 0.30].iter().enumerate() {
        let streams = run(*loss, false, 700 + i as u64);
        let datagrams = run(*loss, true, 800 + i as u64);
        t.push(&[
            format!("{:.0}", loss * 100.0),
            streams.to_string(),
            datagrams.to_string(),
        ]);
    }
    report::emit(&t, "abl_streams_vs_datagrams");
    println!(
        "Streams recover lost updates via QUIC retransmission; datagrams \
         silently drop them — the reliability argument of §4.1."
    );
}
