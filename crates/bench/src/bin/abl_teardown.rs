//! A1 — ablation (§4.4): subscription teardown policies.
//!
//! A stub replays a Zipf browsing trace (revisits are common, tail is
//! long) under each teardown policy and we measure the trade-off the
//! paper describes: state held vs re-established subscriptions vs lookups
//! answered locally.

use moqdns_bench::report;
use moqdns_bench::worlds::{World, WorldSpec};
use moqdns_core::metrics::AnswerSource;
use moqdns_core::recursive::UpstreamMode;
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_core::teardown::TeardownPolicy;
use moqdns_stats::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const DOMAINS: usize = 25;
const LOOKUPS: usize = 120;

fn run(policy: TeardownPolicy, seed: u64) -> (usize, u64, f64) {
    let spec = WorldSpec {
        seed,
        mode: UpstreamMode::Moqt,
        stub_mode: StubMode::Moqt,
        records: (0..DOMAINS).map(|i| (format!("d{i}"), 300)).collect(),
        stub_policy: policy,
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    let mut rng = StdRng::seed_from_u64(seed);

    // Zipf-ish revisit trace: rank r picked with weight 1/r.
    let weights: Vec<f64> = (1..=DOMAINS).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    for _ in 0..LOOKUPS {
        let mut x = rng.random::<f64>() * total;
        let mut idx = 0;
        for (i, wgt) in weights.iter().enumerate() {
            if x < *wgt {
                idx = i;
                break;
            }
            x -= wgt;
        }
        w.lookup(0, &format!("d{idx}"), Duration::from_millis(300));
        // Inter-lookup gap so idle policies can fire.
        let gap = Duration::from_secs(rng.random_range(5..40));
        let deadline = w.sim.now() + gap;
        w.sim.run_until(deadline);
    }
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    let held = stub.subscription_count();
    let resubs = stub.metrics.subscribes_sent;
    let local = stub
        .metrics
        .lookups
        .iter()
        .filter(|l| l.source == AnswerSource::Cache)
        .count() as f64
        / stub.metrics.lookups.len() as f64;
    (held, resubs, local)
}

fn main() {
    report::heading("A1 / §4.4 — subscription teardown policies");

    let policies: Vec<(&str, TeardownPolicy)> = vec![
        ("never", TeardownPolicy::Never),
        (
            "idle 60 s",
            TeardownPolicy::IdleTimeout(Duration::from_secs(60)),
        ),
        ("LRU cap 10", TeardownPolicy::LruCap(10)),
        (
            "adaptive ≥6/h",
            TeardownPolicy::Adaptive {
                min_rate_per_hour: 6.0,
                window: Duration::from_secs(1800),
            },
        ),
    ];

    let mut t = Table::new(
        format!("{LOOKUPS} Zipf lookups over {DOMAINS} domains"),
        &[
            "policy",
            "subs held at end",
            "SUBSCRIBEs sent",
            "answered locally %",
        ],
    );
    for (i, (name, p)) in policies.into_iter().enumerate() {
        let (held, resubs, local) = run(p, 910 + i as u64);
        t.push(&[
            name.to_string(),
            held.to_string(),
            resubs.to_string(),
            format!("{:.0}", local * 100.0),
        ]);
    }
    report::emit(&t, "abl_teardown");
    println!(
        "The §4.4 trade-off: 'never' holds the most state but re-subscribes \
         least; aggressive policies shed state and pay with re-established \
         subscriptions and fewer local answers."
    );
}
