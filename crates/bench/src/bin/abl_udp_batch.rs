//! A4 — io-layer ablation: raw loopback datagram throughput through the
//! batched socket layer, `sendmmsg`/`recvmmsg` vs single-datagram
//! syscalls.
//!
//! No protocol work at all, two shapes:
//!
//! * **self** — one thread sends a 64-frame burst to its own socket and
//!   drains it back, so no scheduler is involved and the measurement
//!   isolates exactly what batching changes: user/kernel boundary
//!   crossings per datagram (2/64 per burst on the mmsg path vs 2 per
//!   datagram on the fallback).
//! * **blast** — a sender thread floods a receiver thread for a fixed
//!   duration; delivered pps is the honest figure (a receiver that
//!   drains faster also loses fewer datagrams to socket-buffer
//!   overflow), but on a single hardware thread this shape is
//!   scheduler-bound: delivered ≈ rcvbuf drained per context switch,
//!   which batching cannot move.
//!
//! Both ends of each leg are pinned to the same mode so the comparison
//! is whole-path. The end-to-end saturation numbers live in
//! `BENCH_PR9.json`; this binary exists so the io-layer claim can be
//! re-measured on other iron in isolation.

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::report;
use moqdns_quic::udp_batch::{RecvBatcher, SendBatcher, MAX_BATCH};
use moqdns_stats::Table;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

const PAYLOAD_BYTES: usize = 512;

/// Scheduler-free leg: send a burst to our own socket, drain it back.
fn run_self(force_single: bool, dur: Duration) -> f64 {
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
    sock.set_read_timeout(Some(Duration::from_millis(20)))
        .expect("timeout");
    let dst = sock.local_addr().expect("addr");
    let mut send = SendBatcher::with_mode(force_single);
    let mut recv = RecvBatcher::with_mode(force_single);
    let frames: Vec<(SocketAddr, Vec<u8>)> = (0..MAX_BATCH)
        .map(|i| (dst, vec![i as u8; PAYLOAD_BYTES]))
        .collect();
    let mut burst = Vec::new();
    let start = Instant::now();
    let mut moved = 0u64;
    while start.elapsed() < dur {
        let sent = send.send_burst(&sock, &frames);
        let mut got = 0u64;
        while got < sent {
            burst.clear();
            match recv.recv_burst(&sock, &mut burst) {
                Ok(0) | Err(_) => break,
                Ok(n) => got += n as u64,
            }
        }
        moved += got;
    }
    moved as f64 / start.elapsed().as_secs_f64()
}

/// Two-thread leg: blast for `dur`, count what survives the rcvbuf.
fn run_blast(force_single: bool, dur: Duration) -> (f64, f64) {
    let rx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    rx_sock
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("rx timeout");
    let dst = rx_sock.local_addr().expect("rx addr");
    let tx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind tx");

    let sender = std::thread::spawn(move || {
        let mut send = SendBatcher::with_mode(force_single);
        let frames: Vec<(SocketAddr, Vec<u8>)> = (0..MAX_BATCH)
            .map(|i| (dst, vec![i as u8; PAYLOAD_BYTES]))
            .collect();
        let start = Instant::now();
        let mut sent = 0u64;
        while start.elapsed() < dur {
            sent += send.send_burst(&tx_sock, &frames);
        }
        (sent, start.elapsed())
    });

    let mut recv = RecvBatcher::with_mode(force_single);
    let mut burst = Vec::new();
    let mut delivered = 0u64;
    let start = Instant::now();
    let mut last_rx = Instant::now();
    while start.elapsed() < dur + Duration::from_millis(500) {
        burst.clear();
        if let Ok(n) = recv.recv_burst(&rx_sock, &mut burst) {
            if n > 0 {
                delivered += n as u64;
                last_rx = Instant::now();
            }
        }
        if start.elapsed() > dur && last_rx.elapsed() > Duration::from_millis(100) {
            break;
        }
    }

    let (sent, tx_elapsed) = sender.join().expect("sender thread");
    let secs = tx_elapsed.as_secs_f64().max(1e-9);
    (sent as f64 / secs, delivered as f64 / secs)
}

fn main() {
    let opts = BenchOpts::from_args();
    let dur = if opts.smoke {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };

    report::heading("A4: udp batch layer — mmsg vs single-syscall loopback pps");

    let self_single = run_self(true, dur);
    let self_mmsg = run_self(false, dur);
    let (blast_off_single, blast_single) = run_blast(true, dur);
    let (blast_off_mmsg, blast_mmsg) = run_blast(false, dur);

    let mut table = Table::new(
        "abl_udp_batch",
        &["shape", "mode", "offered_pps", "delivered_pps"],
    );
    for (shape, mode, off, del) in [
        ("self", "single", self_single, self_single),
        ("self", "mmsg", self_mmsg, self_mmsg),
        ("blast", "single", blast_off_single, blast_single),
        ("blast", "mmsg", blast_off_mmsg, blast_mmsg),
    ] {
        table.row(&[
            shape.to_string(),
            mode.to_string(),
            format!("{off:.0}"),
            format!("{del:.0}"),
        ]);
    }
    report::emit(&table, "abl_udp_batch");
    println!(
        "self  (syscall-path) ratio mmsg/single: {:.2}x",
        self_mmsg / self_single.max(1.0)
    );
    println!(
        "blast (scheduler-bound) ratio mmsg/single: {:.2}x",
        blast_mmsg / blast_single.max(1.0)
    );
}
