//! E14 — protocol-hardening drill: honest tiers must survive attack.
//!
//! Three hostile clients from `moqdns_core::adversary` take turns
//! attacking one edge relay of a small origin → core → edge → stub tree
//! (fresh world per attack, same scenario):
//!
//! * **byzantine** — garbage control bytes, bogus-alias datagrams,
//!   duplicate request ids. The session state machine must poison and
//!   close (counting `violations` / `dropped_datagrams`), never
//!   resynchronize or crash;
//! * **slow-loris** — subscribes to every track and never drains. The
//!   per-session backlog bound must evict it, reclaiming the state it
//!   made the relay hold;
//! * **fetch-bomb** — bursts of standalone FETCHes for cold tracks. The
//!   per-session fetch budget must throttle (`throttled_fetches`) and
//!   finally evict (`evicted_sessions`).
//!
//! The survival invariants, machine-checked per attack:
//!
//! 1. **zero honest loss** — every honest stub sees every update of
//!    every track, exactly as in an attack-free run;
//! 2. **bounded state** — the attacked edge ends no bigger than its
//!    untargeted twin plus one session-backlog allowance;
//! 3. **attack fingerprinted** — each attack shows up in its hardening
//!    counter, not in honest-path metrics.
//!
//! Run with `--smoke` for the CI variant and `--check` to emit the
//! machine-readable summary (`results/ci_adversarial.json`) and exit
//! nonzero on any violation.

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::{AdversarialWorld, AttackKind};
use moqdns_core::adversary::{ByzantineNode, FetchBombNode, SlowLorisNode};
use moqdns_core::relay_node::RelayNode;
use moqdns_stats::Table;
use moqdns_workload::scenarios::AdversarialScenario;
use std::time::Duration;

/// Runs the update rounds against one world and settles.
fn drive(world: &mut AdversarialWorld, spec: &AdversarialScenario) {
    for round in 0..spec.updates_per_track {
        world.update_round(10u8.wrapping_add((round as u8).wrapping_mul(13)));
        let deadline = world.sim.now() + spec.update_interval;
        world.sim.run_until(deadline);
    }
    let tail = world.sim.now() + Duration::from_secs(5);
    world.sim.run_until(tail);
}

fn main() {
    let opts = BenchOpts::from_args();
    report::heading("E14 — adversarial survival drill");
    let spec = if opts.smoke {
        AdversarialScenario::adversarial().smoke()
    } else {
        AdversarialScenario::adversarial()
    };
    let mut gate = InvariantGate::new("adversarial", &opts);

    let mut table = Table::new(
        format!(
            "{}: {} tracks x {} updates to {} honest stubs, one attacker per run",
            spec.name,
            spec.tracks,
            spec.updates_per_track,
            spec.stub_count()
        ),
        &[
            "attack",
            "delivered",
            "violations",
            "dropped dg",
            "throttled",
            "evicted",
            "edge state B",
        ],
    );

    for (i, attack) in [
        AttackKind::Byzantine,
        AttackKind::SlowLoris,
        AttackKind::FetchBomb,
    ]
    .into_iter()
    .enumerate()
    {
        let label = attack.label();
        let mut world = AdversarialWorld::build(&spec, attack, 71 + i as u64);
        let baseline = world.delivered_updates();
        drive(&mut world, &spec);
        let delivered = world.delivered_updates() - baseline;
        let stats = world.target_edge_stats();
        let state = world.target_edge_state_size();
        let twin_state = world
            .sim
            .node_ref::<RelayNode>(world.edges[1])
            .state_size_estimate();
        if std::env::var_os("ADV_DEBUG").is_some() {
            let (sess, conns) = world
                .sim
                .node_ref::<RelayNode>(world.edges[0])
                .state_breakdown();
            eprintln!("[{label}] attacked sessions={sess}B conns={conns:?}");
            let (sess, conns) = world
                .sim
                .node_ref::<RelayNode>(world.edges[1])
                .state_breakdown();
            eprintln!("[{label}] twin     sessions={sess}B conns={conns:?}");
        }

        // 1. Zero honest loss: the attacked tree still delivers every
        //    update to every honest stub.
        gate.check_eq(
            &format!("{label}_honest_delivery"),
            spec.expected_deliveries(),
            delivered,
        );
        // 2. Bounded state: whatever the attacker made the edge hold has
        //    been reclaimed — the attacked edge ends within one backlog
        //    allowance of its untargeted twin.
        gate.check_le(
            &format!("{label}_edge_state_bounded"),
            twin_state as u64 + spec.session_backlog as u64,
            state as u64,
        );

        // 3. The attack left its fingerprint in the right counter.
        match attack {
            AttackKind::Byzantine => {
                gate.check_ge("byzantine_violations", 1, stats.violations);
                gate.check_ge("byzantine_dropped_datagrams", 1, stats.dropped_datagrams);
                let (closed, garbage, bogus, dups) =
                    world
                        .sim
                        .with_node::<ByzantineNode, _>(world.attacker, |a, _| {
                            (
                                a.closed_by_peer,
                                a.garbage_bursts,
                                a.bogus_datagrams,
                                a.duplicate_requests,
                            )
                        });
                gate.check_ge("byzantine_sessions_closed", 1, closed);
                gate.metric("byzantine_garbage_bursts", garbage);
                gate.metric("byzantine_bogus_datagrams", bogus);
                gate.metric("byzantine_duplicate_requests", dups);
                gate.metric("byzantine_sessions_closed", closed);
            }
            AttackKind::SlowLoris => {
                gate.check_ge("slow_loris_evictions", 1, stats.evicted_sessions);
                let (subs, swallowed) = world
                    .sim
                    .with_node::<SlowLorisNode, _>(world.attacker, |a, _| {
                        (a.subs_sent, a.swallowed)
                    });
                gate.check_ge("slow_loris_subscribed", spec.tracks as u64, subs);
                gate.metric("slow_loris_swallowed", swallowed);
            }
            AttackKind::FetchBomb => {
                gate.check_ge("fetch_bomb_throttled", 1, stats.throttled_fetches);
                gate.check_ge("fetch_bomb_evictions", 1, stats.evicted_sessions);
                let (sent, rejected, closed) = world
                    .sim
                    .with_node::<FetchBombNode, _>(world.attacker, |a, _| {
                        (a.fetches_sent, a.fetches_rejected, a.closed_by_peer)
                    });
                gate.check_ge(
                    "fetch_bomb_rejections_observed",
                    spec.throttles_per_burst(),
                    rejected,
                );
                gate.metric("fetch_bomb_fetches_sent", sent);
                gate.metric("fetch_bomb_sessions_closed", closed);
            }
        }

        gate.metric(&format!("{label}_delivered"), delivered);
        gate.metric(&format!("{label}_violations"), stats.violations);
        gate.metric(
            &format!("{label}_dropped_datagrams"),
            stats.dropped_datagrams,
        );
        gate.metric(
            &format!("{label}_throttled_fetches"),
            stats.throttled_fetches,
        );
        gate.metric(&format!("{label}_evicted_sessions"), stats.evicted_sessions);
        gate.metric(&format!("{label}_edge_state_bytes"), state as u64);

        table.push(&[
            label.to_string(),
            format!("{}/{}", delivered, spec.expected_deliveries()),
            stats.violations.to_string(),
            stats.dropped_datagrams.to_string(),
            stats.throttled_fetches.to_string(),
            stats.evicted_sessions.to_string(),
            state.to_string(),
        ]);
    }

    report::emit(&table, "exp_adversarial_attacks");
    println!(
        "Survival drill: honest tiers kept full delivery under all three \
         attacks; attackers isolated via poison/throttle/evict.\n"
    );
    gate.finish();
}
