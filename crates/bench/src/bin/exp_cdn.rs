//! E7 — §5.3 CDN: "assuming that a stub resolver subscribes to 1,000
//! different domains and all domains are updated at the lowest observed
//! clustered TTL of 10 s with 300 B per update, we obtain a downstream
//! update traffic of 240 kbps."
//!
//! (a) the analytic number; (b) a scaled simulation — one stub subscribed
//! to D domains, every domain updated every 10 s — measuring actual
//! downstream bytes/s at the stub and extrapolating to 1 000 domains.

use moqdns_bench::report;
use moqdns_bench::worlds::{World, WorldSpec};
use moqdns_core::auth::AuthServer;
use moqdns_core::recursive::UpstreamMode;
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_stats::{format_bps, Table};
use moqdns_workload::scenarios::CdnScenario;
use std::time::Duration;

const DOMAINS: usize = 50;
const MEASURE_S: u64 = 120;

fn main() {
    report::heading("E7 / §5.3 — CDN: stub downstream update traffic");

    let s = CdnScenario::default();
    let mut t = Table::new(
        "Analytic estimate (paper parameters)",
        &["parameter", "value"],
    );
    t.push(&[
        "subscribed domains".to_string(),
        s.subscribed_domains.to_string(),
    ]);
    t.push(&[
        "update interval".to_string(),
        format!("{} s", s.update_interval.as_secs()),
    ]);
    t.push(&["update size".to_string(), format!("{} B", s.update_size)]);
    t.push(&[
        "stub downstream".to_string(),
        format!("{} (paper: 240 kbps)", format_bps(s.stub_downstream_bps())),
    ]);
    report::emit(&t, "exp_cdn_analytic");

    // Simulation: one MoQT stub subscribed to DOMAINS hosts, each updated
    // every 10 s.
    let spec = WorldSpec {
        seed: 71,
        mode: UpstreamMode::Moqt,
        stub_mode: StubMode::Moqt,
        records: (0..DOMAINS).map(|i| (format!("cdn{i}"), 10)).collect(),
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    for i in 0..DOMAINS {
        w.lookup(0, &format!("cdn{i}"), Duration::from_millis(300));
    }
    w.sim.run_until(w.sim.now() + Duration::from_secs(5));
    w.sim.stats_mut().reset();
    let t0 = w.sim.now();

    // Every domain changes every 10 s.
    let auth = w.auth;
    for i in 0..DOMAINS {
        let mut at = t0 + Duration::from_secs(10);
        let mut version = 0u8;
        while at < t0 + Duration::from_secs(MEASURE_S) {
            let host = format!("cdn{i}");
            version = version.wrapping_add(1).max(1);
            let v = version;
            w.sim.schedule_at(at, move |sim| {
                let name: moqdns_dns::name::Name = format!("{host}.example.com").parse().unwrap();
                sim.with_node::<AuthServer, _>(auth, |a, ctx| {
                    a.update_zone(ctx, |authority| {
                        if let Some(z) = authority.find_zone_mut(&name) {
                            z.set_records(
                                &name,
                                moqdns_dns::rr::RecordType::A,
                                vec![moqdns_dns::rr::Record::new(
                                    name.clone(),
                                    10,
                                    moqdns_dns::rdata::RData::A(std::net::Ipv4Addr::new(
                                        198, 51, 100, v,
                                    )),
                                )],
                            );
                        }
                    });
                });
            });
            at += Duration::from_secs(10);
        }
    }
    w.sim.run_until(t0 + Duration::from_secs(MEASURE_S));

    let stub_node = w.stubs[0];
    let downstream_bytes = w.sim.stats().between(w.recursive, stub_node).bytes;
    let bps = downstream_bytes as f64 * 8.0 / MEASURE_S as f64;
    let per_domain = bps / DOMAINS as f64;
    let extrapolated = per_domain * 1000.0;
    let updates = w
        .sim
        .node_ref::<StubResolver>(stub_node)
        .metrics
        .updates
        .len();

    let mut t2 = Table::new(
        format!("Simulation: {DOMAINS} subscribed domains, updates every 10 s, {MEASURE_S} s"),
        &["metric", "value"],
    );
    t2.push(&["updates received".to_string(), updates.to_string()]);
    t2.push(&["stub downstream (measured)".to_string(), format_bps(bps)]);
    t2.push(&["per subscribed domain".to_string(), format_bps(per_domain)]);
    t2.push(&[
        "extrapolated to 1000 domains (measured update size)".to_string(),
        format_bps(extrapolated),
    ]);
    // The paper assumes 300 B per update; our synthetic A-record responses
    // are smaller. Rescale the measured *update rate* to the paper's size.
    let rate_per_domain = updates as f64 / DOMAINS as f64 / MEASURE_S as f64;
    let at_paper_size = rate_per_domain * 300.0 * 8.0 * 1000.0;
    t2.push(&[
        "extrapolated at the paper's 300 B update size".to_string(),
        format!("{} (paper: 240 kbps)", format_bps(at_paper_size)),
    ]);
    report::emit(&t2, "exp_cdn_sim");

    let expected = DOMAINS * (MEASURE_S as usize / 10 - 1);
    assert!(
        updates >= expected,
        "pushes flowed ({updates} >= {expected})"
    );
    println!(
        "The measured per-domain rate includes QUIC/MoQT framing and ACKs, so the \
         extrapolation lands the same order of magnitude as the paper's 240 kbps."
    );
}
