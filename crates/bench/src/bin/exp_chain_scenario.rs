//! E13 — §5.3: the paper's depth-5 relay chain, gate-checked.
//!
//! §5.3 assumes distribution paths "involving 5 MoQ relays on average".
//! The 3-tier tree (E10) and the mesh (E11) check aggregation at breadth;
//! this drill checks it at **depth**: a straight origin → hop1 → … →
//! hop5 → stubs chain built by `TopoBuilder::chain`, where any relay
//! that failed to aggregate would multiply traffic at *every* following
//! hop. Machine-checked:
//!
//! 1. the joining-fetch stampede collapses to ONE upstream fetch per
//!    track at every hop (the deepest hop absorbs the stubs' stampede,
//!    each following hop sees exactly one fetch per track);
//! 2. each update crosses every hop link exactly once (one datagram per
//!    update per link), however many stubs subscribe below;
//! 3. every stub receives every update (complete end-to-end delivery
//!    through all 5 hops).
//!
//! Run with `--smoke` for the tiny CI variant and `--check` to emit the
//! machine-readable invariant summary (`results/ci_chain.json`) and exit
//! nonzero on any violation.

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::TreeStub;
use moqdns_core::auth::AuthServer;
use moqdns_core::relay_node::RelayNode;
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::name::Name;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_netsim::topo::TopoBuilder;
use moqdns_netsim::{Addr, LinkConfig, NodeId, Simulator};
use moqdns_quic::TransportConfig;
use moqdns_stats::Table;
use moqdns_workload::scenarios::ChainScenario;
use std::net::Ipv4Addr;
use std::time::Duration;

fn record_name(i: usize) -> Name {
    format!("r{i}.chain.example").parse().unwrap()
}

fn main() {
    let opts = BenchOpts::from_args();
    report::heading("E13 / §5.3 — depth-5 relay chain");
    let spec = if opts.smoke {
        ChainScenario::chain().smoke()
    } else {
        ChainScenario::chain()
    };
    let mut gate = InvariantGate::new("chain", &opts);

    let mut sim = Simulator::new(51);
    let link = LinkConfig::with_delay(spec.link_delay);
    sim.set_default_link(link);
    let mut zone = Zone::with_default_soa("chain.example".parse().unwrap());
    for i in 0..spec.tracks {
        zone.add_record(Record::new(
            record_name(i),
            60,
            RData::A(Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
        ));
    }
    let questions: Vec<Question> = (0..spec.tracks)
        .map(|i| Question::new(record_name(i), RecordType::A))
        .collect();
    let qs = questions.clone();

    let topo = TopoBuilder::chain("auth", spec.hops, link)
        .tier("stub", spec.stubs, 1, link)
        .build(&mut sim, move |sim, ctx| match ctx.tier_name {
            "auth" => sim.add_node(
                ctx.name.clone(),
                Box::new(AuthServer::new(
                    Authority::single(zone.clone()),
                    TransportConfig::default()
                        .idle_timeout(Duration::from_secs(3600))
                        .keep_alive(Duration::from_secs(25)),
                    11,
                )),
            ),
            name if name.starts_with("hop") => sim.add_node(
                ctx.name.clone(),
                Box::new(
                    RelayNode::new(
                        Addr::new(ctx.parents[0], MOQT_PORT),
                        0,
                        40 + ctx.index as u64,
                    )
                    .tier(name),
                ),
            ),
            _ => sim.add_node(
                ctx.name.clone(),
                Box::new(TreeStub::new(
                    Addr::new(ctx.parents[0], MOQT_PORT),
                    qs.clone(),
                    100 + ctx.index as u64,
                )),
            ),
        });

    // Settle: connections, joining-fetch stampede, chained subscriptions.
    sim.run_until(sim.now() + Duration::from_secs(5));

    let auth = topo.tier_named("auth")[0];
    let hops: Vec<NodeId> = (1..=spec.hops)
        .map(|i| topo.tier_named(&format!("hop{i}"))[0])
        .collect();
    let stubs: Vec<NodeId> = topo.tier_named("stub").to_vec();

    // ---- Stampede at depth -------------------------------------------
    let fetched: u64 = stubs
        .iter()
        .map(|&s| sim.node_ref::<TreeStub>(s).fetched)
        .sum();
    gate.check_eq(
        "stampede_fetches_answered",
        (spec.stubs * spec.tracks) as u64,
        fetched,
    );
    for (i, &h) in hops.iter().enumerate() {
        let s = sim.node_ref::<RelayNode>(h).stats();
        // One upstream fetch per track per hop: the deepest hop coalesces
        // the stub stampede; each hop above sees exactly one per track.
        gate.check_eq(
            &format!("hop{}_upstream_fetches", i + 1),
            spec.tracks as u64,
            s.upstream_fetches,
        );
    }
    let deepest = sim.node_ref::<RelayNode>(*hops.last().unwrap()).stats();
    gate.check_eq(
        "deepest_hop_coalesced",
        (spec.stubs * spec.tracks - spec.tracks) as u64,
        deepest.fetch_coalesced,
    );
    gate.metric("stampede_deepest_misses", deepest.fetch_cache_misses);
    gate.metric("stampede_deepest_coalesced", deepest.fetch_coalesced);

    // ---- Update rounds: one copy per hop link ------------------------
    sim.stats_mut().reset();
    let baseline: u64 = stubs
        .iter()
        .map(|&s| sim.node_ref::<TreeStub>(s).updates)
        .sum();
    for round in 0..spec.updates_per_track {
        for i in 0..spec.tracks {
            let name = record_name(i);
            sim.with_node::<AuthServer, _>(auth, |a, ctx| {
                a.update_zone(ctx, |authority| {
                    if let Some(z) = authority.find_zone_mut(&name) {
                        z.set_records(
                            &name,
                            RecordType::A,
                            vec![Record::new(
                                name.clone(),
                                60,
                                RData::A(Ipv4Addr::new(
                                    198,
                                    51,
                                    100,
                                    10 + round as u8 * 16 + i as u8,
                                )),
                            )],
                        );
                    }
                });
            });
        }
        sim.run_until(sim.now() + Duration::from_secs(2));
    }
    sim.run_until(sim.now() + Duration::from_secs(5));

    let delivered: u64 = stubs
        .iter()
        .map(|&s| sim.node_ref::<TreeStub>(s).updates)
        .sum::<u64>()
        - baseline;
    gate.check_eq("complete_delivery", spec.expected_deliveries(), delivered);
    // One datagram per update per hop link, at every depth.
    let mut upstream = auth;
    for (i, &h) in hops.iter().enumerate() {
        let got = sim.stats().between(upstream, h).delivered;
        gate.check_eq(
            &format!("into_hop{}_one_copy_per_update", i + 1),
            spec.total_updates() * spec.copies_per_link(),
            got,
        );
        gate.metric(&format!("hop{}_link_datagrams", i + 1), got);
        upstream = h;
    }
    gate.metric("update_deliveries", delivered);

    // ---- Table --------------------------------------------------------
    let mut t = Table::new(
        format!(
            "{}: depth-{} chain, {} tracks x {} updates to {} stubs",
            spec.name, spec.hops, spec.tracks, spec.updates_per_track, spec.stubs
        ),
        &[
            "hop",
            "fetch miss",
            "coalesced",
            "up fetches",
            "objects fwd",
        ],
    );
    for (i, &h) in hops.iter().enumerate() {
        let s = sim.node_ref::<RelayNode>(h).stats();
        t.push(&[
            format!("hop{}", i + 1),
            s.fetch_cache_misses.to_string(),
            s.fetch_coalesced.to_string(),
            s.upstream_fetches.to_string(),
            s.objects_forwarded.to_string(),
        ]);
    }
    report::emit(&t, "exp_chain_hops");

    println!(
        "Depth-{} chain: one fetch per track per hop, one copy per update \
         per link, {}/{} deliveries.\n",
        spec.hops,
        delivered,
        spec.expected_deliveries()
    );
    gate.finish();
}
