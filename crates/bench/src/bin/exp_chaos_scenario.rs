//! E14 — the chaos drill: a composed, seeded fault plan on the
//! metro-scale federation, gating the recovery invariants the paper's
//! always-on distribution tree depends on.
//!
//! The world is [`MetroWorld`] plus a *chaos edge* in region 0 carrying a
//! cohort of short-idle, auto-redialing stubs (the crash target). Four
//! phases, each pushing a full update round:
//!
//! 1. **clean round** — baseline: complete delivery, zero regressions;
//! 2. **uplink flap** — the busiest core's origin uplink goes to 100 %
//!    loss through the middle of an update round. Objects ride reliable
//!    streams, so the round must deliver *completely* after the heal,
//!    with no duplicate delivery (per-stub, per-track version sequences
//!    never regress);
//! 3. **region partition** — one region is cut off (origin uplink + all
//!    core peer links) for 10 s with a round pushed mid-partition; the
//!    isolated region drains completely on reunion;
//! 4. **edge crash/restart** — the chaos edge gets CONNECTION_CLOSE'd
//!    and goes dark mid-run, then restarts. The cohort must redial a
//!    *bounded* number of times, rejoin with a joining fetch that brings
//!    it current, and see the post-recovery round in full; the edge's
//!    session count and state size must return to their steady-state
//!    envelope (no leaked sessions from the chaos).
//!
//! Fault windows apply at simulation barriers and loss draws are
//! per-link deterministic, so the whole drill replays bit-identically
//! single-threaded and sharded (`--par N`; pinned by `parallel_parity`).
//! Run with `--smoke` for the CI variant and `--check` for the
//! machine-readable gate (`results/ci_chaos.json`).
//!
//! [`MetroWorld`]: moqdns_bench::worlds::MetroWorld

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::ChaosWorld;
use moqdns_stats::Table;
use moqdns_workload::scenarios::ChaosScenario;
use std::time::{Duration, Instant};

fn main() {
    let opts = BenchOpts::from_args();
    report::heading("E14 / robustness — composed fault plan on the metro federation");
    let spec = if opts.smoke {
        ChaosScenario::chaos().smoke()
    } else {
        ChaosScenario::chaos()
    };
    let metro = spec.metro;
    let mut gate = InvariantGate::new("chaos", &opts);
    let wall = Instant::now();

    // ---- Build + joining-fetch stampede ------------------------------
    let t_build = Instant::now();
    let mut w = ChaosWorld::build_with_workers(&spec, 93, opts.par);
    let build_ms = t_build.elapsed().as_millis();
    gate.check_eq(
        "stampede_fetches_answered",
        metro.subscription_count(),
        w.metro.fetched_total(),
    );
    gate.check_eq(
        "chaos_cohort_joining_fetches",
        spec.chaos_subscriptions(),
        w.chaos_fetched(),
    );
    println!(
        "Built metro + chaos edge: {} stubs plus a {}-stub redial cohort \
         (idle {:?}, redial {:?}; build {} ms).\n",
        metro.stub_count(),
        spec.chaos_stubs,
        spec.stub_idle,
        spec.stub_redial,
        build_ms,
    );

    // ---- Phase 1: clean round ----------------------------------------
    let t1 = Instant::now();
    w.metro.update_round(10);
    let settle = w.metro.sim.now() + Duration::from_secs(2);
    w.metro.sim.run_until(settle);
    gate.check_eq(
        "clean_round_delivery",
        metro.subscription_count(),
        w.metro.delivered_updates(),
    );
    gate.check_eq(
        "clean_chaos_delivery",
        spec.chaos_subscriptions(),
        w.chaos_delivered(),
    );
    gate.check_eq("clean_regressions", 0, w.total_regressions());
    // Steady-state envelope for the crash drill's high-water gate.
    let steady_sessions = w.edge_sessions();
    let steady_state = w.edge_state();
    gate.metric("edge_steady_sessions", steady_sessions as u64);
    gate.metric("edge_steady_state", steady_state as u64);
    println!(
        "Clean round: complete delivery incl. chaos cohort ({} ms).\n",
        t1.elapsed().as_millis()
    );

    // ---- Phase 2: flap the busiest core's origin uplink --------------
    report::heading("Drill: flapping the busiest origin uplink through a round");
    let t2 = Instant::now();
    let busiest = w.busiest_core();
    w.flap_drill(30);
    gate.check_eq(
        "flap_eventual_delivery",
        2 * metro.subscription_count(),
        w.metro.delivered_updates(),
    );
    gate.check_eq(
        "flap_chaos_delivery",
        2 * spec.chaos_subscriptions(),
        w.chaos_delivered(),
    );
    gate.check_eq("flap_no_duplicates", 0, w.total_regressions());
    println!(
        "Flapped auth<->core{busiest} ({:?} at 100% loss) across a round: \
         every object delivered exactly once after the heal ({} ms).\n",
        spec.flap_len,
        t2.elapsed().as_millis(),
    );

    // ---- Phase 3: partition one region -------------------------------
    report::heading("Drill: partitioning a region for 10 s mid-round");
    let t3 = Instant::now();
    w.partition_drill(50);
    gate.check_eq(
        "partition_eventual_delivery",
        3 * metro.subscription_count(),
        w.metro.delivered_updates(),
    );
    gate.check_eq(
        "partition_chaos_delivery",
        3 * spec.chaos_subscriptions(),
        w.chaos_delivered(),
    );
    gate.check_eq("partition_no_duplicates", 0, w.total_regressions());
    println!(
        "Partitioned region {} for {:?} across a round: the isolated \
         region drained completely on reunion ({} ms).\n",
        spec.partition_region,
        spec.partition_len,
        t3.elapsed().as_millis(),
    );

    // ---- Phase 4: crash + restart the chaos edge ---------------------
    report::heading("Drill: crashing the chaos edge, restarting, reconverging");
    let t4 = Instant::now();
    w.crash_drill(70, 90);
    // Original stubs saw all 5 rounds; the cohort was disconnected for
    // the mid-downtime round (its rejoin fetch brings it current) and
    // must see the post-recovery round in full.
    gate.check_eq(
        "crash_bystander_delivery",
        5 * metro.subscription_count(),
        w.metro.delivered_updates(),
    );
    gate.check_eq(
        "crash_chaos_post_recovery_delivery",
        4 * spec.chaos_subscriptions(),
        w.chaos_delivered(),
    );
    gate.check_eq("crash_no_duplicates", 0, w.total_regressions());
    // Rejoin: one fresh joining fetch per (stub, track) on top of the
    // stampede ones.
    gate.check_eq(
        "crash_rejoin_fetches",
        2 * spec.chaos_subscriptions(),
        w.chaos_fetched(),
    );
    let redials = w.chaos_redials();
    let redialed = redials.iter().filter(|&&r| r >= 1).count();
    gate.check_eq("crash_every_stub_redialed", spec.chaos_stubs, redialed);
    gate.check_le(
        "crash_redials_bounded",
        spec.chaos_stubs as u64 * spec.redials_per_stub_bound(),
        redials.iter().sum(),
    );
    gate.metric("crash_total_redials", redials.iter().sum());
    // State high-water: the recovered edge returns to its steady-state
    // envelope — same cohort, same subscriptions, no leaked sessions.
    gate.check_eq(
        "crash_edge_sessions_recovered",
        steady_sessions as u64,
        w.edge_sessions() as u64,
    );
    gate.check_le(
        "crash_edge_state_high_water",
        (steady_state as u64).saturating_mul(3) / 2,
        w.edge_state() as u64,
    );
    gate.metric("edge_recovered_state", w.edge_state() as u64);
    println!(
        "Crashed the chaos edge for {:?}: {} total redials across {} \
         stubs, all re-attached and current after restart ({} ms).\n",
        spec.edge_downtime,
        redials.iter().sum::<u64>(),
        spec.chaos_stubs,
        t4.elapsed().as_millis(),
    );

    // ---- Tables -------------------------------------------------------
    let mut t = Table::new(
        format!(
            "{}: per-tier relay stats after the full fault sequence",
            spec.name
        ),
        &[
            "tier",
            "relays",
            "down subs",
            "objects fwd",
            "up fetches",
            "redials",
            "failed dials",
        ],
    );
    let mut relay_redials = 0;
    for tier in w.metro.tier_stats() {
        relay_redials += tier.totals.redials;
        t.push(&[
            tier.tier.clone(),
            tier.relays.to_string(),
            tier.totals.downstream_subscribes.to_string(),
            tier.totals.objects_forwarded.to_string(),
            tier.totals.upstream_fetches.to_string(),
            tier.totals.redials.to_string(),
            tier.totals.failed_dials.to_string(),
        ]);
    }
    report::emit(&t, "exp_chaos_tiers");
    // Relay-tier uplink redials: none of these faults severs a relay's
    // established uplink long enough to close it (long-idle transports),
    // so the tier stays quiet — the bounded redial *storm* behavior is
    // pinned by `fetch_coalescing::redial_storm_is_counted_and_bounded`.
    gate.check_le("relay_tier_redials", 4, relay_redials);
    gate.metric("relay_tier_redials", relay_redials);

    println!(
        "Chaos run complete in {:.2} s wall clock.\n",
        wall.elapsed().as_secs_f64()
    );
    gate.finish();
}
