//! E6 — §5.3 DDNS: "this would yield a globally distributed application
//! layer update traffic of some 5.5 Gbps, which is negligible at global
//! scale."
//!
//! Two parts: (a) the paper's analytic estimate, reproduced from
//! [`DdnsScenario`]; (b) a scaled micro-simulation — one DDNS
//! authoritative server, one relay, S subscribers, built via
//! `netsim::topo` — validating the per-update byte count and the relay
//! fan-out the analytic model assumes. (The full 3-tier tree version
//! lives in `exp_tree_scenario`.)
//!
//! Run with `--smoke` for a scaled-down CI variant and `--check` to emit
//! the machine-readable invariant summary (`results/ci_ddns.json`) and
//! exit nonzero on any violation.

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::TreeStub;
use moqdns_core::auth::AuthServer;
use moqdns_core::relay_node::RelayNode;
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_netsim::topo::TopoBuilder;
use moqdns_netsim::{Addr, LinkConfig, SimTime, Simulator};
use moqdns_quic::TransportConfig;
use moqdns_stats::{format_bps, Table};
use moqdns_workload::scenarios::DdnsScenario;
use std::net::Ipv4Addr;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    let mut gate = InvariantGate::new("ddns", &opts);
    report::heading("E6 / §5.3 — Dynamic DNS update traffic");

    // (a) The paper's arithmetic.
    let s = DdnsScenario::default();
    let mut t = Table::new(
        "Analytic estimate (paper parameters)",
        &["parameter", "value"],
    );
    t.push(&["DDNS users".to_string(), s.users.to_string()]);
    t.push(&[
        "interested users each".to_string(),
        s.interested_per_user.to_string(),
    ]);
    t.push(&["relays per path".to_string(), s.relays_per_path.to_string()]);
    t.push(&[
        "updates per day".to_string(),
        format!("{}", s.updates_per_day),
    ]);
    t.push(&["update size".to_string(), format!("{} B", s.update_size)]);
    t.push(&[
        "global update traffic".to_string(),
        format!("{} (paper: ~5.5 Gbps)", format_bps(s.global_bps())),
    ]);
    report::emit(&t, "exp_ddns_analytic");

    // (b) Micro-simulation: 1 DDNS zone behind a relay, S interested
    // subscribers, 2 updates.
    let subs_n: usize = if opts.smoke { 5 } else { 20 };
    let mut sim = Simulator::new(61);
    let link = LinkConfig::with_delay(Duration::from_millis(15));
    sim.set_default_link(link);
    let name: moqdns_dns::name::Name = "home.ddns.example".parse().unwrap();
    let mut zone = Zone::with_default_soa("ddns.example".parse().unwrap());
    zone.add_record(Record::new(
        name.clone(),
        60,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    let q = Question::new(name.clone(), RecordType::A);

    let topo = TopoBuilder::new()
        .tier("ddns-auth", 1, 0, link)
        .tier("relay", 1, 1, link)
        .tier("sub", subs_n, 1, link)
        .build(&mut sim, |sim, ctx| match ctx.tier_name {
            "ddns-auth" => sim.add_node(
                ctx.name.clone(),
                Box::new(AuthServer::new(
                    Authority::single(zone.clone()),
                    TransportConfig::default(),
                    1,
                )),
            ),
            "relay" => sim.add_node(
                ctx.name.clone(),
                Box::new(RelayNode::new(Addr::new(ctx.parents[0], MOQT_PORT), 0, 2)),
            ),
            _ => sim.add_node(
                ctx.name.clone(),
                Box::new(TreeStub::new(
                    Addr::new(ctx.parents[0], MOQT_PORT),
                    vec![q.clone()],
                    10 + ctx.index as u64,
                )),
            ),
        });
    let auth = topo.tier_named("ddns-auth")[0];
    let relay = topo.tier_named("relay")[0];
    let subs = topo.tier_named("sub").to_vec();

    sim.run_until(SimTime::from_secs(5));
    sim.stats_mut().reset();
    let t0 = sim.now();

    // Two updates (the per-day rate, compressed).
    for (i, octet) in [50u8, 51].iter().enumerate() {
        let at = t0 + Duration::from_secs(10 * (i as u64 + 1));
        let o = *octet;
        let nm = name.clone();
        sim.schedule_at(at, move |sim| {
            sim.with_node::<AuthServer, _>(auth, |a, ctx| {
                a.update_zone(ctx, |authority| {
                    if let Some(z) = authority.find_zone_mut(&nm) {
                        z.set_records(
                            &nm,
                            RecordType::A,
                            vec![Record::new(
                                nm.clone(),
                                60,
                                RData::A(Ipv4Addr::new(203, 0, 113, o)),
                            )],
                        );
                    }
                });
            });
        });
    }
    sim.run_until(t0 + Duration::from_secs(40));

    let delivered: u64 = subs
        .iter()
        .map(|s| sim.node_ref::<TreeStub>(*s).updates)
        .sum();
    let auth_egress = sim.stats().between(auth, relay);
    let relay_fanout: u64 = subs
        .iter()
        .map(|s| sim.stats().between(relay, *s).bytes)
        .sum();
    let agg = sim.node_ref::<RelayNode>(relay).aggregation_factor();

    let mut t2 = Table::new(
        format!("Micro-simulation: 1 DDNS record, 1 relay, {subs_n} subscribers, 2 updates"),
        &["metric", "value"],
    );
    t2.push(&[
        format!("updates delivered (expect 2 × {subs_n} = {})", 2 * subs_n),
        delivered.to_string(),
    ]);
    t2.push(&[
        format!("relay aggregation factor (expect {subs_n})"),
        format!("{agg:.0}"),
    ]);
    t2.push(&[
        "auth→relay bytes (1 upstream copy per update)".to_string(),
        auth_egress.bytes.to_string(),
    ]);
    t2.push(&[
        "relay→subscribers bytes (fan-out)".to_string(),
        relay_fanout.to_string(),
    ]);
    report::emit(&t2, "exp_ddns_sim");

    gate.check_eq("complete_delivery", 2 * subs_n as u64, delivered);
    gate.check_true(
        "relay_aggregates_to_one_upstream_sub",
        (agg - subs_n as f64).abs() < 1e-9,
        format!("aggregation factor {agg:.0}"),
    );
    // Forwarded-copy accounting for the CI baseline diff: the relay turns
    // one upstream copy per update into exactly one copy per subscriber.
    let forwarded = sim.node_ref::<RelayNode>(relay).stats().objects_forwarded;
    gate.check_eq("relay_forwarded_copies", 2 * subs_n as u64, forwarded);
    gate.metric("deliveries", delivered);
    gate.metric("relay_objects_forwarded", forwarded);
    gate.metric("auth_to_relay_datagrams", auth_egress.delivered);
    println!(
        "The relay turns 1 upstream update into {subs_n} downstream copies — the \
         aggregation the paper's 5.5 Gbps estimate assumes."
    );
    gate.finish();
}
