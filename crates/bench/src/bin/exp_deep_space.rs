//! E8 — §5.3 deep space: "a deep space network could benefit from the same
//! push mechanisms to update domain information on other planets".
//!
//! A Mars-like topology: stub and recursive resolver on Mars, the DNS
//! hierarchy on Earth, 8 minutes one-way light delay between them. First
//! lookups pay interplanetary round trips; once records are replicated via
//! subscriptions, lookups are local and updates arrive one OWD after they
//! happen. High-churn (load-balancing) records are throttled per §5.3.

use moqdns_bench::report;
use moqdns_bench::worlds::{World, WorldSpec};
use moqdns_core::recursive::UpstreamMode;
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_netsim::LinkConfig;
use moqdns_stats::{format_bps, format_duration, Table};
use moqdns_workload::scenarios::DeepSpaceScenario;
use std::time::Duration;

const OWD: Duration = Duration::from_secs(8 * 60); // Mars, mid-range

fn build_mars(mode: UpstreamMode, stub_mode: StubMode, seed: u64) -> World {
    let spec = WorldSpec {
        seed,
        mode,
        stub_mode,
        link_delay: Duration::from_millis(10),
        // Interplanetary paths need interplanetary timers (the TIPTOP QUIC
        // profile's transport-layer adaptations, §5.3).
        moqt_step_timeout: Some(Duration::from_secs(3 * 3600)),
        udp_rto: Some(Duration::from_secs(20 * 60)),
        auth_transport: Some(
            moqdns_quic::TransportConfig::default().idle_timeout(Duration::from_secs(24 * 3600)),
        ),
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    // Interplanetary links: recursive (Mars) ↔ Earth servers.
    let space = LinkConfig::with_delay(OWD);
    for earth in [w.root, w.tld, w.auth] {
        w.sim.set_link(w.recursive, earth, space);
    }
    w
}

fn main() {
    report::heading("E8 / §5.3 — deep space DNS");

    let mut t = Table::new(
        format!(
            "Mars scenario: one-way delay {}",
            format_duration(OWD.as_secs_f64())
        ),
        &["operation", "latency"],
    );

    // Classic first lookup: recursive walks root→TLD→auth over space.
    let mut w = build_mars(UpstreamMode::Classic, StubMode::Classic, 81);
    w.lookup(0, "www", Duration::from_secs(4 * 3600));
    let l = w.sim.node_ref::<StubResolver>(w.stubs[0]).metrics.lookups[0].latency();
    t.push(&[
        "classic first lookup (3 interplanetary RTTs)".to_string(),
        format_duration(l.as_secs_f64()),
    ]);

    // Replicated: the record was pushed ahead of time; lookup is local.
    let mut w = build_mars(UpstreamMode::Moqt, StubMode::Moqt, 82);
    w.lookup(0, "www", Duration::from_secs(12 * 3600)); // pays the cost once
    w.lookup(0, "www", Duration::from_secs(60)); // now replicated
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    let first = stub.metrics.lookups[0].latency();
    let second = stub.metrics.lookups[1].latency();
    t.push(&[
        "MoQT first lookup (pays interplanetary setup)".to_string(),
        format_duration(first.as_secs_f64()),
    ]);
    t.push(&[
        "MoQT lookup once replicated".to_string(),
        format_duration(second.as_secs_f64()),
    ]);

    // Update propagation: a change on Earth reaches Mars in ~1 OWD.
    let change = w.update_record("www", 99);
    let deadline = w.sim.now() + Duration::from_secs(2 * 3600);
    w.sim.run_until(deadline);
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    let arrival = stub
        .metrics
        .updates
        .last()
        .expect("update pushed to Mars")
        .received;
    t.push(&[
        "record update Earth → Mars stub (push)".to_string(),
        format_duration((arrival - change).as_secs_f64()),
    ]);
    report::emit(&t, "exp_deep_space");

    // Throttling table (analytic, §5.3: load-balancing churn is pointless
    // across interplanetary distances).
    let mut t2 = Table::new(
        "Update throttling on the deep-space link (10k replicated domains, 300 B updates)",
        &["max updates/domain/hour", "link load"],
    );
    for cap in [60.0, 6.0, 1.0, 0.1] {
        let s = DeepSpaceScenario {
            max_updates_per_domain_per_hour: cap,
            ..DeepSpaceScenario::default()
        };
        t2.push(&[format!("{cap}"), format_bps(s.link_bps())]);
    }
    report::emit(&t2, "exp_deep_space_throttle");

    assert!(
        second < Duration::from_millis(1),
        "replicated lookup is local"
    );
    assert!(
        (arrival - change) < OWD + Duration::from_secs(5),
        "push arrives in ~one OWD"
    );
    println!(
        "Replication turns a {} lookup into a local one; updates still arrive \
         one light-delay after they happen.",
        format_duration((2 * OWD).as_secs_f64())
    );
}
