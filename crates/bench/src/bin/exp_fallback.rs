//! E10 — §4.5 compatibility: mixed deployments where some authoritative
//! servers do not speak MoQT.
//!
//! Topology: root and TLD delegate two zones — `fast.com` served by a
//! MoQT-capable authoritative server, `legacy.com` by a **UDP-only** one.
//! The recursive resolver uses the happy-eyeballs race (§4.5). We verify:
//!
//! * lookups succeed for both zones (UDP wins the race for legacy.com);
//! * the stub's subscription for fast.com is accepted, while legacy.com's
//!   is declined with SUBSCRIBE_ERROR (no updates available) — unless the
//!   resolver runs in poll-proxy mode, where it re-requests at the TTL and
//!   synthesizes pushes.

use moqdns_bench::report;
use moqdns_core::auth::AuthServer;
use moqdns_core::recursive::{RecursiveConfig, RecursiveResolver, UpstreamMode};
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_core::{node_ip, DNS_PORT};
use moqdns_dns::message::Question;
use moqdns_dns::name::Name;
use moqdns_dns::rdata::RData;
use moqdns_dns::resolver::RootHint;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::transport::serve_datagram;
use moqdns_dns::zone::Zone;
use moqdns_netsim::{Addr, Ctx, LinkConfig, Node, NodeId, Payload, Simulator};
use moqdns_quic::TransportConfig;
use moqdns_stats::Table;
use std::any::Any;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Duration;

/// An authoritative server that ONLY speaks classic DNS-over-UDP —
/// the pre-MoQT world §4.5 must interoperate with.
struct UdpOnlyAuth {
    authority: Authority,
}

impl Node for UdpOnlyAuth {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Payload) {
        if to_port == DNS_PORT {
            if let Ok(reply) = serve_datagram(&self.authority, &payload) {
                ctx.send(DNS_PORT, from, reply);
            }
        }
        // MoQT datagrams fall on deaf ears — exactly like a real legacy
        // server with no QUIC listener.
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

struct MixedWorld {
    sim: Simulator,
    stub: NodeId,
}

fn build(poll_proxy: bool, seed: u64) -> MixedWorld {
    let mut sim = Simulator::new(seed);
    sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(10)));

    let root_id = NodeId::from_index(0);
    let tld_id = NodeId::from_index(1);
    let fast_id = NodeId::from_index(2);
    let legacy_id = NodeId::from_index(3);

    let mut root_zone = Zone::with_default_soa(Name::root());
    root_zone.add_record(Record::new(
        "com".parse().unwrap(),
        86_400,
        RData::NS("ns.tld".parse().unwrap()),
    ));
    root_zone.add_record(Record::new(
        "ns.tld".parse().unwrap(),
        86_400,
        RData::A(node_ip(tld_id)),
    ));

    let mut tld_zone = Zone::with_default_soa("com".parse().unwrap());
    for (zone, id) in [("fast.com", fast_id), ("legacy.com", legacy_id)] {
        let ns: Name = format!("ns1.{zone}").parse().unwrap();
        tld_zone.add_record(Record::new(
            zone.parse().unwrap(),
            86_400,
            RData::NS(ns.clone()),
        ));
        tld_zone.add_record(Record::new(ns, 86_400, RData::A(node_ip(id))));
    }

    let mut fast_zone = Zone::with_default_soa("fast.com".parse().unwrap());
    fast_zone.add_record(Record::new(
        "www.fast.com".parse().unwrap(),
        300,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    let mut legacy_zone = Zone::with_default_soa("legacy.com".parse().unwrap());
    legacy_zone.add_record(Record::new(
        "www.legacy.com".parse().unwrap(),
        60,
        RData::A(Ipv4Addr::new(192, 0, 2, 2)),
    ));

    let root = sim.add_node(
        "root",
        Box::new(AuthServer::new(
            Authority::single(root_zone),
            TransportConfig::default(),
            11,
        )),
    );
    let _tld = sim.add_node(
        "tld",
        Box::new(AuthServer::new(
            Authority::single(tld_zone),
            TransportConfig::default(),
            12,
        )),
    );
    let _fast = sim.add_node(
        "fast-auth (MoQT)",
        Box::new(AuthServer::new(
            Authority::single(fast_zone),
            TransportConfig::default(),
            13,
        )),
    );
    let _legacy = sim.add_node(
        "legacy-auth (UDP only)",
        Box::new(UdpOnlyAuth {
            authority: Authority::single(legacy_zone),
        }),
    );
    assert_eq!(root, root_id);

    let roots = vec![RootHint {
        name: "a.root".parse().unwrap(),
        addr: IpAddr::V4(node_ip(root_id)),
    }];
    let mut cfg = RecursiveConfig::new(UpstreamMode::HappyEyeballs, roots, 21);
    cfg.poll_proxy = poll_proxy;
    cfg.moqt_step_timeout = Duration::from_millis(500);
    let recursive = sim.add_node("recursive", Box::new(RecursiveResolver::new(cfg)));
    let stub = sim.add_node(
        "stub",
        Box::new(StubResolver::new(
            StubMode::Moqt,
            Addr::new(recursive, 0),
            31,
        )),
    );
    sim.run_until_idle();
    MixedWorld { sim, stub }
}

fn main() {
    report::heading("E10 / §4.5 — incremental deployment: happy-eyeballs fallback");

    let mut t = Table::new(
        "Mixed deployment (recursive races MoQT vs UDP per step)",
        &["zone", "lookup ok", "answer latency ms", "subscription"],
    );

    for poll_proxy in [false, true] {
        let mut w = build(poll_proxy, if poll_proxy { 102 } else { 101 });
        for host in ["www.fast.com", "www.legacy.com"] {
            let q = Question::new(host.parse().unwrap(), RecordType::A);
            let stub = w.stub;
            let qq = q.clone();
            w.sim.with_node::<StubResolver, _>(stub, |s, ctx| {
                s.lookup(ctx, qq);
            });
            let deadline = w.sim.now() + Duration::from_secs(10);
            w.sim.run_until(deadline);
        }
        let stub_ref = w.sim.node_ref::<StubResolver>(w.stub);
        let subscribed: Vec<String> = stub_ref
            .subscribed_questions()
            .iter()
            .map(|q| q.qname.to_string())
            .collect();
        for (host, lookup) in ["www.fast.com", "www.legacy.com"]
            .iter()
            .zip(&stub_ref.metrics.lookups)
        {
            let has_sub = subscribed.iter().any(|s| s.starts_with(host));
            t.push(&[
                format!("{host}{}", if poll_proxy { " (poll-proxy)" } else { "" }),
                lookup.ok.to_string(),
                format!("{:.0}", lookup.latency().as_secs_f64() * 1e3),
                if has_sub {
                    "accepted".to_string()
                } else {
                    "declined (SUBSCRIBE_ERROR)".to_string()
                },
            ]);
        }
    }
    report::emit(&t, "exp_fallback");
    println!(
        "fast.com: MoQT wins the race and the subscription sticks. legacy.com: \
         UDP answers, and the subscription is declined — unless poll-proxy mode \
         re-requests at the TTL and keeps it alive (§4.5)."
    );
}
