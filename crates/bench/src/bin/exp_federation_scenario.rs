//! E12 — §3 + §5.3: cross-region core federation — cores serve each
//! other, not just the origin.
//!
//! The mesh scenario (E11) lets every edge attach to every core, so the
//! shard routing happens at the edges. A production multi-region
//! deployment cannot do that: edges attach *regionally* and the core
//! tier itself must resolve non-home tracks. This binary instantiates
//! the [`FederationScenario`] — origin → K regional cores (full-mesh
//! peer links, one hash shard each) → region-local edges → stubs — and
//! machine-checks:
//!
//! 1. **origin offload**: under the all-stubs-join-all-tracks stampede,
//!    each non-home core fetches a shard's tracks from the home *peer*
//!    exactly once, and the origin sees exactly one fetch per track
//!    (from its home core) — quantified against the naive per-region
//!    escalation a non-federated deployment would produce;
//! 2. **one copy per link under federation**: updates leave the origin
//!    once (toward the home core) and enter every non-home core exactly
//!    once, over its peer link — subscriber counts never multiply
//!    inter-region traffic. The slower peer links make the asymmetry
//!    visible: remote-region stubs receive updates later than the home
//!    region by roughly the extra peer-hop delay;
//! 3. **origin independence**: after killing the origin mid-run, a
//!    brand-new edge + stubs in *every* region still get full service
//!    for every already-published track, region-to-region, with zero
//!    loss.
//!
//! Run with `--smoke` for the tiny CI variant and `--check` to emit the
//! machine-readable invariant summary (`results/ci_federation.json`) and
//! exit nonzero on any violation.

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::{FederationWorld, TreeStub};
use moqdns_core::relay_node::RelayNode;
use moqdns_stats::Table;
use moqdns_workload::scenarios::FederationScenario;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    report::heading("E12 / §3+§5.3 — cross-region core federation");
    let spec = if opts.smoke {
        FederationScenario::federation().smoke()
    } else {
        FederationScenario::federation()
    };
    let mut gate = InvariantGate::new("federation", &opts);

    // ---- Build + joining-fetch stampede ------------------------------
    // Every stub subscribes to every track through its regional edge at
    // t=0. Each core must resolve non-home tracks over peer links.
    let mut w = FederationWorld::build(&spec, 91);
    let fetched: u64 = w
        .stubs
        .iter()
        .map(|&s| w.sim.node_ref::<TreeStub>(s).fetched)
        .sum();
    gate.check_eq(
        "stampede_fetches_answered",
        spec.stub_count() as u64 * spec.tracks as u64,
        fetched,
    );
    let mut peer_fetch_total = 0;
    let mut origin_fetch_total = 0;
    for (c, &core) in w.cores.clone().iter().enumerate() {
        let s = w.sim.node_ref::<RelayNode>(core).stats();
        let origin_fetches = s.upstream_fetches - s.peer_fetches;
        // Every track homed on a *peer* shard was fetched from its home
        // core exactly once, however many regional edges stampeded.
        gate.check_eq(
            &format!("core{c}_peer_fetches"),
            (spec.tracks - w.shard_size(c)) as u64,
            s.peer_fetches,
        );
        // Only the home shard's tracks ever reached the origin.
        gate.check_eq(
            &format!("core{c}_origin_fetches"),
            w.shard_size(c) as u64,
            origin_fetches,
        );
        peer_fetch_total += s.peer_fetches;
        origin_fetch_total += origin_fetches;
    }
    gate.check_eq(
        "peer_fetch_total",
        spec.peer_fetch_total(),
        peer_fetch_total,
    );
    gate.check_eq(
        "origin_fetch_total",
        spec.origin_fetch_bound(),
        origin_fetch_total,
    );
    for (i, &e) in w.edges.clone().iter().enumerate() {
        let s = w.sim.node_ref::<RelayNode>(e).stats();
        gate.check_eq(
            &format!("edge{i}_upstream_fetches"),
            spec.tracks as u64,
            s.upstream_fetches,
        );
    }
    let measured_offload = 100 * peer_fetch_total / (peer_fetch_total + origin_fetch_total);
    gate.check_eq(
        "origin_offload_percent",
        spec.offload_percent(),
        measured_offload,
    );
    gate.metric("stampede_peer_fetches", peer_fetch_total);
    gate.metric("stampede_origin_fetches", origin_fetch_total);
    gate.metric("stampede_naive_origin_fetches", spec.naive_origin_fetches());
    gate.metric("origin_offload_percent", measured_offload);
    println!(
        "Stampede: {} origin fetches (naive regional escalation: {}); \
         {} shard fetches served core-to-core — {}% origin offload.\n",
        origin_fetch_total,
        spec.naive_origin_fetches(),
        peer_fetch_total,
        measured_offload
    );

    // ---- Measured update rounds: one copy per link under federation --
    w.sim.stats_mut().reset();
    let baseline = w.delivered_updates();
    let peer_objects_before: Vec<u64> = w
        .cores
        .iter()
        .map(|&c| w.sim.node_ref::<RelayNode>(c).stats().peer_objects)
        .collect();
    for round in 0..spec.updates_per_track {
        w.update_round(10 + (round as u8) * 16);
    }
    w.sim.run_until(w.sim.now() + Duration::from_secs(5));
    gate.check_eq(
        "complete_delivery",
        spec.expected_deliveries(),
        w.delivered_updates() - baseline,
    );
    // Origin egress: one copy per update, toward the home core only.
    for (c, &core) in w.cores.clone().iter().enumerate() {
        let got = w.sim.stats().between(w.auth, core).delivered;
        gate.check_eq(
            &format!("origin_to_core{c}_one_copy"),
            spec.updates_per_track * w.shard_size(c) as u64,
            got,
        );
        // Peer-link ingress: every non-home update entered this core
        // exactly once, over the peer link from its home core.
        let peer_objs =
            w.sim.node_ref::<RelayNode>(core).stats().peer_objects - peer_objects_before[c];
        gate.check_eq(
            &format!("core{c}_peer_ingress_one_copy"),
            spec.updates_per_track * (spec.tracks - w.shard_size(c)) as u64,
            peer_objs,
        );
    }
    gate.metric("update_deliveries", w.delivered_updates() - baseline);
    gate.metric("origin_egress_copies", w.delivered_into_cores());

    // ---- Latency asymmetry: remote regions lag by the peer hop -------
    // One update of track 0: its home region receives it straight off
    // the origin→home-core path; every other region pays the extra
    // (slower) core→core peer hop.
    let home = w.home_core(0);
    let remote = (home + 1) % spec.cores;
    let t0 = w.sim.now();
    w.update_track(0, 199);
    w.sim.run_until(w.sim.now() + Duration::from_secs(3));
    let region_latency = |w: &FederationWorld, region: usize| -> u64 {
        w.region_stubs(region)
            .iter()
            .filter_map(|&s| w.sim.node_ref::<TreeStub>(s).last_update_at)
            .map(|at| (at - t0).as_micros() as u64)
            .max()
            .unwrap_or(0)
    };
    let home_us = region_latency(&w, home);
    let remote_us = region_latency(&w, remote);
    gate.check_true(
        "remote_region_lags_home_region",
        remote_us > home_us,
        format!("home {home_us}us < remote {remote_us}us"),
    );
    gate.metric("home_region_delivery_us", home_us);
    gate.metric("remote_region_delivery_us", remote_us);
    println!(
        "Latency asymmetry: home region {:.1} ms, remote region {:.1} ms \
         (inter-region links {:?} vs intra {:?}).\n",
        home_us as f64 / 1000.0,
        remote_us as f64 / 1000.0,
        spec.peer_delay,
        spec.link_delay
    );

    // ---- Origin-kill drill: published tracks keep flowing ------------
    report::heading("Drill: killing the origin, then cold-joining every region");
    w.kill_origin();
    w.sim.run_until(w.sim.now() + Duration::from_secs(3));
    // The core tier keeps its region-to-region subscriptions: only the
    // origin-bound parent subscriptions are gone.
    for (c, &core) in w.cores.clone().iter().enumerate() {
        gate.check_eq(
            &format!("core{c}_peer_subs_survive_origin_death"),
            (spec.tracks - w.shard_size(c)) as u64,
            w.sim.node_ref::<RelayNode>(core).peer_subscription_count() as u64,
        );
    }
    // A brand-new edge with fresh stubs in every region: all joining
    // fetches for already-published tracks must be answered from the
    // core tier's caches — the origin is dead, so any loss here would be
    // real loss.
    let late_per_edge = 2usize;
    let mut late_stubs = Vec::new();
    for region in 0..spec.cores {
        let (_edge, stubs) = w.add_late_edge(region, late_per_edge);
        late_stubs.extend(stubs);
    }
    w.sim.run_until(w.sim.now() + Duration::from_secs(5));
    let late_fetched: u64 = late_stubs
        .iter()
        .map(|&s| w.sim.node_ref::<TreeStub>(s).fetched)
        .sum();
    gate.check_eq(
        "post_kill_zero_loss_for_published_tracks",
        (spec.cores * late_per_edge * spec.tracks) as u64,
        late_fetched,
    );
    gate.metric("post_kill_late_fetches_answered", late_fetched);
    println!(
        "Origin died; {} cold joining fetches across {} regions were all \
         served from the federated core tier.\n",
        late_fetched, spec.cores
    );

    // ---- Tables -------------------------------------------------------
    let mut t = Table::new(
        format!(
            "{}: per-tier relay stats ({} federated cores/regions x {} edges, {} stubs)",
            spec.name,
            spec.cores,
            spec.edges_per_region,
            spec.stub_count()
        ),
        &[
            "tier",
            "relays",
            "down subs",
            "up subs (live)",
            "objects fwd",
            "up fetches",
            "peer fetches",
            "peer objects",
            "origin offload",
            "reroutes",
            "rebalances",
        ],
    );
    for tier in w.tier_stats() {
        t.push(&[
            tier.tier.clone(),
            tier.relays.to_string(),
            tier.totals.downstream_subscribes.to_string(),
            tier.upstream_subscriptions.to_string(),
            tier.totals.objects_forwarded.to_string(),
            tier.totals.upstream_fetches.to_string(),
            tier.totals.peer_fetches.to_string(),
            tier.totals.peer_objects.to_string(),
            tier.totals.origin_offload.to_string(),
            tier.totals.reroutes.to_string(),
            tier.totals.rebalances.to_string(),
        ]);
    }
    report::emit(&t, "exp_federation_tiers");
    for tier in w.tier_stats() {
        gate.metric(
            &format!("{}_objects_forwarded", tier.tier),
            tier.totals.objects_forwarded,
        );
        gate.metric(
            &format!("{}_peer_objects", tier.tier),
            tier.totals.peer_objects,
        );
    }

    println!(
        "Federation held: origin offloaded, one copy per inter-region link, \
         and full region-to-region service after the origin died.\n"
    );
    gate.finish();
}
