//! E11 — §3 + §5.3: the standing multi-region hash-shard mesh.
//!
//! The paper's distribution argument needs more than a single tree: §5.3
//! assumes deep multi-relay paths and relays that aggregate *all*
//! downstream demand. This binary instantiates the [`MeshScenario`] —
//! origin → K core relays (one hash shard each) → per-region edge relays
//! sharding tracks across all cores → stubs — and machine-checks:
//!
//! 1. **stampede coalescing**: all stubs issue joining fetches for the
//!    same tracks at once, yet each edge opens exactly one upstream fetch
//!    per track and the whole core tier opens one per track system-wide
//!    (the waiter list fans the single result out to every stub);
//! 2. **one copy per link under sharding**: during update rounds each
//!    update enters every edge over exactly one core→edge link, and the
//!    origin pushes exactly one copy per update toward the home core;
//! 3. **kill + revive**: shutting a core down mid-run ring-walks its
//!    shard to surviving cores with zero loss, and reviving it makes
//!    every edge *rebalance* the shard back home — again with zero loss.
//!
//! Run with `--smoke` for the tiny CI variant and `--check` to emit the
//! machine-readable invariant summary (`results/ci_mesh.json`) and exit
//! nonzero on any violation.

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::{MeshWorld, TreeStub};
use moqdns_core::relay_node::RelayNode;
use moqdns_stats::Table;
use moqdns_workload::scenarios::MeshScenario;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    report::heading("E11 / §3+§5.3 — multi-region hash-shard relay mesh");
    let spec = if opts.smoke {
        MeshScenario::mesh().smoke()
    } else {
        MeshScenario::mesh()
    };
    let mut gate = InvariantGate::new("mesh", &opts);

    // ---- Build + joining-fetch stampede ------------------------------
    // Every stub subscribes to every track with a joining fetch at t=0:
    // stubs × tracks concurrent fetches slam into cold caches.
    let mut w = MeshWorld::build(&spec, 81);
    let fetched: u64 = w
        .stubs
        .iter()
        .map(|&s| w.sim.node_ref::<TreeStub>(s).fetched)
        .sum();
    gate.check_eq(
        "stampede_fetches_answered",
        spec.stub_count() as u64 * spec.tracks as u64,
        fetched,
    );
    for (i, &e) in w.edges.clone().iter().enumerate() {
        let s = w.sim.node_ref::<RelayNode>(e).stats();
        gate.check_eq(
            &format!("edge{i}_upstream_fetches"),
            spec.edge_fetch_bound(),
            s.upstream_fetches,
        );
    }
    let tiers = w.tier_stats();
    let (core_tier, edge_tier) = (&tiers[0], &tiers[1]);
    gate.check_eq(
        "core_tier_upstream_fetches",
        spec.core_tier_fetch_bound(),
        core_tier.totals.upstream_fetches,
    );
    gate.check_eq(
        "edge_tier_waiters_served",
        edge_tier.totals.fetch_cache_misses - edge_tier.totals.upstream_fetches,
        edge_tier.totals.fetch_coalesced,
    );
    gate.metric("stampede_edge_misses", edge_tier.totals.fetch_cache_misses);
    gate.metric("stampede_edge_coalesced", edge_tier.totals.fetch_coalesced);
    gate.metric(
        "stampede_edge_upstream_fetches",
        edge_tier.totals.upstream_fetches,
    );
    gate.metric(
        "stampede_core_upstream_fetches",
        core_tier.totals.upstream_fetches,
    );
    gate.metric("stampede_naive_edge_fetches", spec.naive_edge_fetches());
    println!(
        "Stampede: {} joining fetches entered the edge tier; coalescing opened \
         only {} edge-upstream fetches and {} origin fetches (naive: {}).\n",
        edge_tier.totals.fetch_cache_misses,
        edge_tier.totals.upstream_fetches,
        core_tier.totals.upstream_fetches,
        spec.naive_edge_fetches()
    );

    // ---- Measured update rounds: one copy per link under sharding ----
    w.sim.stats_mut().reset();
    let baseline = w.delivered_updates();
    for round in 0..spec.updates_per_track {
        w.update_round(10 + (round as u8) * 16);
    }
    w.sim.run_until(w.sim.now() + Duration::from_secs(5));
    gate.check_eq(
        "complete_delivery",
        spec.expected_deliveries(),
        w.delivered_updates() - baseline,
    );
    // Origin egress: each update leaves the origin once, toward the home
    // core of its track's shard — per core, its shard's share exactly.
    for (c, &core) in w.cores.clone().iter().enumerate() {
        let got = w.sim.stats().between(w.auth, core).delivered;
        gate.check_eq(
            &format!("origin_to_core{c}_one_copy"),
            spec.updates_per_track * w.shard_size(c) as u64,
            got,
        );
    }
    // Edge ingress: each update enters each edge exactly once, over the
    // single core→edge link its shard selects.
    for (i, &e) in w.edges.clone().iter().enumerate() {
        gate.check_eq(
            &format!("into_edge{i}_one_copy"),
            spec.total_updates(),
            w.delivered_into_edge(e),
        );
    }
    for (c, &core) in w.cores.clone().iter().enumerate() {
        gate.check_eq(
            &format!("core{c}_upstream_subs"),
            w.shard_size(c) as u64,
            w.sim
                .node_ref::<RelayNode>(core)
                .upstream_subscription_count() as u64,
        );
    }
    gate.metric("update_deliveries", w.delivered_updates() - baseline);
    gate.metric("origin_egress_copies", w.delivered_into_cores());

    // ---- Kill + revive drill -----------------------------------------
    // The victim: the home core of track 0 (guaranteed non-empty shard).
    let victim = w.home_core(0);
    let victim_shard = w.shard_size(victim) as u64;
    report::heading(&format!(
        "Drill: killing core{victim} (shard of {victim_shard} tracks), then reviving it"
    ));
    let before_kill = w.delivered_updates();
    w.kill_core(victim);
    w.sim.run_until(w.sim.now() + Duration::from_secs(5));
    let reroutes: u64 = w
        .edges
        .iter()
        .map(|&e| w.sim.node_ref::<RelayNode>(e).stats().reroutes)
        .sum();
    gate.check_eq(
        "kill_reroutes",
        w.edges.len() as u64 * victim_shard,
        reroutes,
    );
    w.update_round(200);
    w.sim.run_until(w.sim.now() + Duration::from_secs(5));
    gate.check_eq(
        "zero_post_kill_loss",
        spec.tracks as u64 * spec.stub_count() as u64,
        w.delivered_updates() - before_kill,
    );

    // Revive: edge recovery probes re-attach and every edge rebalances
    // the victim's shard back onto it.
    let before_revive = w.delivered_updates();
    w.revive_core(victim);
    w.sim.run_until(w.sim.now() + Duration::from_secs(20));
    let rebalances: u64 = w
        .edges
        .iter()
        .map(|&e| w.sim.node_ref::<RelayNode>(e).stats().rebalances)
        .sum();
    gate.check_eq(
        "recovery_rebalances",
        w.edges.len() as u64 * victim_shard,
        rebalances,
    );
    gate.check_eq(
        "revived_core_reclaimed_shard",
        victim_shard,
        w.sim
            .node_ref::<RelayNode>(w.cores[victim])
            .upstream_subscription_count() as u64,
    );
    for (i, &e) in w.edges.clone().iter().enumerate() {
        gate.check_eq(
            &format!("edge{i}_upstream_subs_after_recovery"),
            spec.tracks as u64,
            w.sim.node_ref::<RelayNode>(e).upstream_subscription_count() as u64,
        );
    }
    w.update_round(230);
    w.sim.run_until(w.sim.now() + Duration::from_secs(5));
    gate.check_eq(
        "zero_post_recovery_loss",
        spec.tracks as u64 * spec.stub_count() as u64,
        w.delivered_updates() - before_revive,
    );
    gate.metric("drill_reroutes", reroutes);
    gate.metric("drill_rebalances", rebalances);

    // ---- Tables -------------------------------------------------------
    let mut t = Table::new(
        format!(
            "{}: per-tier relay stats ({} cores, {} regions x {} edges, {} stubs)",
            spec.name,
            spec.cores,
            spec.regions,
            spec.edges_per_region,
            spec.stub_count()
        ),
        &[
            "tier",
            "relays",
            "down subs",
            "up subs (live)",
            "objects fwd",
            "fetch miss",
            "coalesced",
            "up fetches",
            "waiters served",
            "reroutes",
            "rebalances",
        ],
    );
    for tier in w.tier_stats() {
        t.push(&[
            tier.tier.clone(),
            tier.relays.to_string(),
            tier.totals.downstream_subscribes.to_string(),
            tier.upstream_subscriptions.to_string(),
            tier.totals.objects_forwarded.to_string(),
            tier.totals.fetch_cache_misses.to_string(),
            tier.totals.fetch_coalesced.to_string(),
            tier.totals.upstream_fetches.to_string(),
            tier.totals.fetch_waiters_served.to_string(),
            tier.totals.reroutes.to_string(),
            tier.totals.rebalances.to_string(),
        ]);
    }
    report::emit(&t, "exp_mesh_tiers");
    for tier in w.tier_stats() {
        gate.metric(
            &format!("{}_objects_forwarded", tier.tier),
            tier.totals.objects_forwarded,
        );
    }

    println!(
        "Mesh survived a core kill (ring-walk reroutes) and a revival \
         (shard rebalanced home) with zero update loss.\n"
    );
    gate.finish();
}
