//! E13 — the metro-scale federation: ~10,000 stubs over ~64 tracks on
//! the cross-region core-federation topology.
//!
//! Every other scenario in the CI matrix tops out at ~64 stubs; this one
//! grows the [`FederationScenario`] shape two orders of magnitude (1
//! origin → 3 federated cores → 12 region-local edges → 9,996 stubs,
//! each subscribing to an 8-track slice of the 64-track space) and
//! re-checks the federation invariants at that scale:
//!
//! 1. **stampede coalescing** — ~80k concurrent joining fetches collapse
//!    to 64 upstream fetches per edge and 64 fetches at the origin;
//! 2. **one copy per link** — each update leaves the origin once (to its
//!    home core) and crosses each home→peer core link once, with ~10k
//!    subscribers below;
//! 3. **origin independence** — after killing the origin, cold edges +
//!    stubs joining in every region get every published track with zero
//!    loss.
//!
//! The full-size run doubles as the wall-clock benchmark the simulator's
//! data plane is graded on (see `BENCH_PR5.json`); the binary prints its
//! own phase timings. Run with `--smoke` for the tiny CI variant and
//! `--check` for the machine-readable gate (`results/ci_metro.json`).
//!
//! [`FederationScenario`]: moqdns_workload::scenarios::FederationScenario

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::{MetroWorld, TreeStub};
use moqdns_core::relay_node::RelayNode;
use moqdns_stats::Table;
use moqdns_workload::scenarios::MetroScenario;
use std::time::{Duration, Instant};

fn main() {
    let opts = BenchOpts::from_args();
    report::heading("E13 / §3+§5.3 — metro-scale federation (~10k stubs)");
    let spec = if opts.smoke {
        MetroScenario::metro().smoke()
    } else {
        MetroScenario::metro()
    };
    let mut gate = InvariantGate::new("metro", &opts);
    let wall_start = Instant::now();

    // ---- Build + joining-fetch stampede ------------------------------
    // Every stub subscribes to its track slice through its regional edge
    // at t=0: the largest coalescing stampede in the matrix.
    let t_build = Instant::now();
    let mut w = MetroWorld::build_with_workers(&spec, 92, opts.par);
    let build_ms = t_build.elapsed().as_millis();
    gate.check_eq(
        "stampede_fetches_answered",
        spec.subscription_count(),
        w.fetched_total(),
    );
    let mut peer_fetch_total = 0;
    let mut origin_fetch_total = 0;
    for (c, &core) in w.cores.clone().iter().enumerate() {
        let s = w.sim.node_ref::<RelayNode>(core).stats();
        let origin_fetches = s.upstream_fetches - s.peer_fetches;
        gate.check_eq(
            &format!("core{c}_peer_fetches"),
            (spec.tracks - w.shard_size(c)) as u64,
            s.peer_fetches,
        );
        gate.check_eq(
            &format!("core{c}_origin_fetches"),
            w.shard_size(c) as u64,
            origin_fetches,
        );
        peer_fetch_total += s.peer_fetches;
        origin_fetch_total += origin_fetches;
    }
    gate.check_eq(
        "origin_fetch_total",
        spec.origin_fetch_bound(),
        origin_fetch_total,
    );
    // Edge-tier coalescing, aggregated (12 × 64 checks would drown the
    // summary): every edge opens exactly one fetch per track.
    let edge_fetches: u64 = w
        .edges
        .iter()
        .map(|&e| w.sim.node_ref::<RelayNode>(e).stats().upstream_fetches)
        .sum();
    gate.check_eq(
        "edge_tier_upstream_fetches",
        spec.edge_fetch_bound() * w.edges.len() as u64,
        edge_fetches,
    );
    gate.metric("stampede_naive_fetches", spec.naive_fetches());
    gate.metric("stampede_edge_fetches", edge_fetches);
    gate.metric("stampede_peer_fetches", peer_fetch_total);
    gate.metric("stampede_origin_fetches", origin_fetch_total);
    println!(
        "Stampede: {} naive joining fetches coalesced to {} edge fetches, \
         {} peer fetches, {} origin fetches ({} stubs; build+stampede {} ms).\n",
        spec.naive_fetches(),
        edge_fetches,
        peer_fetch_total,
        origin_fetch_total,
        spec.stub_count(),
        build_ms,
    );

    // ---- Measured update rounds: one copy per link at metro scale ----
    let t_rounds = Instant::now();
    w.sim.stats_mut().reset();
    let baseline = w.delivered_updates();
    let peer_objects_before: Vec<u64> = w
        .cores
        .iter()
        .map(|&c| w.sim.node_ref::<RelayNode>(c).stats().peer_objects)
        .collect();
    for round in 0..spec.updates_per_track {
        w.update_round(10 + (round as u8) * 16);
    }
    w.sim.run_until(w.sim.now() + Duration::from_secs(2));
    let rounds_ms = t_rounds.elapsed().as_millis();
    gate.check_eq(
        "complete_delivery",
        spec.expected_deliveries(),
        w.delivered_updates() - baseline,
    );
    for (c, &core) in w.cores.clone().iter().enumerate() {
        let got = w.sim.stats().between(w.auth, core).delivered;
        gate.check_eq(
            &format!("origin_to_core{c}_one_copy"),
            spec.updates_per_track * w.shard_size(c) as u64,
            got,
        );
        let peer_objs =
            w.sim.node_ref::<RelayNode>(core).stats().peer_objects - peer_objects_before[c];
        gate.check_eq(
            &format!("core{c}_peer_ingress_one_copy"),
            spec.updates_per_track * (spec.tracks - w.shard_size(c)) as u64,
            peer_objs,
        );
    }
    gate.metric("update_deliveries", w.delivered_updates() - baseline);
    println!(
        "Update rounds: {} deliveries to {} stubs with one copy per \
         inter-region link ({} ms).\n",
        w.delivered_updates() - baseline,
        spec.stub_count(),
        rounds_ms,
    );

    // ---- Origin-kill drill: published tracks keep flowing ------------
    report::heading("Drill: killing the origin, then cold-joining every region");
    let t_drill = Instant::now();
    w.kill_origin();
    w.sim.run_until(w.sim.now() + Duration::from_secs(2));
    let late_per_edge = 4usize;
    let mut late_stubs = Vec::new();
    for region in 0..spec.cores {
        let (_edge, stubs) = w.add_late_edge(region, late_per_edge);
        late_stubs.extend(stubs);
    }
    w.sim.run_until(w.sim.now() + Duration::from_secs(5));
    let late_fetched: u64 = late_stubs
        .iter()
        .map(|&s| w.sim.node_ref::<TreeStub>(s).fetched)
        .sum();
    let drill_ms = t_drill.elapsed().as_millis();
    gate.check_eq(
        "post_kill_zero_loss_for_published_tracks",
        (spec.cores * late_per_edge * spec.tracks_per_stub) as u64,
        late_fetched,
    );
    gate.metric("post_kill_late_fetches_answered", late_fetched);
    println!(
        "Origin died; {} cold joining fetches across {} regions were all \
         served from the federated core tier ({} ms).\n",
        late_fetched, spec.cores, drill_ms,
    );

    // ---- Tables -------------------------------------------------------
    let mut t = Table::new(
        format!(
            "{}: per-tier relay stats ({} cores x {} edges, {} stubs over {} tracks)",
            spec.name,
            spec.cores,
            spec.edges_per_region,
            spec.stub_count(),
            spec.tracks,
        ),
        &[
            "tier",
            "relays",
            "down subs",
            "up subs (live)",
            "objects fwd",
            "up fetches",
            "peer fetches",
            "peer objects",
        ],
    );
    for tier in w.tier_stats() {
        t.push(&[
            tier.tier.clone(),
            tier.relays.to_string(),
            tier.totals.downstream_subscribes.to_string(),
            tier.upstream_subscriptions.to_string(),
            tier.totals.objects_forwarded.to_string(),
            tier.totals.upstream_fetches.to_string(),
            tier.totals.peer_fetches.to_string(),
            tier.totals.peer_objects.to_string(),
        ]);
    }
    report::emit(&t, "exp_metro_tiers");
    for tier in w.tier_stats() {
        gate.metric(
            &format!("{}_objects_forwarded", tier.tier),
            tier.totals.objects_forwarded,
        );
    }

    // Wall clock is printed, not a gate metric: the baseline diff must
    // stay machine-independent (CI enforces the budget with `timeout`).
    println!(
        "Metro run complete in {:.2} s wall clock (build {} ms, rounds {} ms, drill {} ms).\n",
        wall_start.elapsed().as_secs_f64(),
        build_ms,
        rounds_ms,
        drill_ms,
    );
    gate.finish();
}
