//! E14 — the planet-scale federation: ~100,000 resident stubs across 24
//! regions with Zipf-popular demand and diurnal join/leave waves.
//!
//! The metro scenario (E13) proved the federation invariants at ~10k
//! stubs with *flat* demand. This one grows the population another order
//! of magnitude ([`PlanetScenario`]: 24 cores → 192 edges → 100,032
//! stubs over 96 tracks) and adds the two workload dimensions a planet
//! actually has:
//!
//! * **Zipf popularity** — stub demand concentrates on head-ranked
//!   tracks (ranks from `workload::toplist`), so tail slices are absent
//!   under many edges. Every expectation below is therefore *computed*
//!   from the spec's quantile assignment, never assumed dense;
//! * **diurnal waves** — transient cohorts join every edge, subscribe
//!   popular slices, receive a round of updates, and leave. Departed
//!   stubs must receive nothing further and the edge tier must give the
//!   session state back.
//!
//! The invariants re-checked at this scale: stampede coalescing (~800k
//! joining fetches collapse to the computed per-edge slice coverage),
//! one copy per inter-region link, complete zero-loss delivery for
//! residents *and* waves, and state reclamation at dusk.
//!
//! The full-size run doubles as the wall-clock benchmark for the
//! parallel simulator: `--par N` runs one region-group per worker
//! (`moqdns_netsim::ParSim`) with a bit-identical event history, so the
//! gate and baseline are the same no matter the worker count. Run with
//! `--smoke` for the tiny CI variant and `--check` for the
//! machine-readable gate (`results/ci_planet.json`).
//!
//! [`PlanetScenario`]: moqdns_workload::scenarios::PlanetScenario

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::PlanetWorld;
use moqdns_core::relay_node::RelayNode;
use moqdns_stats::Table;
use moqdns_workload::scenarios::PlanetScenario;
use std::time::{Duration, Instant};

fn main() {
    let opts = BenchOpts::from_args();
    report::heading("E14 / §3+§5.3 — planet-scale federation (Zipf demand, diurnal waves)");
    let spec = if opts.smoke {
        PlanetScenario::planet().smoke()
    } else {
        PlanetScenario::planet()
    };
    let mut gate = InvariantGate::new("planet", &opts);
    let wall_start = Instant::now();

    // ---- Build + joining-fetch stampede ------------------------------
    let t_build = Instant::now();
    let mut w = PlanetWorld::build_with_workers(&spec, 92, opts.par);
    let build_ms = t_build.elapsed().as_millis();

    // Demand maps: which tracks each region wants (Zipf-thinned) and
    // where each track is homed. All invariants derive from these.
    let home: Vec<usize> = (0..spec.tracks).map(|t| w.home_core(t)).collect();
    let demanded = spec.demanded_tracks();
    let region_tracks: Vec<Vec<bool>> = (0..spec.cores).map(|r| spec.region_tracks(r)).collect();
    let origin_fetch_expected = |c: usize| -> u64 {
        (0..spec.tracks)
            .filter(|&t| home[t] == c && demanded[t])
            .count() as u64
    };
    let peer_fetch_expected = |c: usize| -> u64 {
        (0..spec.tracks)
            .filter(|&t| region_tracks[c][t] && home[t] != c)
            .count() as u64
    };

    gate.check_eq(
        "stampede_fetches_answered",
        spec.subscription_count(),
        w.fetched_total(),
    );
    gate.check_eq(
        "edge_tier_upstream_fetches",
        spec.edge_fetch_total(),
        w.edge_fetch_sum(),
    );
    // Core-tier fetch routing, exact per core but summarized as one
    // mismatch count (24 regions × 2 checks would drown the gate).
    let mut origin_fetch_total = 0;
    let mut peer_fetch_total = 0;
    let mut fetch_mismatches = 0u64;
    for (c, &core) in w.cores.clone().iter().enumerate() {
        let s = w.sim.node_ref::<RelayNode>(core).stats();
        let origin_fetches = s.upstream_fetches - s.peer_fetches;
        if origin_fetches != origin_fetch_expected(c) || s.peer_fetches != peer_fetch_expected(c) {
            fetch_mismatches += 1;
        }
        origin_fetch_total += origin_fetches;
        peer_fetch_total += s.peer_fetches;
    }
    gate.check_eq("per_core_fetch_mismatches", 0, fetch_mismatches);
    gate.check_eq(
        "origin_fetch_total",
        (0..spec.cores).map(origin_fetch_expected).sum::<u64>(),
        origin_fetch_total,
    );
    gate.check_eq(
        "peer_fetch_total",
        (0..spec.cores).map(peer_fetch_expected).sum::<u64>(),
        peer_fetch_total,
    );
    // The Zipf skew is real: the head slice holds an outsized share of
    // the resident population, the tail slice a sliver.
    let head = spec.slice_population(0) as u64;
    let tail = spec.slice_population(spec.slices() - 1) as u64;
    gate.check_true(
        "zipf_head_dominates_tail",
        head > 2 * tail,
        format!("head slice {head} stubs vs tail slice {tail}"),
    );
    gate.metric("stampede_naive_fetches", spec.naive_fetches());
    gate.metric("stampede_edge_fetches", w.edge_fetch_sum());
    gate.metric("stampede_peer_fetches", peer_fetch_total);
    gate.metric("stampede_origin_fetches", origin_fetch_total);
    gate.metric("zipf_head_slice_population", head);
    gate.metric("zipf_tail_slice_population", tail);
    println!(
        "Stampede: {} naive joining fetches coalesced to {} edge fetches, \
         {} peer fetches, {} origin fetches ({} stubs; build+stampede {} ms).\n",
        spec.naive_fetches(),
        w.edge_fetch_sum(),
        peer_fetch_total,
        origin_fetch_total,
        spec.stub_count(),
        build_ms,
    );

    // ---- Measured update rounds: one copy per link at planet scale ---
    let t_rounds = Instant::now();
    w.sim.stats_mut().reset();
    let baseline = w.delivered_updates();
    let peer_objects_before: Vec<u64> = w
        .cores
        .iter()
        .map(|&c| w.sim.node_ref::<RelayNode>(c).stats().peer_objects)
        .collect();
    for round in 0..spec.updates_per_track {
        w.update_round(10 + (round as u8) * 16);
    }
    w.sim.run_until(w.sim.now() + Duration::from_secs(2));
    let rounds_ms = t_rounds.elapsed().as_millis();
    gate.check_eq(
        "complete_delivery",
        spec.expected_deliveries(),
        w.delivered_updates() - baseline,
    );
    // One copy per inter-region link, Zipf-aware: origin→core carries
    // only the tracks homed there that anyone demands; peer ingress only
    // the tracks the region demands from elsewhere.
    let mut copy_mismatches = 0u64;
    for (c, &core) in w.cores.clone().iter().enumerate() {
        let got = w.sim.stats().between(w.auth, core).delivered;
        let want = spec.updates_per_track * origin_fetch_expected(c);
        let peer_objs =
            w.sim.node_ref::<RelayNode>(core).stats().peer_objects - peer_objects_before[c];
        let peer_want = spec.updates_per_track * peer_fetch_expected(c);
        if got != want || peer_objs != peer_want {
            copy_mismatches += 1;
        }
    }
    gate.check_eq("per_core_one_copy_mismatches", 0, copy_mismatches);
    gate.metric("update_deliveries", w.delivered_updates() - baseline);
    println!(
        "Update rounds: {} deliveries to {} stubs with one copy per \
         inter-region link ({} ms).\n",
        w.delivered_updates() - baseline,
        spec.stub_count(),
        rounds_ms,
    );

    // ---- Diurnal join/leave waves ------------------------------------
    report::heading("Diurnal waves: transient cohorts join, receive, leave");
    let t_waves = Instant::now();
    for wave in 0..spec.waves {
        // Dawn: the cohort joins every edge and its joining fetches must
        // all be answered (from edge caches/aggregation — only slices no
        // resident covers escalate upstream).
        let pre_sessions = w.edge_session_sum() as u64;
        let pre_edge_fetches = w.edge_fetch_sum();
        let cohort = w.add_wave();
        w.sim.run_until(w.sim.now() + spec.update_interval * 2);
        gate.check_eq(
            &format!("wave{wave}_fetches_answered"),
            spec.wave_subscription_count(),
            w.cohort_fetched(&cohort),
        );
        let fetch_delta = w.edge_fetch_sum() - pre_edge_fetches;
        if wave == 0 {
            // First dawn against the resident-only edge state: the delta
            // is exactly the Zipf-novel slices, computed from the spec.
            gate.check_eq(
                "wave0_edge_fetch_delta",
                spec.wave_edge_fetch_delta(),
                fetch_delta,
            );
        } else {
            // Later dawns re-demand tracks the first wave already pulled:
            // the edge cache still holds their groups after the dusk
            // prune, so a rejoining wave costs zero upstream fetches.
            gate.check_eq(&format!("wave{wave}_edge_fetch_delta"), 0, fetch_delta);
        }

        // Midday: one update round must reach residents AND the wave,
        // each exactly once per subscription.
        let resident_before = w.delivered_updates();
        let wave_before = w.cohort_updates(&cohort);
        w.update_round(100 + (wave as u8) * 16);
        w.sim.run_until(w.sim.now() + Duration::from_secs(2));
        gate.check_eq(
            &format!("wave{wave}_round_resident_delivery"),
            spec.subscription_count(),
            w.delivered_updates() - resident_before,
        );
        gate.check_eq(
            &format!("wave{wave}_round_wave_delivery"),
            spec.wave_subscription_count(),
            w.cohort_updates(&cohort) - wave_before,
        );

        // Dusk: the cohort leaves; the edge tier must reclaim exactly
        // the sessions the wave added, and a further round must deliver
        // to residents only — departed stubs receive nothing.
        w.leave_wave(&cohort);
        w.sim.run_until(w.sim.now() + spec.update_interval);
        gate.check_eq(
            &format!("wave{wave}_sessions_reclaimed"),
            pre_sessions,
            w.edge_session_sum() as u64,
        );
        let frozen = w.cohort_updates(&cohort);
        let resident_before = w.delivered_updates();
        w.update_round(140 + (wave as u8) * 16);
        w.sim.run_until(w.sim.now() + Duration::from_secs(2));
        gate.check_eq(
            &format!("wave{wave}_post_leave_resident_delivery"),
            spec.subscription_count(),
            w.delivered_updates() - resident_before,
        );
        gate.check_eq(
            &format!("wave{wave}_departed_receive_nothing"),
            frozen,
            w.cohort_updates(&cohort),
        );
        println!(
            "Wave {wave}: {} transient stubs joined ({} novel edge fetches), \
             received their round, left; edge sessions back to {}.",
            cohort.len(),
            fetch_delta,
            pre_sessions,
        );
    }
    let waves_ms = t_waves.elapsed().as_millis();
    println!();

    // ---- Tables -------------------------------------------------------
    let mut t = Table::new(
        format!(
            "{}: per-tier relay stats ({} cores x {} edges, {} stubs over {} tracks)",
            spec.name,
            spec.cores,
            spec.edges_per_region,
            spec.stub_count(),
            spec.tracks,
        ),
        &[
            "tier",
            "relays",
            "down subs",
            "up subs (live)",
            "objects fwd",
            "up fetches",
            "peer fetches",
            "peer objects",
        ],
    );
    for tier in w.tier_stats() {
        t.push(&[
            tier.tier.clone(),
            tier.relays.to_string(),
            tier.totals.downstream_subscribes.to_string(),
            tier.upstream_subscriptions.to_string(),
            tier.totals.objects_forwarded.to_string(),
            tier.totals.upstream_fetches.to_string(),
            tier.totals.peer_fetches.to_string(),
            tier.totals.peer_objects.to_string(),
        ]);
    }
    report::emit(&t, "exp_planet_tiers");
    for tier in w.tier_stats() {
        gate.metric(
            &format!("{}_objects_forwarded", tier.tier),
            tier.totals.objects_forwarded,
        );
    }

    // Wall clock is printed, not a gate metric: the baseline diff must
    // stay machine-independent (CI enforces the budget with `timeout`).
    println!(
        "Planet run complete in {:.2} s wall clock, {} workers \
         (build {} ms, rounds {} ms, waves {} ms).\n",
        wall_start.elapsed().as_secs_f64(),
        w.sim.workers(),
        build_ms,
        rounds_ms,
        waves_ms,
    );
    gate.finish();
}
