//! E3 — §5.2: first-lookup query latency in round trips.
//!
//! Measures, in the simulator (symmetric links, fixed one-way delay), the
//! stub-observed latency of the first lookup under each transport
//! configuration, and converts it to round trips on the stub↔recursive
//! path. Expected (paper §5.2):
//!
//! * classic UDP:                       1 RTT
//! * MoQT, cold (draft-12 strict):      3 RTT  (QUIC + SETUP + SUBSCRIBE)
//! * MoQT, 0-RTT resumption:            2 RTT  (SETUP rides 0-RTT)
//! * MoQT, 0-RTT + ALPN pipelining:     1 RTT  (future optimization)
//! * MoQT, warm session:                1 RTT
//! * MoQT, already subscribed:          0 RTT  (answer is local)
//!
//! The recursive resolver's cache is pre-warmed so the upstream chain does
//! not add round trips; a second table reports the full cold chain
//! (recursive also resolving root → TLD → auth).

use moqdns_bench::report;
use moqdns_bench::worlds::{World, WorldSpec};
use moqdns_core::recursive::UpstreamMode;
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_stats::Table;
use std::time::Duration;

const OWD_MS: u64 = 25; // one-way delay → RTT = 50 ms.

/// Runs one scenario and returns the latency (ms) of the *last* lookup
/// issued by stub 0.
fn last_lookup_ms(world: &mut World) -> f64 {
    let stub = world.stubs[0];
    let s = world.sim.node_ref::<StubResolver>(stub);
    let l = s.metrics.lookups.last().expect("lookup recorded");
    assert!(l.ok, "lookup must succeed");
    l.latency().as_secs_f64() * 1e3
}

fn spec(stub_mode: StubMode, pipeline: bool) -> WorldSpec {
    WorldSpec {
        link_delay: Duration::from_millis(OWD_MS),
        mode: UpstreamMode::Moqt,
        stub_mode,
        pipeline,
        ..WorldSpec::default()
    }
}

/// Pre-warms the recursive cache by issuing one classic query from a
/// sacrificial stub... simpler: run one lookup from stub 0 in a classic
/// world is not possible per-mode; instead run the lookup twice and use a
/// *fresh stub* world where the recursive was already exercised.
fn warmed_world(stub_mode: StubMode, pipeline: bool, seed: u64) -> World {
    let mut s = spec(stub_mode, pipeline);
    s.seed = seed;
    s.n_stubs = 2;
    let mut w = World::build(&s);
    // Stub 1 warms the recursive's cache + upstream subscriptions.
    w.lookup(1, "www", Duration::from_secs(5));
    w
}

fn main() {
    report::heading("E3 / §5.2 — first-lookup latency (RTT on the stub↔recursive path)");
    let rtt = 2.0 * OWD_MS as f64;

    let mut t = Table::new(
        format!("First lookup, recursive cache warm (link RTT = {rtt} ms)"),
        &["configuration", "latency_ms", "RTTs", "paper"],
    );

    // 1. Classic UDP.
    let mut w = warmed_world(StubMode::Classic, false, 10);
    w.lookup(0, "www", Duration::from_secs(5));
    let ms = last_lookup_ms(&mut w);
    t.push(&[
        "classic UDP".to_string(),
        format!("{ms:.1}"),
        format!("{:.1}", ms / rtt),
        "1".into(),
    ]);

    // 2. MoQT cold (strict draft-12: wait for SERVER_SETUP).
    let mut w = warmed_world(StubMode::Moqt, false, 11);
    w.lookup(0, "www", Duration::from_secs(5));
    let ms = last_lookup_ms(&mut w);
    t.push(&[
        "MoQT cold (strict)".to_string(),
        format!("{ms:.1}"),
        format!("{:.1}", ms / rtt),
        "3".into(),
    ]);

    // 3. MoQT with 0-RTT resumption: connect once, drop the connection by
    //    looking up, then reconnect with a ticket. We emulate by doing a
    //    first lookup (connection 1 stays, but we measure a *fresh* world
    //    where the stub already holds a ticket). Simplest faithful route:
    //    lookup once (cold), then force a second connection by a second
    //    stub world is complex — instead reuse the same connection? The
    //    paper's 2-RTT case is: new connection, ticket available. We get
    //    that by doing lookup #1 (cold, establishes + stores ticket),
    //    closing the connection via idle timeout, then lookup #2.
    {
        let mut s = spec(StubMode::Moqt, false);
        s.seed = 12;
        s.n_stubs = 2;
        // Short idle timeout so the first connection dies between lookups.
        let mut w = World::build(&s);
        w.lookup(1, "www", Duration::from_secs(5));
        w.lookup(0, "www", Duration::from_secs(5)); // cold + ticket stored
                                                    // Let the stub's connection idle out (transport idle = 3600 s in
                                                    // the default config, so instead simulate suspension: drop conn by
                                                    // waiting past idle). Use a direct approach: ask the stub to
                                                    // forget its connection state.
        let stub = w.stubs[0];
        w.sim.with_node::<StubResolver, _>(stub, |s, _| {
            s.debug_drop_connection();
        });
        let q = World::question("www");
        w.sim.with_node::<StubResolver, _>(stub, |s, ctx| {
            s.debug_forget_subscriptions();
            s.lookup(ctx, q);
        });
        let deadline = w.sim.now() + Duration::from_secs(5);
        w.sim.run_until(deadline);
        let ms = last_lookup_ms(&mut w);
        t.push(&[
            "MoQT 0-RTT resume (strict)".to_string(),
            format!("{ms:.1}"),
            format!("{:.1}", ms / rtt),
            "2".into(),
        ]);
    }

    // 4. MoQT 0-RTT + pipelined requests (ALPN future): same dance with
    //    pipeline enabled.
    {
        let mut s = spec(StubMode::Moqt, true);
        s.seed = 13;
        s.n_stubs = 2;
        let mut w = World::build(&s);
        w.lookup(1, "www", Duration::from_secs(5));
        w.lookup(0, "www", Duration::from_secs(5));
        let stub = w.stubs[0];
        let q = World::question("www");
        w.sim.with_node::<StubResolver, _>(stub, |s, ctx| {
            s.debug_drop_connection();
            s.debug_forget_subscriptions();
            s.lookup(ctx, q);
        });
        let deadline = w.sim.now() + Duration::from_secs(5);
        w.sim.run_until(deadline);
        let ms = last_lookup_ms(&mut w);
        t.push(&[
            "MoQT 0-RTT + ALPN pipelining".to_string(),
            format!("{ms:.1}"),
            format!("{:.1}", ms / rtt),
            "1".into(),
        ]);
    }

    // 5. Warm session: second lookup for a *different* name on the same
    //    connection (no QUIC, no SETUP; one request round trip).
    {
        let mut s = spec(StubMode::Moqt, false);
        s.seed = 14;
        s.n_stubs = 2;
        s.records = vec![("www".into(), 300), ("api".into(), 300)];
        let mut w = World::build(&s);
        w.lookup(1, "www", Duration::from_secs(5));
        w.lookup(1, "api", Duration::from_secs(5));
        w.lookup(0, "www", Duration::from_secs(5)); // establishes session
        w.lookup(0, "api", Duration::from_secs(5)); // warm: 1 RTT
        let ms = last_lookup_ms(&mut w);
        t.push(&[
            "MoQT warm session".to_string(),
            format!("{ms:.1}"),
            format!("{:.1}", ms / rtt),
            "1".into(),
        ]);
    }

    // 6. Already subscribed: repeat lookup of the same name.
    {
        let mut w = warmed_world(StubMode::Moqt, false, 15);
        w.lookup(0, "www", Duration::from_secs(5));
        w.lookup(0, "www", Duration::from_secs(1));
        let ms = last_lookup_ms(&mut w);
        t.push(&[
            "MoQT subscribed (pushed)".to_string(),
            format!("{ms:.1}"),
            format!("{:.1}", ms / rtt),
            "0".into(),
        ]);
    }

    report::emit(&t, "exp_query_latency");

    // Full cold chain: the recursive also resolves root → TLD → auth.
    let mut t2 = Table::new(
        "First lookup, everything cold (recursive resolves the full chain)",
        &["configuration", "latency_ms", "RTTs"],
    );
    for (label, mode, stub_mode) in [
        (
            "classic end-to-end",
            UpstreamMode::Classic,
            StubMode::Classic,
        ),
        (
            "MoQT end-to-end (strict)",
            UpstreamMode::Moqt,
            StubMode::Moqt,
        ),
    ] {
        let mut s = spec(stub_mode, false);
        s.seed = 20;
        s.mode = mode;
        let mut w = World::build(&s);
        w.lookup(0, "www", Duration::from_secs(10));
        let ms = last_lookup_ms(&mut w);
        t2.push(&[
            label.to_string(),
            format!("{ms:.1}"),
            format!("{:.1}", ms / rtt),
        ]);
    }
    report::emit(&t2, "exp_query_latency_cold_chain");
}
