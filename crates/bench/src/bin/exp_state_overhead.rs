//! E9 — §5.1: "DNS over MoQT adds the MoQT session and state for every
//! open subscription" plus keep-alive traffic for liveness testing.
//!
//! Sweeps the number of subscribed domains and reports estimated protocol
//! state at the stub, the recursive resolver, and the authoritative
//! server, plus the keep-alive traffic a long-lived session costs.

use moqdns_bench::report;
use moqdns_bench::worlds::{World, WorldSpec};
use moqdns_core::auth::AuthServer;
use moqdns_core::recursive::{RecursiveResolver, UpstreamMode};
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_stats::{format_bps, Table};
use std::time::Duration;

fn main() {
    report::heading("E9 / §5.1 — state management overhead");

    let mut t = Table::new(
        "Protocol state vs number of subscribed domains",
        &[
            "domains",
            "stub subs",
            "stub state B",
            "recursive up-subs",
            "recursive state B",
            "auth subs",
            "auth state B",
        ],
    );
    for (i, n) in [1usize, 10, 50, 200].iter().enumerate() {
        let spec = WorldSpec {
            seed: 90 + i as u64,
            mode: UpstreamMode::Moqt,
            stub_mode: StubMode::Moqt,
            records: (0..*n).map(|k| (format!("h{k}"), 300)).collect(),
            ..WorldSpec::default()
        };
        let mut w = World::build(&spec);
        for k in 0..*n {
            w.lookup(0, &format!("h{k}"), Duration::from_millis(400));
        }
        w.sim.run_until(w.sim.now() + Duration::from_secs(10));

        let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
        let rec = w.sim.node_ref::<RecursiveResolver>(w.recursive);
        let auth = w.sim.node_ref::<AuthServer>(w.auth);
        t.push(&[
            n.to_string(),
            stub.subscription_count().to_string(),
            stub.state_size_estimate().to_string(),
            rec.upstream_subscription_count().to_string(),
            rec.state_size_estimate().to_string(),
            auth.subscription_count().to_string(),
            auth.state_size_estimate().to_string(),
        ]);
    }
    report::emit(&t, "exp_state_overhead");

    // Keep-alive cost: measure wire traffic on an established but *idle*
    // stub↔recursive session over 10 minutes.
    let spec = WorldSpec {
        seed: 99,
        mode: UpstreamMode::Moqt,
        stub_mode: StubMode::Moqt,
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    w.lookup(0, "www", Duration::from_secs(5));
    w.sim.stats_mut().reset();
    let t0 = w.sim.now();
    const IDLE_S: u64 = 600;
    w.sim.run_until(t0 + Duration::from_secs(IDLE_S));
    let a = w.sim.stats().between(w.stubs[0], w.recursive);
    let b = w.sim.stats().between(w.recursive, w.stubs[0]);
    let bytes = a.bytes + b.bytes;
    let bps = bytes as f64 * 8.0 / IDLE_S as f64;

    let mut t2 = Table::new(
        "Idle-session liveness cost (keep-alive every 25 s, §5.1)",
        &["metric", "value"],
    );
    t2.push(&[
        format!("wire bytes over {IDLE_S} s (both directions)"),
        bytes.to_string(),
    ]);
    t2.push(&["average rate".to_string(), format_bps(bps)]);
    t2.push(&[
        "classic DNS equivalent".to_string(),
        "0 (stateless)".to_string(),
    ]);
    report::emit(&t2, "exp_state_keepalive");

    assert!(bytes > 0, "keep-alives flowed");
    println!(
        "State grows linearly with subscriptions on every node, and even an idle \
         session costs {} of liveness traffic — the §5.1 trade-off.",
        format_bps(bps)
    );
}
