//! E10 — §3 + §5.3: the paper's relay distribution trees, *simulated*.
//!
//! §5.3's DDNS/CDN arithmetic assumes "5 MoQ relays on average" per
//! distribution path and relays that aggregate subscriptions so an update
//! crosses each link once. The closed-form numbers live in
//! `moqdns_workload::scenarios`; this binary instantiates the scaled-down
//! tree worlds (auth → tier-1 relays → edge relays → stubs) in `netsim`
//! and *measures* what the arithmetic assumes:
//!
//! 1. every stub receives every update (complete delivery),
//! 2. each auth→tier1 and tier1→edge link carries ONE copy of each
//!    update (the §3 aggregation invariant — intermediate hops must not
//!    multiply delivered copies),
//! 3. the joining-fetch stampede at build time coalesces to one upstream
//!    fetch per relay per track (the pending-fetch table at work),
//! 4. killing a tier-1 relay mid-run re-routes its edge relays to the
//!    surviving tier-1 (failover policy) without losing later updates.
//!
//! Run with `--smoke` for the tiny CI variant and `--check` to emit the
//! machine-readable invariant summary (`results/ci_tree.json`) and exit
//! nonzero on any violation.

use moqdns_bench::cli::BenchOpts;
use moqdns_bench::gate::InvariantGate;
use moqdns_bench::report;
use moqdns_bench::worlds::{TreeStub, TreeWorld};
use moqdns_core::relay_node::RelayNode;
use moqdns_stats::Table;
use moqdns_workload::scenarios::TreeScenario;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_args();
    report::heading("E10 / §3+§5.3 — simulated relay distribution trees");
    let mut gate = InvariantGate::new("tree", &opts);

    for base in [TreeScenario::ddns_tree(), TreeScenario::cdn_tree()] {
        let spec = if opts.smoke { base.smoke() } else { base };
        run_tree(&spec, &mut gate);
    }
    failover_drill(
        if opts.smoke {
            TreeScenario::ddns_tree().smoke()
        } else {
            TreeScenario::ddns_tree()
        },
        &mut gate,
    );
    gate.finish();
}

fn run_tree(spec: &TreeScenario, gate: &mut InvariantGate) {
    let mut w = TreeWorld::build(spec, 71);
    let name = spec.name;

    // Settled: every stub's joining fetch was answered through the tree,
    // and the stampede coalesced to one upstream fetch per relay per
    // track (instead of one per stub).
    let fetched: u64 = w
        .stubs
        .iter()
        .map(|&s| w.sim.node_ref::<TreeStub>(s).fetched)
        .sum();
    gate.check_ge(
        &format!("{name}_joining_fetches_answered"),
        w.stubs.len() as u64,
        fetched,
    );
    for (label, ids) in [("tier1", &w.tier1), ("edge", &w.edges)] {
        let fetches: u64 = ids
            .iter()
            .map(|&id| w.sim.node_ref::<RelayNode>(id).stats().upstream_fetches)
            .sum();
        gate.check_le(
            &format!("{name}_{label}_stampede_fetch_bound"),
            ids.len() as u64 * spec.tracks as u64,
            fetches,
        );
        gate.metric(&format!("{name}_{label}_upstream_fetches"), fetches);
    }

    // Measured window: only update traffic from here on.
    w.sim.stats_mut().reset();
    let baseline = w.delivered_updates();

    for round in 0..spec.updates_per_track {
        for track in 0..spec.tracks {
            w.update_track(track, (round as usize * spec.tracks + track) as u8 + 1);
        }
        let deadline = w.sim.now() + spec.update_interval;
        w.sim.run_until(deadline);
    }
    let deadline = w.sim.now() + Duration::from_secs(5);
    w.sim.run_until(deadline);

    // (1) Complete delivery.
    let delivered = w.delivered_updates() - baseline;
    gate.check_eq(
        &format!("{name}_complete_delivery"),
        spec.expected_deliveries(),
        delivered,
    );
    gate.metric(&format!("{name}_deliveries"), delivered);

    // (2) One copy per upstream link: each relay-to-relay link carried the
    // same number of update datagrams (no multiplication down the tree),
    // and the per-link payload is in the single-copy range.
    let links = w.upstream_links();
    let mut t_links = Table::new(
        format!(
            "{}: per-link update traffic ({} updates, {} stubs)",
            name,
            spec.total_updates(),
            spec.stub_count()
        ),
        &[
            "link",
            "delivered dgrams",
            "delivered bytes",
            "bytes/update",
        ],
    );
    let mut per_link_bytes = Vec::new();
    for &(parent, child) in &links {
        let s = w.sim.stats().between(parent, child);
        per_link_bytes.push(s.delivered_bytes);
        t_links.push(&[
            format!("{} -> {}", w.sim.node_name(parent), w.sim.node_name(child)),
            s.delivered.to_string(),
            s.delivered_bytes.to_string(),
            format!(
                "{:.0}",
                s.delivered_bytes as f64 / spec.total_updates() as f64
            ),
        ]);
    }
    report::emit(&t_links, &format!("exp_tree_{name}_links"));
    let min = *per_link_bytes.iter().min().unwrap();
    let max = *per_link_bytes.iter().max().unwrap();
    gate.check_true(
        &format!("{name}_one_copy_per_link"),
        max < 2 * min,
        format!("per-link bytes min={min} max={max}"),
    );

    // The §3 invariant at the object level: relays opened exactly one
    // upstream subscription per track, and forwarded exactly one copy per
    // downstream subscriber.
    for &id in &w.tier1 {
        let r = w.sim.node_ref::<RelayNode>(id);
        gate.check_eq(
            &format!("{name}_tier1_upstream_subs"),
            spec.tracks as u64,
            r.upstream_subscription_count() as u64,
        );
    }
    let mut edge_forwarded = 0;
    for &id in &w.edges {
        let r = w.sim.node_ref::<RelayNode>(id);
        gate.check_eq(
            &format!("{name}_edge_upstream_subs"),
            spec.tracks as u64,
            r.upstream_subscription_count() as u64,
        );
        gate.check_eq(
            &format!("{name}_edge_forwards"),
            spec.edge_forwards(),
            r.stats().objects_forwarded,
        );
        edge_forwarded += r.stats().objects_forwarded;
    }
    gate.metric(&format!("{name}_edge_objects_forwarded"), edge_forwarded);

    // (3) Per-tier stats table (cache hits, aggregated subs, forwards).
    let mut t_tiers = Table::new(
        format!("{}: per-tier relay stats", name),
        &[
            "tier",
            "relays",
            "policy",
            "down subs",
            "up subs (live)",
            "objects fwd",
            "cache hit",
            "cache miss",
            "coalesced",
            "up fetches",
            "reroutes",
            "agg factor",
        ],
    );
    for tier in w.tier_stats() {
        let policy = match tier.tier.as_str() {
            "edge" => w.sim.node_ref::<RelayNode>(w.edges[0]).policy_name(),
            _ => w.sim.node_ref::<RelayNode>(w.tier1[0]).policy_name(),
        };
        t_tiers.push(&[
            tier.tier.clone(),
            tier.relays.to_string(),
            policy.to_string(),
            tier.totals.downstream_subscribes.to_string(),
            tier.upstream_subscriptions.to_string(),
            tier.totals.objects_forwarded.to_string(),
            tier.totals.fetch_cache_hits.to_string(),
            tier.totals.fetch_cache_misses.to_string(),
            tier.totals.fetch_coalesced.to_string(),
            tier.totals.upstream_fetches.to_string(),
            tier.totals.reroutes.to_string(),
            format!("{:.1}", tier.aggregation_factor()),
        ]);
    }
    report::emit(&t_tiers, &format!("exp_tree_{name}_tiers"));

    println!(
        "{}: {} updates crossed every upstream link once; origin egress is {}x \
         below per-stub unicast (the §5.3 aggregation saving).\n",
        name,
        spec.total_updates(),
        spec.origin_saving()
    );
}

fn failover_drill(spec: TreeScenario, gate: &mut InvariantGate) {
    report::heading("Failover: killing tier1[0] mid-run");
    let mut w = TreeWorld::build(&spec, 72);

    // Phase 1: one update round with both tier-1 relays alive.
    for track in 0..spec.tracks {
        w.update_track(track, 211);
    }
    let deadline = w.sim.now() + Duration::from_secs(5);
    w.sim.run_until(deadline);
    let after_phase1 = w.delivered_updates();

    // Kill the first tier-1 relay; its edge children must fail over.
    w.kill_tier1(0);
    let deadline = w.sim.now() + Duration::from_secs(5);
    w.sim.run_until(deadline);

    // Phase 2: another round, now on the degraded tree.
    for track in 0..spec.tracks {
        w.update_track(track, 212);
    }
    let deadline = w.sim.now() + Duration::from_secs(10);
    w.sim.run_until(deadline);

    let phase2 = w.delivered_updates() - after_phase1;
    let expected = spec.tracks as u64 * w.stubs.len() as u64;
    gate.check_eq("failover_zero_post_kill_loss", expected, phase2);

    let reroutes: u64 = w
        .edges
        .iter()
        .map(|&e| w.sim.node_ref::<RelayNode>(e).stats().reroutes)
        .sum();
    // Half the edge relays had tier1[0] as primary; each re-routed every
    // track.
    let expected_reroutes = (w.edges.len() as u64 / 2) * spec.tracks as u64;
    gate.check_eq("failover_edge_reroutes", expected_reroutes, reroutes);
    gate.metric("failover_post_kill_deliveries", phase2);
    gate.metric("failover_reroutes", reroutes);

    let mut t = Table::new(
        "Failover drill (1 tier-1 relay killed mid-run)",
        &["metric", "value"],
    );
    t.push(&[
        "updates delivered post-kill".to_string(),
        format!("{phase2} (expected {expected})"),
    ]);
    t.push(&["edge reroutes".to_string(), reroutes.to_string()]);
    t.push(&[
        "surviving tier1 upstream subs".to_string(),
        w.sim
            .node_ref::<RelayNode>(w.tier1[1])
            .upstream_subscription_count()
            .to_string(),
    ]);
    report::emit(&t, "exp_tree_failover");
    println!("Stubs converged on the surviving path; no update was lost after the kill.\n");
}
