//! E4 — the headline claim (§2, §5): pub/sub "can considerably reduce the
//! time it takes for a resolver to receive the latest version of a record".
//!
//! For each TTL cluster: warm the chain, change the record at the
//! authoritative server at several points within the TTL window, and
//! measure **staleness** — how long the stub keeps serving the old version:
//!
//! * traditional DNS: the stub (poll interval 1 s) and the recursive cache
//!   only refresh when the TTL expires → staleness ≈ remaining TTL;
//! * DNS over MoQT: the update is pushed → staleness ≈ a few link delays,
//!   independent of TTL.

use moqdns_bench::report;
use moqdns_bench::worlds::{World, WorldSpec};
use moqdns_core::recursive::UpstreamMode;
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_dns::rdata::RData;
use moqdns_stats::{format_duration, Summary, Table};
use std::net::Ipv4Addr;
use std::time::Duration;

const TTLS: [u32; 6] = [20, 60, 300, 600, 1200, 3600];
/// Change the record at these fractions of the TTL window.
const FRACTIONS: [f64; 3] = [0.2, 0.5, 0.8];

/// Measures staleness for one (ttl, fraction) in classic mode.
fn classic_staleness(ttl: u32, frac: f64, seed: u64) -> f64 {
    let mut spec = WorldSpec {
        seed,
        mode: UpstreamMode::Classic,
        stub_mode: StubMode::Classic,
        records: vec![("www".into(), ttl)],
        ..WorldSpec::default()
    };
    spec.link_delay = Duration::from_millis(10);
    let mut w = World::build(&spec);
    // Warm (recursive caches the record now).
    w.lookup(0, "www", Duration::from_secs(2));

    // Change mid-TTL.
    let wait = Duration::from_secs_f64(ttl as f64 * frac);
    let deadline = w.sim.now() + wait;
    w.sim.run_until(deadline);
    let change_time = w.update_record("www", 200);

    // Poll every second until the stub sees the new address.
    let target = RData::A(Ipv4Addr::new(198, 51, 100, 200));
    let q = World::question("www");
    for _ in 0..(2 * ttl as usize + 30) {
        w.lookup(0, "www", Duration::from_secs(1));
        let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
        if let Some(ans) = stub.answer(&q) {
            if ans.iter().any(|r| r.rdata == target) {
                return (w.sim.now() - change_time).as_secs_f64();
            }
        }
    }
    f64::NAN
}

/// Measures staleness for one (ttl, fraction) in MoQT mode.
fn moqt_staleness(ttl: u32, frac: f64, seed: u64) -> f64 {
    let spec = WorldSpec {
        seed,
        mode: UpstreamMode::Moqt,
        stub_mode: StubMode::Moqt,
        records: vec![("www".into(), ttl)],
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);
    w.lookup(0, "www", Duration::from_secs(5));
    let wait = Duration::from_secs_f64(ttl as f64 * frac);
    let deadline = w.sim.now() + wait;
    w.sim.run_until(deadline);
    let change_time = w.update_record("www", 200);
    let deadline = w.sim.now() + Duration::from_secs(10);
    w.sim.run_until(deadline);
    let stub = w.sim.node_ref::<StubResolver>(w.stubs[0]);
    match stub.metrics.updates.last() {
        Some(u) => (u.received - change_time).as_secs_f64(),
        None => f64::NAN,
    }
}

fn main() {
    report::heading("E4 — time until the stub holds the latest record version (staleness)");

    let mut t = Table::new(
        "Staleness after a mid-TTL record change (mean over change points 0.2/0.5/0.8·TTL)",
        &["ttl_s", "traditional DNS", "DNS over MoQT", "speedup"],
    );
    for (i, ttl) in TTLS.iter().enumerate() {
        let classic = Summary::from(
            FRACTIONS
                .iter()
                .map(|f| classic_staleness(*ttl, *f, 100 + i as u64)),
        );
        let moqt = Summary::from(
            FRACTIONS
                .iter()
                .map(|f| moqt_staleness(*ttl, *f, 200 + i as u64)),
        );
        let speedup = if moqt.mean() > 0.0 {
            classic.mean() / moqt.mean()
        } else {
            f64::INFINITY
        };
        t.push(&[
            ttl.to_string(),
            format_duration(classic.mean()),
            format_duration(moqt.mean()),
            format!("{speedup:.0}x"),
        ]);
    }
    report::emit(&t, "exp_update_latency");
    println!(
        "Shape: traditional staleness grows with TTL (≈ remaining TTL); \
         MoQT staleness is a few link delays, independent of TTL."
    );
}
