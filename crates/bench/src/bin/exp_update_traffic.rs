//! E5 — claim (§2): pub/sub "reduces the number of RR requests since
//! updates are pushed to the subscribed resolvers, thereby limiting update
//! traffic".
//!
//! N stubs stay interested in one record for a fixed horizon. Traditional
//! DNS: every stub re-queries each TTL expiry. Pub/sub: one subscription
//! each, updates pushed only when the record actually changes. We count
//! *all* datagrams and bytes on the wire (including QUIC ACKs and
//! keep-alives — the honest cost of holding state) and sweep both the TTL
//! and the record change rate to find the crossover.

use moqdns_bench::report;
use moqdns_bench::worlds::{World, WorldSpec};
use moqdns_core::recursive::UpstreamMode;
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_stats::Table;
use std::time::Duration;

const N_STUBS: usize = 10;
const HORIZON_S: u64 = 1800; // 30 simulated minutes

/// Runs one configuration; returns (datagrams, bytes, rr_requests)
/// across all links — `rr_requests` counts application-level DNS queries
/// issued by the stubs (the paper's "number of RR requests").
fn run(ttl: u32, changes_per_hour: u32, moqt: bool, seed: u64) -> (u64, u64, u64) {
    let spec = WorldSpec {
        seed,
        mode: if moqt {
            UpstreamMode::Moqt
        } else {
            UpstreamMode::Classic
        },
        stub_mode: if moqt {
            StubMode::Moqt
        } else {
            StubMode::Classic
        },
        n_stubs: N_STUBS,
        records: vec![("www".into(), ttl)],
        ..WorldSpec::default()
    };
    let mut w = World::build(&spec);

    // Initial interest from every stub.
    for i in 0..N_STUBS {
        w.lookup(i, "www", Duration::from_millis(500));
    }
    w.sim.run_until(w.sim.now() + Duration::from_secs(5));
    // Count only steady-state traffic.
    w.sim.stats_mut().reset();
    let t0 = w.sim.now();

    // Schedule record changes at a fixed cadence.
    if changes_per_hour > 0 {
        let interval = Duration::from_secs(3600 / changes_per_hour as u64);
        let mut at = t0 + interval;
        let mut octet = 10u8;
        while at < t0 + Duration::from_secs(HORIZON_S) {
            let target = at;
            let o = octet;
            octet = octet.wrapping_add(1).max(1);
            let auth = w.auth;
            w.sim.schedule_at(target, move |sim| {
                sim.with_node::<moqdns_core::auth::AuthServer, _>(auth, |a, ctx| {
                    a.update_zone(ctx, |authority| {
                        let name: moqdns_dns::name::Name = "www.example.com".parse().unwrap();
                        if let Some(z) = authority.find_zone_mut(&name) {
                            z.set_records(
                                &name,
                                moqdns_dns::rr::RecordType::A,
                                vec![moqdns_dns::rr::Record::new(
                                    name.clone(),
                                    300,
                                    moqdns_dns::rdata::RData::A(std::net::Ipv4Addr::new(
                                        198, 51, 100, o,
                                    )),
                                )],
                            );
                        }
                    });
                });
            });
            at += interval;
        }
    }

    // Traditional mode: every stub re-queries each TTL (staying "fresh").
    if !moqt {
        for i in 0..N_STUBS {
            let stub = w.stubs[i];
            let interval = Duration::from_secs(ttl as u64);
            let mut at = t0 + interval;
            while at < t0 + Duration::from_secs(HORIZON_S) {
                w.sim.schedule_at(at, move |sim| {
                    let q = World::question("www");
                    sim.with_node::<StubResolver, _>(stub, |s, ctx| s.lookup(ctx, q));
                });
                at += interval;
            }
        }
    }

    let end = t0 + Duration::from_secs(HORIZON_S);
    w.sim.run_until(end);
    let rr_requests: u64 = (0..N_STUBS)
        .map(|i| {
            let s = w.sim.node_ref::<StubResolver>(w.stubs[i]);
            s.metrics.classic_queries_sent + s.metrics.fetches_sent
        })
        .sum();
    (
        w.sim.stats().total_datagrams(),
        w.sim.stats().total_bytes(),
        rr_requests,
    )
}

fn main() {
    report::heading("E5 — update traffic: request/response vs publish/subscribe");

    let mut t = Table::new(
        format!("{N_STUBS} interested stubs, 30 min, 4 record changes/hour; total wire traffic"),
        &[
            "ttl_s",
            "classic RR requests",
            "moqt RR requests",
            "classic bytes",
            "moqt bytes",
            "moqt/classic bytes",
        ],
    );
    for (i, ttl) in [20u32, 60, 300, 600].iter().enumerate() {
        let (_cd, cb, crr) = run(*ttl, 4, false, 300 + i as u64);
        let (_md, mb, mrr) = run(*ttl, 4, true, 400 + i as u64);
        t.push(&[
            ttl.to_string(),
            crr.to_string(),
            mrr.to_string(),
            cb.to_string(),
            mb.to_string(),
            format!("{:.2}", mb as f64 / cb as f64),
        ]);
    }
    report::emit(&t, "exp_update_traffic_ttl");

    let mut t2 = Table::new(
        format!("{N_STUBS} stubs, TTL 60 s, 30 min; crossover vs change rate"),
        &[
            "changes_per_hour",
            "classic bytes",
            "moqt bytes",
            "moqt/classic",
        ],
    );
    for (i, rate) in [0u32, 4, 12, 60, 240].iter().enumerate() {
        let (_, cb, _) = run(60, *rate, false, 500 + i as u64);
        let (_, mb, _) = run(60, *rate, true, 600 + i as u64);
        t2.push(&[
            rate.to_string(),
            cb.to_string(),
            mb.to_string(),
            format!("{:.2}", mb as f64 / cb as f64),
        ]);
    }
    report::emit(&t2, "exp_update_traffic_rate");
    println!(
        "Shape: pub/sub reduces RR requests to the initial subscription \
         regardless of TTL (the paper's claim). Bytes tell the §5.1 caveat: \
         QUIC keep-alives (every 25 s here) dominate when records change \
         rarely, so pub/sub wins bytes only below the keep-alive crossover."
    );
}
