//! E1 — Fig 1a: record counts and TTL distribution of the top-10k.
//!
//! Regenerates both panels of Fig 1a from the synthetic toplist: the
//! number of domains serving A/AAAA/HTTPS records, and the per-type TTL
//! distribution over the observed clusters {20, 60, 300, 600, 1200, 3600} s.

use moqdns_bench::report;
use moqdns_dns::rr::RecordType;
use moqdns_stats::Table;
use moqdns_workload::ttl_model::{TtlModel, TTL_CLUSTERS};
use moqdns_workload::Toplist;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    report::heading("E1 / Fig 1a — record counts and TTL distribution (top-10k)");

    let toplist = Toplist::top10k(20_250_624);
    let (a, aaaa, https) = toplist.type_counts();

    let mut counts = Table::new(
        "Resolved record counts (paper: A=8435, AAAA=2870, HTTPS=1835)",
        &["type", "domains (synthetic)", "domains (paper)"],
    );
    counts.push(&["A".to_string(), a.to_string(), "8435".into()]);
    counts.push(&["AAAA".to_string(), aaaa.to_string(), "2870".into()]);
    counts.push(&["HTTPS".to_string(), https.to_string(), "1835".into()]);
    report::emit(&counts, "fig1a_counts");

    // TTL histogram per type, sampled once per record-bearing domain.
    let model = TtlModel::default();
    let mut rng = StdRng::seed_from_u64(7);
    let mut hist: Vec<[u64; 3]> = vec![[0; 3]; TTL_CLUSTERS.len()];
    let idx_of = |ttl: u32| TTL_CLUSTERS.iter().position(|t| *t == ttl).unwrap();
    for d in toplist.domains() {
        for (col, (present, rtype)) in [
            (d.has_a, RecordType::A),
            (d.has_aaaa, RecordType::AAAA),
            (d.has_https, RecordType::HTTPS),
        ]
        .iter()
        .enumerate()
        .map(|(c, x)| (c, *x))
        {
            if present {
                let ttl = model.sample(rtype, &mut rng);
                hist[idx_of(ttl)][col] += 1;
            }
        }
    }

    let mut t = Table::new(
        "TTL distribution per record type (share of domains, %)",
        &["ttl_s", "A", "AAAA", "HTTPS"],
    );
    for (i, ttl) in TTL_CLUSTERS.iter().enumerate() {
        let pct = |c: u64, total: usize| {
            if total == 0 {
                0.0
            } else {
                100.0 * c as f64 / total as f64
            }
        };
        t.push(&[
            ttl.to_string(),
            format!("{:.1}", pct(hist[i][0], a)),
            format!("{:.1}", pct(hist[i][1], aaaa)),
            format!("{:.1}", pct(hist[i][2], https)),
        ]);
    }
    report::emit(&t, "fig1a_ttl_distribution");

    println!(
        "Shape checks: A >> AAAA > HTTPS counts ({a} > {aaaa} > {https}); \
         HTTPS mass at 300 s = {:.1}% (paper: \"almost exclusively\").",
        100.0 * hist[idx_of(300)][2] as f64 / https.max(1) as f64
    );
}
