//! E2 — Fig 1b: record change rate over 300 TTL-spaced observations.
//!
//! Replays the paper's §2 methodology on the synthetic churn model: for
//! each TTL cluster, observe each domain 300 times at TTL intervals,
//! compare lexicographically ordered samples, and report percentiles of
//! the change count. Expected shape (paper): TTL ≤ 300 s shows ≥71 changes
//! at the 90th percentile; TTL ≥ 600 s shows none up to the same
//! percentile.

use moqdns_bench::report;
use moqdns_stats::{Summary, Table};
use moqdns_workload::churn::ChurnModel;
use moqdns_workload::ttl_model::TTL_CLUSTERS;
use rand::rngs::StdRng;
use rand::SeedableRng;

const OBSERVATIONS: usize = 300;
const DOMAINS_PER_CLUSTER: usize = 1000;

fn main() {
    report::heading("E2 / Fig 1b — change rate over 300 observations");

    let model = ChurnModel::default();
    let mut rng = StdRng::seed_from_u64(2025);

    let mut t = Table::new(
        format!(
            "Changes per {OBSERVATIONS} observations ({DOMAINS_PER_CLUSTER} domains per cluster)"
        ),
        &["ttl_s", "p50", "p75", "p90", "p99", "max"],
    );
    let mut p90_by_ttl = Vec::new();
    for ttl in TTL_CLUSTERS {
        let samples: Vec<f64> = (0..DOMAINS_PER_CLUSTER)
            .map(|_| model.simulate_observations(ttl, OBSERVATIONS, &mut rng) as f64)
            .collect();
        let s = Summary::from(samples);
        p90_by_ttl.push((ttl, s.percentile(90.0)));
        t.push(&[
            ttl.to_string(),
            format!("{:.0}", s.percentile(50.0)),
            format!("{:.0}", s.percentile(75.0)),
            format!("{:.0}", s.percentile(90.0)),
            format!("{:.0}", s.percentile(99.0)),
            format!("{:.0}", s.max()),
        ]);
    }
    report::emit(&t, "fig1b_change_rate");

    for (ttl, p90) in &p90_by_ttl {
        if *ttl <= 300 {
            assert!(
                *p90 >= 71.0,
                "paper shape violated: TTL {ttl} p90 {p90} < 71"
            );
        } else {
            assert_eq!(*p90, 0.0, "paper shape violated: TTL {ttl} p90 {p90} != 0");
        }
    }
    println!(
        "Shape check passed: p90 ≥ 71 changes for TTL ≤ 300 s; p90 = 0 for TTL ≥ 600 s (Fig 1b)."
    );
}
