//! Runs every experiment binary in sequence (E1–E10, A1–A3), regenerating
//! all CSVs in `results/` and printing every table. See DESIGN.md §4 for
//! the experiment index.

use std::process::Command;

const BINS: &[&str] = &[
    "fig1a_ttl_distribution",
    "fig1b_change_rate",
    "exp_query_latency",
    "exp_update_latency",
    "exp_update_traffic",
    "exp_ddns",
    "exp_cdn",
    "exp_deep_space",
    "exp_state_overhead",
    "exp_fallback",
    "abl_teardown",
    "abl_streams_vs_datagrams",
    "abl_relay_fanout",
];

fn main() {
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("exe dir");
    let mut failed = Vec::new();
    for bin in BINS {
        println!("\n===================== {bin} =====================");
        let path = dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when the sibling binary is not built yet.
            Command::new("cargo")
                .args(["run", "-q", "-p", "moqdns-bench", "--bin", bin])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failed.push(*bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to start: {e}");
                failed.push(*bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nAll experiments completed; CSVs are in results/.");
    } else {
        eprintln!("\nFailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
