//! Shared command-line flags for the experiment binaries.
//!
//! Every bench binary understands the same flags, parsed in one place so
//! CI can drive the whole matrix uniformly:
//!
//! * `--smoke` — scaled-down variant (tiny node counts / few updates)
//!   suitable for a CI job;
//! * `--check` — machine-checked mode: measured invariants are collected
//!   into an [`InvariantGate`](crate::gate::InvariantGate), emitted as a
//!   JSON summary under `results/`, and the process exits nonzero when
//!   any invariant fails (instead of panicking on the first);
//! * `--par N` (or `--par=N`) — run the world on `N` parallel simulator
//!   shards (`moqdns_netsim::ParSim`, one region per worker). The event
//!   history is bit-identical to the single-threaded run, so results and
//!   baselines do not change — only wall clock may. Binaries whose world
//!   has no sharded build ignore it;
//! * `--json PATH` (or `--json=PATH`) — write the `--check` JSON summary
//!   to `PATH` instead of the default `results/ci_<scenario>.json`. Used
//!   by the live-smoke lane (`moqdns-loadgen --json results/live_smoke.json`)
//!   and available to every scenario binary.

/// Parsed common flags.
#[derive(Debug, Clone, Default)]
pub struct BenchOpts {
    /// Scaled-down CI variant.
    pub smoke: bool,
    /// Machine-checked invariant-gate mode (JSON summary + exit code).
    pub check: bool,
    /// Parallel simulator shards (`0` = single-threaded).
    pub par: usize,
    /// Output path override for the `--check` JSON summary.
    pub json: Option<String>,
}

impl BenchOpts {
    /// Parses the process arguments. Unknown flags are ignored (binaries
    /// may add their own on top).
    pub fn from_args() -> BenchOpts {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => opts.smoke = true,
                "--check" => opts.check = true,
                "--par" => {
                    opts.par = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--par requires a worker count");
                }
                a if a.starts_with("--par=") => {
                    opts.par = a["--par=".len()..].parse().expect("--par=N needs a number");
                }
                "--json" => {
                    opts.json = Some(args.next().expect("--json requires a path"));
                }
                a if a.starts_with("--json=") => {
                    opts.json = Some(a["--json=".len()..].to_string());
                }
                _ => {}
            }
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_off() {
        let o = BenchOpts::default();
        assert!(!o.smoke && !o.check);
        assert_eq!(o.par, 0, "single-threaded by default");
        assert!(o.json.is_none(), "default JSON path");
    }
}
