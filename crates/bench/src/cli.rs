//! Shared command-line flags for the experiment binaries.
//!
//! Every bench binary understands the same two flags, parsed in one
//! place so CI can drive the whole matrix uniformly:
//!
//! * `--smoke` — scaled-down variant (tiny node counts / few updates)
//!   suitable for a CI job;
//! * `--check` — machine-checked mode: measured invariants are collected
//!   into an [`InvariantGate`](crate::gate::InvariantGate), emitted as a
//!   JSON summary under `results/`, and the process exits nonzero when
//!   any invariant fails (instead of panicking on the first).

/// Parsed common flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchOpts {
    /// Scaled-down CI variant.
    pub smoke: bool,
    /// Machine-checked invariant-gate mode (JSON summary + exit code).
    pub check: bool,
}

impl BenchOpts {
    /// Parses the process arguments. Unknown flags are ignored (binaries
    /// may add their own on top).
    pub fn from_args() -> BenchOpts {
        let mut opts = BenchOpts::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--smoke" => opts.smoke = true,
                "--check" => opts.check = true,
                _ => {}
            }
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_off() {
        let o = BenchOpts::default();
        assert!(!o.smoke && !o.check);
    }
}
