//! The CI invariant gate: measured scenario invariants as machine-checked
//! pass/fail records instead of eyeballed tables.
//!
//! An [`InvariantGate`] collects named checks (`one copy per link`,
//! `zero post-kill loss`, `coalesced fetch bound`, …) plus raw metric
//! values while a scenario binary runs. Behaviour depends on the mode it
//! was created with:
//!
//! * plain run (no `--check`): a failing check panics immediately, like
//!   the `assert!`s it replaces — experiments still die loudly;
//! * `--check`: failures are recorded instead of panicking, the whole
//!   gate is written as a JSON summary to `results/ci_<scenario>.json`,
//!   and [`InvariantGate::finish`] exits the process nonzero when any
//!   check failed. CI diffs the JSON `metrics` block against committed
//!   baselines (`results/ci_baseline_<scenario>.json`).

use crate::cli::BenchOpts;
use crate::report;
use std::fmt::Display;
use std::io::Write as _;

/// One recorded invariant check.
#[derive(Debug, Clone)]
pub struct CheckRecord {
    /// Invariant name ("one_copy_per_link", …).
    pub name: String,
    /// Expected value (or bound) as text.
    pub expected: String,
    /// Measured value as text.
    pub actual: String,
    /// Whether the invariant held.
    pub pass: bool,
}

/// Collector for a scenario's measured invariants and metrics.
#[derive(Debug)]
pub struct InvariantGate {
    scenario: String,
    smoke: bool,
    check_mode: bool,
    /// `--json PATH` override for the summary location.
    json_path: Option<String>,
    checks: Vec<CheckRecord>,
    /// Raw counters for baseline diffing (insertion-ordered).
    metrics: Vec<(String, u64)>,
}

impl InvariantGate {
    /// A gate for `scenario` under the parsed flags.
    pub fn new(scenario: impl Into<String>, opts: &BenchOpts) -> InvariantGate {
        InvariantGate {
            scenario: scenario.into(),
            smoke: opts.smoke,
            check_mode: opts.check,
            json_path: opts.json.clone(),
            checks: Vec::new(),
            metrics: Vec::new(),
        }
    }

    fn record(&mut self, name: &str, expected: String, actual: String, pass: bool) {
        if !pass && !self.check_mode {
            panic!(
                "{}: invariant `{name}` failed: expected {expected}, got {actual}",
                self.scenario
            );
        }
        if !pass {
            eprintln!(
                "[gate] {}: INVARIANT FAILED `{name}`: expected {expected}, got {actual}",
                self.scenario
            );
        }
        self.checks.push(CheckRecord {
            name: name.into(),
            expected,
            actual,
            pass,
        });
    }

    /// Checks `actual == expected`.
    pub fn check_eq<T: PartialEq + Display>(&mut self, name: &str, expected: T, actual: T) {
        let pass = actual == expected;
        self.record(name, expected.to_string(), actual.to_string(), pass);
    }

    /// Checks `actual <= bound` (e.g. the coalesced-fetch bound).
    pub fn check_le(&mut self, name: &str, bound: u64, actual: u64) {
        self.record(
            name,
            format!("<= {bound}"),
            actual.to_string(),
            actual <= bound,
        );
    }

    /// Checks `actual >= bound`.
    pub fn check_ge(&mut self, name: &str, bound: u64, actual: u64) {
        self.record(
            name,
            format!(">= {bound}"),
            actual.to_string(),
            actual >= bound,
        );
    }

    /// Checks a plain condition, with `detail` as the measured value text.
    pub fn check_true(&mut self, name: &str, pass: bool, detail: impl Into<String>) {
        self.record(name, "true".into(), detail.into(), pass);
    }

    /// Records a raw counter for the JSON summary / baseline diff.
    pub fn metric(&mut self, name: &str, value: u64) {
        self.metrics.push((name.into(), value));
    }

    /// True when every recorded check passed so far.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Renders the gate as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"scenario\": {},\n", json_str(&self.scenario)));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!("  \"pass\": {},\n", self.all_passed()));
        s.push_str("  \"invariants\": [\n");
        for (i, c) in self.checks.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": {}, \"expected\": {}, \"actual\": {}, \"pass\": {}}}{}\n",
                json_str(&c.name),
                json_str(&c.expected),
                json_str(&c.actual),
                c.pass,
                if i + 1 < self.checks.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            s.push_str(&format!(
                "    {}: {}{}\n",
                json_str(k),
                v,
                if i + 1 < self.metrics.len() { "," } else { "" }
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Prints the pass/fail summary; in `--check` mode also writes
    /// `results/ci_<scenario>.json` and **exits the process** with status
    /// 1 when any invariant failed. Returns whether all passed (plain
    /// mode only reaches here when they did).
    pub fn finish(self) -> bool {
        let failed = self.checks.iter().filter(|c| !c.pass).count();
        println!(
            "[gate] {}: {}/{} invariants passed",
            self.scenario,
            self.checks.len() - failed,
            self.checks.len()
        );
        if self.check_mode {
            let path = match &self.json_path {
                Some(p) => std::path::PathBuf::from(p),
                None => report::results_dir().join(format!("ci_{}.json", self.scenario)),
            };
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::File::create(&path)
                .and_then(|mut f| f.write_all(self.to_json().as_bytes()))
            {
                Ok(()) => println!("[json] {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
            if failed > 0 {
                eprintln!("[gate] {}: {failed} invariant(s) FAILED", self.scenario);
                std::process::exit(1);
            }
        }
        failed == 0
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_check() -> BenchOpts {
        BenchOpts {
            smoke: true,
            check: true,
            par: 0,
            json: None,
        }
    }

    #[test]
    fn collects_without_panicking_in_check_mode() {
        let mut g = InvariantGate::new("t", &opts_check());
        g.check_eq("eq", 1u64, 2u64);
        g.check_le("le", 5, 9);
        g.check_ge("ge", 3, 3);
        g.check_true("cond", true, "ok");
        assert!(!g.all_passed());
        assert_eq!(g.checks.iter().filter(|c| c.pass).count(), 2);
    }

    #[test]
    #[should_panic(expected = "invariant `eq` failed")]
    fn panics_in_plain_mode() {
        let mut g = InvariantGate::new("t", &BenchOpts::default());
        g.check_eq("eq", 1u64, 2u64);
    }

    #[test]
    fn json_shape() {
        let mut g = InvariantGate::new("demo", &opts_check());
        g.check_eq("one_copy_per_link", 1u64, 1u64);
        g.metric("objects_forwarded", 42);
        let j = g.to_json();
        assert!(j.contains("\"scenario\": \"demo\""));
        assert!(j.contains("\"pass\": true"));
        assert!(j.contains("\"objects_forwarded\": 42"));
        assert!(j.contains("\"smoke\": true"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
