//! # moqdns-bench
//!
//! The experiment harness: one binary per paper figure/claim (see
//! DESIGN.md §4 for the index) plus Criterion micro-benchmarks. This
//! library holds the shared world-building and reporting helpers.

pub mod cli;
pub mod gate;
pub mod report;
pub mod worlds;
