//! Experiment output: markdown to stdout, CSV into `results/`.

use moqdns_stats::Table;
use std::path::PathBuf;

/// Workspace-level `results/` directory.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results")
}

/// Prints the table as markdown and writes `results/<name>.csv`.
pub fn emit(table: &Table, name: &str) {
    println!("{}", table.to_markdown());
    let path = results_dir().join(format!("{name}.csv"));
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[csv] {}\n", path.display());
    }
}

/// Prints a section heading.
pub fn heading(title: &str) {
    println!("\n== {title} ==\n");
}
