//! Reusable simulated worlds for the experiments.

use moqdns_core::auth::AuthServer;
use moqdns_core::node_ip;
use moqdns_core::recursive::{RecursiveConfig, RecursiveResolver, UpstreamMode};
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_core::teardown::TeardownPolicy;
use moqdns_dns::message::Question;
use moqdns_dns::name::Name;
use moqdns_dns::rdata::RData;
use moqdns_dns::resolver::RootHint;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_netsim::{Addr, LinkConfig, NodeId, Simulator};
use moqdns_quic::TransportConfig;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Duration;

/// Parameters of the standard three-level hierarchy world.
#[derive(Clone)]
pub struct WorldSpec {
    /// RNG seed.
    pub seed: u64,
    /// One-way delay of every link.
    pub link_delay: Duration,
    /// Recursive resolver upstream transport.
    pub mode: UpstreamMode,
    /// Stub transport.
    pub stub_mode: StubMode,
    /// Number of stub resolvers.
    pub n_stubs: usize,
    /// Host names (under example.com) with their TTLs.
    pub records: Vec<(String, u32)>,
    /// Enable §5.2 pipelined MoQT requests.
    pub pipeline: bool,
    /// Stub subscription teardown policy.
    pub stub_policy: TeardownPolicy,
    /// Recursive poll-proxy mode (§4.5).
    pub poll_proxy: bool,
    /// Override the recursive's MoQT step timeout (deep-space paths).
    pub moqt_step_timeout: Option<Duration>,
    /// Override the UDP retransmission timeout everywhere (deep space).
    pub udp_rto: Option<Duration>,
    /// Transport config for the authoritative servers (deep-space paths
    /// need long idle timeouts — the TIPTOP QUIC profile).
    pub auth_transport: Option<TransportConfig>,
}

impl Default for WorldSpec {
    fn default() -> WorldSpec {
        WorldSpec {
            seed: 1,
            link_delay: Duration::from_millis(10),
            mode: UpstreamMode::Moqt,
            stub_mode: StubMode::Moqt,
            n_stubs: 1,
            records: vec![("www".into(), 300)],
            pipeline: false,
            stub_policy: TeardownPolicy::Never,
            poll_proxy: false,
            moqt_step_timeout: None,
            udp_rto: None,
            auth_transport: None,
        }
    }
}

/// The built world.
pub struct World {
    /// The simulator.
    pub sim: Simulator,
    /// Root nameserver node.
    pub root: NodeId,
    /// TLD (.com) nameserver node.
    pub tld: NodeId,
    /// example.com authoritative node.
    pub auth: NodeId,
    /// Recursive resolver node.
    pub recursive: NodeId,
    /// Stub resolver nodes.
    pub stubs: Vec<NodeId>,
}

impl World {
    /// Builds the standard world from `spec`.
    pub fn build(spec: &WorldSpec) -> World {
        let mut sim = Simulator::new(spec.seed);
        sim.set_default_link(LinkConfig::with_delay(spec.link_delay));

        // Dense ids: root=0, tld=1, auth=2, recursive=3, stubs=4…
        let root_id = NodeId::from_index(0);
        let tld_id = NodeId::from_index(1);
        let auth_id = NodeId::from_index(2);

        let mut root_zone = Zone::with_default_soa(Name::root());
        root_zone.add_record(Record::new(
            "com".parse().unwrap(),
            86_400,
            RData::NS("ns.tld".parse().unwrap()),
        ));
        root_zone.add_record(Record::new(
            "ns.tld".parse().unwrap(),
            86_400,
            RData::A(node_ip(tld_id)),
        ));

        let mut tld_zone = Zone::with_default_soa("com".parse().unwrap());
        tld_zone.add_record(Record::new(
            "example.com".parse().unwrap(),
            86_400,
            RData::NS("ns1.example.com".parse().unwrap()),
        ));
        tld_zone.add_record(Record::new(
            "ns1.example.com".parse().unwrap(),
            86_400,
            RData::A(node_ip(auth_id)),
        ));

        let mut ex_zone = Zone::with_default_soa("example.com".parse().unwrap());
        for (i, (host, ttl)) in spec.records.iter().enumerate() {
            let name: Name = format!("{host}.example.com").parse().unwrap();
            let octet = (i % 250) as u8 + 1;
            ex_zone.add_record(Record::new(
                name,
                *ttl,
                RData::A(Ipv4Addr::new(192, 0, 2, octet)),
            ));
        }

        let auth_transport = spec.auth_transport.clone().unwrap_or_default();
        let root = sim.add_node(
            "root",
            Box::new(AuthServer::new(
                Authority::single(root_zone),
                auth_transport.clone(),
                11,
            )),
        );
        let tld = sim.add_node(
            "tld",
            Box::new(AuthServer::new(
                Authority::single(tld_zone),
                auth_transport.clone(),
                12,
            )),
        );
        let auth = sim.add_node(
            "auth",
            Box::new(AuthServer::new(
                Authority::single(ex_zone),
                auth_transport,
                13,
            )),
        );
        assert_eq!((root, tld, auth), (root_id, tld_id, auth_id));

        let roots = vec![RootHint {
            name: "a.root-servers.net".parse().unwrap(),
            addr: IpAddr::V4(node_ip(root)),
        }];
        let mut rec_cfg = RecursiveConfig::new(spec.mode, roots, 21);
        rec_cfg.poll_proxy = spec.poll_proxy;
        if let Some(t) = spec.moqt_step_timeout {
            rec_cfg.moqt_step_timeout = t;
        }
        if let Some(r) = spec.udp_rto {
            rec_cfg.udp_rto = r;
        }
        let mut rec = RecursiveResolver::new(rec_cfg);
        rec.set_pipeline(spec.pipeline);
        let recursive = sim.add_node("recursive", Box::new(rec));

        let mut stubs = Vec::with_capacity(spec.n_stubs);
        for i in 0..spec.n_stubs {
            let mut stub = StubResolver::with_policy(
                spec.stub_mode,
                Addr::new(recursive, 0),
                31 + i as u64,
                spec.stub_policy,
            );
            stub.set_pipeline(spec.pipeline);
            if let Some(r) = spec.udp_rto {
                stub.set_udp_rto(r);
            }
            stubs.push(sim.add_node(format!("stub{i}"), Box::new(stub)));
        }
        // Nodes with periodic sweep timers never go idle; just run the
        // start events.
        sim.run_for(Duration::from_millis(1));
        World {
            sim,
            root,
            tld,
            auth,
            recursive,
            stubs,
        }
    }

    /// The question for host `host` (under example.com).
    pub fn question(host: &str) -> Question {
        Question::new(
            format!("{host}.example.com").parse().unwrap(),
            RecordType::A,
        )
    }

    /// Issues a lookup from stub `i` and runs the sim for `settle`.
    pub fn lookup(&mut self, stub_index: usize, host: &str, settle: Duration) {
        let stub = self.stubs[stub_index];
        let q = Self::question(host);
        self.sim.with_node::<StubResolver, _>(stub, |s, ctx| {
            s.lookup(ctx, q);
        });
        let deadline = self.sim.now() + settle;
        self.sim.run_until(deadline);
    }

    /// Replaces host's A record at the authoritative server with a new
    /// address, triggering pushes. Returns the change time.
    pub fn update_record(&mut self, host: &str, new_octet: u8) -> moqdns_netsim::SimTime {
        let change_time = self.sim.now();
        let name: Name = format!("{host}.example.com").parse().unwrap();
        let ttl = 300;
        self.sim.with_node::<AuthServer, _>(self.auth, |a, ctx| {
            a.update_zone(ctx, |auth| {
                if let Some(z) = auth.find_zone_mut(&name) {
                    z.set_records(
                        &name,
                        RecordType::A,
                        vec![Record::new(
                            name.clone(),
                            ttl,
                            RData::A(Ipv4Addr::new(198, 51, 100, new_octet)),
                        )],
                    );
                }
            });
        });
        change_time
    }
}
