//! Reusable simulated worlds for the experiments.

use moqdns_core::adversary::{ByzantineNode, FetchBombNode, SlowLorisNode};
use moqdns_core::auth::AuthServer;
use moqdns_core::mapping::{track_from_question, RequestFlags};
use moqdns_core::metrics::TierRelayStats;
use moqdns_core::node_ip;
use moqdns_core::recursive::{RecursiveConfig, RecursiveResolver, UpstreamMode};
use moqdns_core::relay_node::RelayNode;
use moqdns_core::stack::{MoqtStack, StackEvent};
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_core::teardown::TeardownPolicy;
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::name::Name;
use moqdns_dns::rdata::RData;
use moqdns_dns::resolver::RootHint;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_moqt::relay::{track_hash, Failover, HashShard, RelayLimits};
use moqdns_moqt::session::SessionEvent;
use moqdns_netsim::topo::{TopoBuilder, TopoHost};
use moqdns_netsim::{
    Addr, Ctx, LinkConfig, Node, NodeId, ParSim, Payload, SimTime, Simulator, Topology,
};
use moqdns_quic::{ConnHandle, TransportConfig};
use moqdns_workload::scenarios::{
    AdversarialScenario, ChaosScenario, FederationScenario, MeshScenario, MetroScenario,
    PlanetScenario, TreeScenario,
};
use moqdns_workload::toplist::Toplist;
use std::any::Any;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Duration;

/// Parameters of the standard three-level hierarchy world.
#[derive(Clone)]
pub struct WorldSpec {
    /// RNG seed.
    pub seed: u64,
    /// One-way delay of every link.
    pub link_delay: Duration,
    /// Recursive resolver upstream transport.
    pub mode: UpstreamMode,
    /// Stub transport.
    pub stub_mode: StubMode,
    /// Number of stub resolvers.
    pub n_stubs: usize,
    /// Host names (under example.com) with their TTLs.
    pub records: Vec<(String, u32)>,
    /// Enable §5.2 pipelined MoQT requests.
    pub pipeline: bool,
    /// Stub subscription teardown policy.
    pub stub_policy: TeardownPolicy,
    /// Recursive poll-proxy mode (§4.5).
    pub poll_proxy: bool,
    /// Override the recursive's MoQT step timeout (deep-space paths).
    pub moqt_step_timeout: Option<Duration>,
    /// Override the UDP retransmission timeout everywhere (deep space).
    pub udp_rto: Option<Duration>,
    /// Transport config for the authoritative servers (deep-space paths
    /// need long idle timeouts — the TIPTOP QUIC profile).
    pub auth_transport: Option<TransportConfig>,
}

impl Default for WorldSpec {
    fn default() -> WorldSpec {
        WorldSpec {
            seed: 1,
            link_delay: Duration::from_millis(10),
            mode: UpstreamMode::Moqt,
            stub_mode: StubMode::Moqt,
            n_stubs: 1,
            records: vec![("www".into(), 300)],
            pipeline: false,
            stub_policy: TeardownPolicy::Never,
            poll_proxy: false,
            moqt_step_timeout: None,
            udp_rto: None,
            auth_transport: None,
        }
    }
}

/// The built world.
pub struct World {
    /// The simulator.
    pub sim: Simulator,
    /// Root nameserver node.
    pub root: NodeId,
    /// TLD (.com) nameserver node.
    pub tld: NodeId,
    /// example.com authoritative node.
    pub auth: NodeId,
    /// Recursive resolver node.
    pub recursive: NodeId,
    /// Stub resolver nodes.
    pub stubs: Vec<NodeId>,
}

impl World {
    /// Builds the standard world from `spec`.
    pub fn build(spec: &WorldSpec) -> World {
        let mut sim = Simulator::new(spec.seed);
        sim.set_default_link(LinkConfig::with_delay(spec.link_delay));

        // Dense ids: root=0, tld=1, auth=2, recursive=3, stubs=4…
        let root_id = NodeId::from_index(0);
        let tld_id = NodeId::from_index(1);
        let auth_id = NodeId::from_index(2);

        let mut root_zone = Zone::with_default_soa(Name::root());
        root_zone.add_record(Record::new(
            "com".parse().unwrap(),
            86_400,
            RData::NS("ns.tld".parse().unwrap()),
        ));
        root_zone.add_record(Record::new(
            "ns.tld".parse().unwrap(),
            86_400,
            RData::A(node_ip(tld_id)),
        ));

        let mut tld_zone = Zone::with_default_soa("com".parse().unwrap());
        tld_zone.add_record(Record::new(
            "example.com".parse().unwrap(),
            86_400,
            RData::NS("ns1.example.com".parse().unwrap()),
        ));
        tld_zone.add_record(Record::new(
            "ns1.example.com".parse().unwrap(),
            86_400,
            RData::A(node_ip(auth_id)),
        ));

        let mut ex_zone = Zone::with_default_soa("example.com".parse().unwrap());
        for (i, (host, ttl)) in spec.records.iter().enumerate() {
            let name: Name = format!("{host}.example.com").parse().unwrap();
            let octet = (i % 250) as u8 + 1;
            ex_zone.add_record(Record::new(
                name,
                *ttl,
                RData::A(Ipv4Addr::new(192, 0, 2, octet)),
            ));
        }

        let auth_transport = spec.auth_transport.clone().unwrap_or_default();
        let root = sim.add_node(
            "root",
            Box::new(AuthServer::new(
                Authority::single(root_zone),
                auth_transport.clone(),
                11,
            )),
        );
        let tld = sim.add_node(
            "tld",
            Box::new(AuthServer::new(
                Authority::single(tld_zone),
                auth_transport.clone(),
                12,
            )),
        );
        let auth = sim.add_node(
            "auth",
            Box::new(AuthServer::new(
                Authority::single(ex_zone),
                auth_transport,
                13,
            )),
        );
        assert_eq!((root, tld, auth), (root_id, tld_id, auth_id));

        let roots = vec![RootHint {
            name: "a.root-servers.net".parse().unwrap(),
            addr: IpAddr::V4(node_ip(root)),
        }];
        let mut rec_cfg = RecursiveConfig::new(spec.mode, roots, 21);
        rec_cfg.poll_proxy = spec.poll_proxy;
        if let Some(t) = spec.moqt_step_timeout {
            rec_cfg.moqt_step_timeout = t;
        }
        if let Some(r) = spec.udp_rto {
            rec_cfg.udp_rto = r;
        }
        let mut rec = RecursiveResolver::new(rec_cfg);
        rec.set_pipeline(spec.pipeline);
        let recursive = sim.add_node("recursive", Box::new(rec));

        let mut stubs = Vec::with_capacity(spec.n_stubs);
        for i in 0..spec.n_stubs {
            let mut stub = StubResolver::with_policy(
                spec.stub_mode,
                Addr::new(recursive, 0),
                31 + i as u64,
                spec.stub_policy,
            );
            stub.set_pipeline(spec.pipeline);
            if let Some(r) = spec.udp_rto {
                stub.set_udp_rto(r);
            }
            stubs.push(sim.add_node(format!("stub{i}"), Box::new(stub)));
        }
        // Nodes with periodic sweep timers never go idle; just run the
        // start events.
        sim.run_for(Duration::from_millis(1));
        World {
            sim,
            root,
            tld,
            auth,
            recursive,
            stubs,
        }
    }

    /// The question for host `host` (under example.com).
    pub fn question(host: &str) -> Question {
        Question::new(
            format!("{host}.example.com").parse().unwrap(),
            RecordType::A,
        )
    }

    /// Issues a lookup from stub `i` and runs the sim for `settle`.
    pub fn lookup(&mut self, stub_index: usize, host: &str, settle: Duration) {
        let stub = self.stubs[stub_index];
        let q = Self::question(host);
        self.sim.with_node::<StubResolver, _>(stub, |s, ctx| {
            s.lookup(ctx, q);
        });
        let deadline = self.sim.now() + settle;
        self.sim.run_until(deadline);
    }

    /// Replaces host's A record at the authoritative server with a new
    /// address, triggering pushes. Returns the change time.
    pub fn update_record(&mut self, host: &str, new_octet: u8) -> moqdns_netsim::SimTime {
        let change_time = self.sim.now();
        let name: Name = format!("{host}.example.com").parse().unwrap();
        let ttl = 300;
        self.sim.with_node::<AuthServer, _>(self.auth, |a, ctx| {
            a.update_zone(ctx, |auth| {
                if let Some(z) = auth.find_zone_mut(&name) {
                    z.set_records(
                        &name,
                        RecordType::A,
                        vec![Record::new(
                            name.clone(),
                            ttl,
                            RData::A(Ipv4Addr::new(198, 51, 100, new_octet)),
                        )],
                    );
                }
            });
        });
        change_time
    }
}

/// A bare MoQT subscriber leaf for relay-tree worlds: connects to its
/// parent (an edge relay or server), subscribes to every question with a
/// joining fetch, and counts what arrives. Shared by the tree-scenario
/// binaries and the relay ablations so each doesn't hand-roll its own.
pub struct TreeStub {
    stack: MoqtStack,
    server: Option<Addr>,
    questions: Vec<Question>,
    /// Pushed updates received, total.
    pub updates: u64,
    /// Pushed updates received, per question index.
    pub updates_by_track: Vec<u64>,
    /// Joining fetches answered with at least one object.
    pub fetched: u64,
    /// Pushed updates whose group id did not advance past the highest
    /// version already seen on that track — a duplicate or out-of-order
    /// delivery. The chaos drills gate this at zero: a link flap or a
    /// redial must never replay an already-delivered version.
    pub regressions: u64,
    /// Times the stub re-dialed its parent after losing the connection
    /// (only when [`TreeStub::redial_after`] is configured).
    pub redials: u64,
    /// Sim time the most recent pushed update arrived (per-region
    /// delivery latency: remote regions lag by the inter-region delay).
    pub last_update_at: Option<SimTime>,
    /// Subscription request id -> question index.
    sub_to_track: HashMap<u64, usize>,
    /// Highest group id delivered per question index (None until the
    /// first push).
    last_group: Vec<Option<u64>>,
    /// The live connection to the parent, if any.
    conn: Option<ConnHandle>,
    /// When set, a lost connection re-dials after this delay instead of
    /// staying dark — the crash/restart drills need leaves that come
    /// back. `None` (the default) keeps the historical never-reconnect
    /// behavior of every standing world.
    redial_delay: Option<Duration>,
}

/// Timer token the stub uses for its own redial alarm (distinct from
/// anything the QUIC stack arms; stack timers tolerate spurious
/// wakeups, so the shared `on_timer` pump stays correct).
const TOKEN_STUB_REDIAL: u64 = 0x5EED_D1A1;

impl TreeStub {
    /// A stub that will subscribe to `questions` at `server`, with the
    /// historical long-idle transport (patient: a partition never kills
    /// the connection, QUIC retransmission drains it on heal).
    pub fn new(server: Addr, questions: Vec<Question>, seed: u64) -> TreeStub {
        TreeStub::with_transport(
            server,
            questions,
            seed,
            TransportConfig::default()
                .idle_timeout(Duration::from_secs(3600))
                .keep_alive(Duration::from_secs(25)),
        )
    }

    /// A stub with an explicit transport config. The chaos drills use a
    /// short idle timeout so a dial into a crashed parent fails fast
    /// (PTO probes, then idle timeout, then the redial timer) instead of
    /// probing into the void for an hour.
    pub fn with_transport(
        server: Addr,
        questions: Vec<Question>,
        seed: u64,
        transport: TransportConfig,
    ) -> TreeStub {
        let n = questions.len();
        TreeStub {
            stack: MoqtStack::client(transport, seed),
            server: Some(server),
            questions,
            updates: 0,
            updates_by_track: vec![0; n],
            fetched: 0,
            regressions: 0,
            redials: 0,
            last_update_at: None,
            sub_to_track: HashMap::new(),
            last_group: vec![None; n],
            conn: None,
            redial_delay: None,
        }
    }

    /// Makes the stub re-dial its parent `delay` after a connection
    /// loss (and keep retrying at that cadence until it sticks).
    pub fn redial_after(mut self, delay: Duration) -> TreeStub {
        self.redial_delay = Some(delay);
        self
    }

    /// Updates received for question `i`.
    pub fn updates_for(&self, i: usize) -> u64 {
        self.updates_by_track.get(i).copied().unwrap_or(0)
    }

    /// The stub goes offline: every connection closes (the
    /// CONNECTION_CLOSE lands at the relay, which tears the session and
    /// its subscriptions down) and it never reconnects. Used by the
    /// diurnal-wave drills — a departed stub must receive nothing more.
    pub fn leave(&mut self, ctx: &mut Ctx<'_>) {
        self.server = None;
        self.conn = None;
        self.stack.close_all(ctx, 0, "diurnal leave");
    }

    /// Connects to the parent and (re-)subscribes every question with a
    /// joining fetch. The per-track version high-water marks survive, so
    /// a post-redial replay of an old version still counts as a
    /// regression.
    fn dial(&mut self, ctx: &mut Ctx<'_>) {
        let Some(server) = self.server else { return };
        let Some(h) = self.stack.connect(ctx.now(), server, false) else {
            return;
        };
        self.conn = Some(h);
        self.sub_to_track.clear();
        for (i, q) in self.questions.clone().iter().enumerate() {
            let track = track_from_question(q, RequestFlags::iterative()).unwrap();
            if let Some((sess, conn)) = self.stack.session_conn(h) {
                let (sub_id, _fetch_id) = sess.subscribe_with_joining_fetch(conn, track, 1);
                self.sub_to_track.insert(sub_id, i);
            }
        }
        let now = ctx.now();
        let evs = self.stack.flush(ctx);
        self.collect(ctx, now, evs);
    }

    fn collect(&mut self, ctx: &mut Ctx<'_>, now: SimTime, evs: Vec<StackEvent>) {
        for e in evs {
            match e {
                StackEvent::Session(_, SessionEvent::SubscriptionObject { request_id, object }) => {
                    self.updates += 1;
                    self.last_update_at = Some(now);
                    if let Some(&i) = self.sub_to_track.get(&request_id) {
                        self.updates_by_track[i] += 1;
                        let g = object.group_id;
                        match self.last_group[i] {
                            Some(prev) if g <= prev => self.regressions += 1,
                            _ => self.last_group[i] = Some(g),
                        }
                    }
                }
                StackEvent::Session(_, SessionEvent::FetchObjects { objects, .. })
                    if !objects.is_empty() =>
                {
                    self.fetched += 1;
                }
                StackEvent::Closed(h) if self.conn == Some(h) => {
                    self.conn = None;
                    if let (Some(delay), Some(_)) = (self.redial_delay, self.server) {
                        ctx.set_timer(delay, TOKEN_STUB_REDIAL);
                    }
                }
                _ => {}
            }
        }
    }
}

impl Node for TreeStub {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.dial(ctx);
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, d: Payload) {
        let now = ctx.now();
        let evs = self.stack.on_datagram(ctx, from, &d);
        self.collect(ctx, now, evs);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        if t == TOKEN_STUB_REDIAL && self.conn.is_none() && self.server.is_some() {
            self.redials += 1;
            self.dial(ctx);
            if self.conn.is_none() {
                // The dial itself failed (endpoint exhausted?): retry.
                ctx.set_timer(
                    self.redial_delay.unwrap_or(Duration::from_millis(500)),
                    TOKEN_STUB_REDIAL,
                );
            }
        }
        let now = ctx.now();
        let evs = self.stack.on_timer(ctx);
        self.collect(ctx, now, evs);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

/// A §5.3 world on a real 3-tier relay tree:
///
/// ```text
///                    auth
///                  /      \
///             tier1[0]  tier1[1]        (StaticParent -> auth)
///              /    \    /    \
///          edge[0] edge[2] ...          (Failover: primary tier1,
///             |       |                  secondary the other tier1)
///          stubs   stubs   ...          (TreeStub leaves)
/// ```
///
/// Built declaratively from a [`TreeScenario`] via `netsim::topo`; every
/// tree link's traffic is observable through `sim.stats()`, which is how
/// the §3 one-copy-per-link aggregation invariant gets asserted.
pub struct TreeWorld {
    /// The simulator.
    pub sim: Simulator,
    /// Tier/parent bookkeeping from the builder.
    pub topo: Topology,
    /// Authoritative server node.
    pub auth: NodeId,
    /// Tier-1 relay nodes.
    pub tier1: Vec<NodeId>,
    /// Edge relay nodes.
    pub edges: Vec<NodeId>,
    /// Stub subscriber nodes.
    pub stubs: Vec<NodeId>,
    /// The questions (one per track) every stub subscribes to.
    pub questions: Vec<Question>,
    zone_apex: Name,
}

impl TreeWorld {
    /// Record name for track `i`.
    pub fn record_name(i: usize) -> Name {
        format!("r{i}.tree.example").parse().unwrap()
    }

    /// Builds the tree world from `spec`, runs it until subscriptions are
    /// settled (stubs fetched + subscribed through both relay tiers).
    pub fn build(spec: &TreeScenario, seed: u64) -> TreeWorld {
        let mut sim = Simulator::new(seed);
        sim.set_default_link(LinkConfig::with_delay(spec.link_delay));

        let zone_apex: Name = "tree.example".parse().unwrap();
        let mut zone = Zone::with_default_soa(zone_apex.clone());
        for i in 0..spec.tracks {
            zone.add_record(Record::new(
                Self::record_name(i),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
            ));
        }
        let questions: Vec<Question> = (0..spec.tracks)
            .map(|i| Question::new(Self::record_name(i), RecordType::A))
            .collect();

        let tier1_parents = if spec.tier1_relays > 1 { 2 } else { 1 };
        let qs = questions.clone();
        let topo = TopoBuilder::new()
            .tier("auth", 1, 0, LinkConfig::with_delay(spec.link_delay))
            .tier(
                "tier1",
                spec.tier1_relays,
                1,
                LinkConfig::with_delay(spec.link_delay),
            )
            .tier(
                "edge",
                spec.edge_relays(),
                tier1_parents,
                LinkConfig::with_delay(spec.link_delay),
            )
            .tier(
                "stub",
                spec.stub_count(),
                1,
                LinkConfig::with_delay(spec.link_delay),
            )
            .build(&mut sim, move |sim, ctx| match ctx.tier_name {
                "auth" => sim.add_node(
                    ctx.name.clone(),
                    Box::new(AuthServer::new(
                        Authority::single(zone.clone()),
                        TransportConfig::default()
                            .idle_timeout(Duration::from_secs(3600))
                            .keep_alive(Duration::from_secs(25)),
                        11,
                    )),
                ),
                "tier1" => {
                    let parent = Addr::new(ctx.parents[0], MOQT_PORT);
                    sim.add_node(
                        ctx.name.clone(),
                        Box::new(RelayNode::new(parent, 0, 40 + ctx.index as u64).tier("tier1")),
                    )
                }
                "edge" => {
                    let parents: Vec<Addr> = ctx
                        .parents
                        .iter()
                        .map(|&p| Addr::new(p, MOQT_PORT))
                        .collect();
                    sim.add_node(
                        ctx.name.clone(),
                        Box::new(
                            RelayNode::with_policy(
                                parents,
                                Box::new(Failover),
                                0,
                                60 + ctx.index as u64,
                            )
                            .tier("edge"),
                        ),
                    )
                }
                _ => sim.add_node(
                    ctx.name.clone(),
                    Box::new(TreeStub::new(
                        Addr::new(ctx.parents[0], MOQT_PORT),
                        qs.clone(),
                        100 + ctx.index as u64,
                    )),
                ),
            });

        let auth = topo.tier_named("auth")[0];
        let tier1 = topo.tier_named("tier1").to_vec();
        let edges = topo.tier_named("edge").to_vec();
        let stubs = topo.tier_named("stub").to_vec();
        let mut world = TreeWorld {
            sim,
            topo,
            auth,
            tier1,
            edges,
            stubs,
            questions,
            zone_apex,
        };
        // Let connections, joining fetches, and the two relay tiers'
        // upstream subscriptions settle before anyone measures.
        world
            .sim
            .run_until(world.sim.now() + Duration::from_secs(5));
        world
    }

    /// Replaces track `i`'s A record, triggering a push through the tree.
    pub fn update_track(&mut self, i: usize, new_octet: u8) {
        let name = Self::record_name(i);
        let apex = self.zone_apex.clone();
        self.sim.with_node::<AuthServer, _>(self.auth, |a, ctx| {
            a.update_zone(ctx, |authority| {
                if let Some(z) = authority.find_zone_mut(&apex) {
                    z.set_records(
                        &name,
                        RecordType::A,
                        vec![Record::new(
                            name.clone(),
                            60,
                            RData::A(Ipv4Addr::new(198, 51, 100, new_octet)),
                        )],
                    );
                }
            });
        });
    }

    /// Takes tier-1 relay `i` out of service mid-run (failover drill).
    pub fn kill_tier1(&mut self, i: usize) {
        let id = self.tier1[i];
        self.sim.with_node::<RelayNode, _>(id, |r, ctx| {
            r.shutdown(ctx);
        });
    }

    /// Total pushed updates received across all stubs.
    pub fn delivered_updates(&self) -> u64 {
        self.stubs
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).updates)
            .sum()
    }

    /// Per-tier relay stats (tier1 first, then edge).
    pub fn tier_stats(&self) -> Vec<TierRelayStats> {
        let mut out = Vec::new();
        for (label, ids) in [("tier1", &self.tier1), ("edge", &self.edges)] {
            let mut tier = TierRelayStats::new(label);
            for &id in ids {
                let r = self.sim.node_ref::<RelayNode>(id);
                tier.accumulate(r.stats(), r.upstream_subscription_count());
            }
            out.push(tier);
        }
        out
    }

    /// The tree's relay-to-relay links: (auth→tier1) and (tier1→edge)
    /// primary attachments — the links the §3 one-copy invariant
    /// constrains. Stub attachments are excluded (those carry the
    /// fan-out, which legitimately scales with subscriber count).
    pub fn upstream_links(&self) -> Vec<(NodeId, NodeId)> {
        self.topo
            .primary_edges()
            .filter(|(_, child)| self.tier1.contains(child) || self.edges.contains(child))
            .collect()
    }
}

/// A multi-region hash-shard mesh world (built from a [`MeshScenario`]):
///
/// ```text
///                       auth (origin)
///                   /        |        \
///              core0       core1      core2     (StaticParent -> auth;
///                 \\\       |||       ///        one hash shard each)
///                  region0..regionR edges        (HashShard across ALL
///                 edge0 edge1 ... edgeE           cores, aligned order)
///                   |     |         |
///                 stubs stubs     stubs          (TreeStub leaves)
/// ```
///
/// Every edge attaches to every core in *aligned* order (uplink `i` is
/// `core_i` at each edge), so a track's hash shard names the same core
/// mesh-wide: core `i` aggregates exactly shard `i` no matter which
/// region the demand comes from. Built via [`TopoBuilder::mesh`].
pub struct MeshWorld {
    /// The simulator.
    pub sim: Simulator,
    /// Tier/parent bookkeeping from the builder.
    pub topo: Topology,
    /// The scenario this world was built from.
    pub spec: MeshScenario,
    /// Origin (authoritative) server node.
    pub auth: NodeId,
    /// Core relay nodes (shard `i` lives on `cores[i]`).
    pub cores: Vec<NodeId>,
    /// Edge relay nodes (region `r` owns
    /// `edges[r * spec.edges_per_region ..][..spec.edges_per_region]`).
    pub edges: Vec<NodeId>,
    /// Stub subscriber nodes.
    pub stubs: Vec<NodeId>,
    /// The questions (one per track) every stub subscribes to.
    pub questions: Vec<Question>,
    zone_apex: Name,
}

impl MeshWorld {
    /// Record name for track `i`.
    pub fn record_name(i: usize) -> Name {
        format!("r{i}.mesh.example").parse().unwrap()
    }

    /// Builds the mesh world from `spec` and settles it (stubs connected,
    /// joining fetches answered, shard subscriptions in place).
    pub fn build(spec: &MeshScenario, seed: u64) -> MeshWorld {
        let mut sim = Simulator::new(seed);
        sim.set_default_link(LinkConfig::with_delay(spec.link_delay));

        let zone_apex: Name = "mesh.example".parse().unwrap();
        let mut zone = Zone::with_default_soa(zone_apex.clone());
        for i in 0..spec.tracks {
            zone.add_record(Record::new(
                Self::record_name(i),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
            ));
        }
        let questions: Vec<Question> = (0..spec.tracks)
            .map(|i| Question::new(Self::record_name(i), RecordType::A))
            .collect();

        let qs = questions.clone();
        let link = LinkConfig::with_delay(spec.link_delay);
        let topo = TopoBuilder::mesh(
            "auth",
            spec.cores,
            spec.regions,
            spec.edges_per_region,
            link,
        )
        .tier("stub", spec.stub_count(), 1, link)
        .build(&mut sim, move |sim, ctx| match ctx.tier_name {
            "auth" => sim.add_node(
                ctx.name.clone(),
                Box::new(AuthServer::new(
                    Authority::single(zone.clone()),
                    TransportConfig::default()
                        .idle_timeout(Duration::from_secs(3600))
                        .keep_alive(Duration::from_secs(25)),
                    11,
                )),
            ),
            "core" => {
                let parent = Addr::new(ctx.parents[0], MOQT_PORT);
                sim.add_node(
                    ctx.name.clone(),
                    Box::new(RelayNode::new(parent, 0, 40 + ctx.index as u64).tier("core")),
                )
            }
            "edge" => {
                let parents: Vec<Addr> = ctx
                    .parents
                    .iter()
                    .map(|&p| Addr::new(p, MOQT_PORT))
                    .collect();
                sim.add_node(
                    ctx.name.clone(),
                    Box::new(
                        RelayNode::with_policy(
                            parents,
                            Box::new(HashShard),
                            0,
                            60 + ctx.index as u64,
                        )
                        .tier("edge"),
                    ),
                )
            }
            _ => sim.add_node(
                ctx.name.clone(),
                Box::new(TreeStub::new(
                    Addr::new(ctx.parents[0], MOQT_PORT),
                    qs.clone(),
                    100 + ctx.index as u64,
                )),
            ),
        });

        let auth = topo.tier_named("auth")[0];
        let cores = topo.tier_named("core").to_vec();
        let edges = topo.tier_named("edge").to_vec();
        let stubs = topo.tier_named("stub").to_vec();
        let mut world = MeshWorld {
            sim,
            topo,
            spec: *spec,
            auth,
            cores,
            edges,
            stubs,
            questions,
            zone_apex,
        };
        world
            .sim
            .run_until(world.sim.now() + Duration::from_secs(5));
        world
    }

    /// The home core (hash shard) of track `i` — identical at every edge
    /// because the mesh wires uplinks in aligned order.
    pub fn home_core(&self, i: usize) -> usize {
        let track = track_from_question(&self.questions[i], RequestFlags::iterative()).unwrap();
        (track_hash(&track) % self.spec.cores as u64) as usize
    }

    /// Tracks homed on core `c`.
    pub fn shard_size(&self, c: usize) -> usize {
        (0..self.spec.tracks)
            .filter(|&i| self.home_core(i) == c)
            .count()
    }

    /// Replaces track `i`'s A record, triggering a push through the mesh.
    pub fn update_track(&mut self, i: usize, new_octet: u8) {
        let name = Self::record_name(i);
        let apex = self.zone_apex.clone();
        self.sim.with_node::<AuthServer, _>(self.auth, |a, ctx| {
            a.update_zone(ctx, |authority| {
                if let Some(z) = authority.find_zone_mut(&apex) {
                    z.set_records(
                        &name,
                        RecordType::A,
                        vec![Record::new(
                            name.clone(),
                            60,
                            RData::A(Ipv4Addr::new(198, 51, 100, new_octet)),
                        )],
                    );
                }
            });
        });
    }

    /// Pushes one round of updates (every track once) and settles.
    pub fn update_round(&mut self, octet_base: u8) {
        for i in 0..self.spec.tracks {
            self.update_track(i, octet_base.wrapping_add(i as u8));
        }
        let deadline = self.sim.now() + self.spec.update_interval;
        self.sim.run_until(deadline);
    }

    /// Takes core relay `i` out of service mid-run.
    pub fn kill_core(&mut self, i: usize) {
        let id = self.cores[i];
        self.sim.with_node::<RelayNode, _>(id, |r, ctx| {
            r.shutdown(ctx);
        });
    }

    /// Brings a killed core relay back; edge recovery probes re-attach to
    /// it and rebalance its shard home.
    pub fn revive_core(&mut self, i: usize) {
        let id = self.cores[i];
        self.sim.with_node::<RelayNode, _>(id, |r, _ctx| {
            r.revive();
        });
    }

    /// Total pushed updates received across all stubs.
    pub fn delivered_updates(&self) -> u64 {
        self.stubs
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).updates)
            .sum()
    }

    /// Update datagrams delivered into edge `e` summed over all its core
    /// uplinks — the per-child form of the one-copy invariant under
    /// sharding (each update arrives over exactly one core→edge link).
    pub fn delivered_into_edge(&self, e: NodeId) -> u64 {
        self.cores
            .iter()
            .map(|&c| self.sim.stats().between(c, e).delivered)
            .sum()
    }

    /// Update datagrams delivered from the origin into all cores.
    pub fn delivered_into_cores(&self) -> u64 {
        self.cores
            .iter()
            .map(|&c| self.sim.stats().between(self.auth, c).delivered)
            .sum()
    }

    /// Per-tier relay stats (core first, then edge).
    pub fn tier_stats(&self) -> Vec<TierRelayStats> {
        let mut out = Vec::new();
        for (label, ids) in [("core", &self.cores), ("edge", &self.edges)] {
            let mut tier = TierRelayStats::new(label);
            for &id in ids {
                let r = self.sim.node_ref::<RelayNode>(id);
                tier.accumulate(r.stats(), r.upstream_subscription_count());
            }
            out.push(tier);
        }
        out
    }
}

/// Either a single-threaded [`Simulator`] or a sharded [`ParSim`].
///
/// The multi-region worlds ([`FederationWorld`], [`MetroWorld`],
/// [`PlanetWorld`]) build against this handle so one construction path
/// drives both the CI-baseline run (single-threaded, bit-exact against
/// committed results) and the parallel run (one worker per region group,
/// conservative-lookahead barriers — see `moqdns_netsim::par`). Node
/// creation names the owning shard; the single-threaded variant ignores
/// it. Because every link in these worlds is lossless (the simulator's
/// RNG is never consulted on a lossless transmit) and every node carries
/// its own seeded RNG, the two variants produce identical delivery
/// traces — pinned by the parity tests below for 1, 2, and N workers.
pub enum SimHandle {
    /// One global event loop — the exact CI-baseline event stream.
    /// (Boxed: the simulator is hundreds of bytes of inline state and
    /// this enum is stored by value in every world.)
    Single(Box<Simulator>),
    /// Sharded, synchronized at conservative-lookahead barriers.
    Par(ParSim),
}

impl SimHandle {
    /// Creates a handle: `workers == 0` builds the single-threaded
    /// simulator, `workers >= 1` the sharded one (1 shard replays the
    /// exact single-threaded event stream through the parallel plumbing).
    pub fn new(seed: u64, workers: usize) -> SimHandle {
        if workers == 0 {
            SimHandle::Single(Box::new(Simulator::new(seed)))
        } else {
            SimHandle::Par(ParSim::new(seed, workers))
        }
    }

    /// Number of shards (1 for the single-threaded variant).
    pub fn workers(&self) -> usize {
        match self {
            SimHandle::Single(_) => 1,
            SimHandle::Par(p) => p.workers(),
        }
    }

    /// Adds a node owned by `shard` (ignored single-threaded).
    pub fn add_node(
        &mut self,
        shard: usize,
        name: impl Into<String>,
        node: Box<dyn Node>,
    ) -> NodeId {
        match self {
            SimHandle::Single(s) => s.add_node(name, node),
            SimHandle::Par(p) => p.add_node(shard, name, node),
        }
    }

    /// Sets the link configuration used for pairs without an override.
    pub fn set_default_link(&mut self, cfg: LinkConfig) {
        match self {
            SimHandle::Single(s) => s.set_default_link(cfg),
            SimHandle::Par(p) => p.set_default_link(cfg),
        }
    }

    /// Sets both directions of the link between `a` and `b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        match self {
            SimHandle::Single(s) => s.set_link(a, b, cfg),
            SimHandle::Par(p) => p.set_link(a, b, cfg),
        }
    }

    /// Sets only the `src -> dst` direction of a link (asymmetric fault
    /// windows; the chaos plane uses this through
    /// [`moqdns_netsim::FaultHost`]).
    pub fn set_link_directed(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        match self {
            SimHandle::Single(s) => s.set_link_directed(src, dst, cfg),
            SimHandle::Par(p) => p.set_link_directed(src, dst, cfg),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match self {
            SimHandle::Single(s) => s.now(),
            SimHandle::Par(p) => p.now(),
        }
    }

    /// Runs events until `deadline` (inclusive); returns events executed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        match self {
            SimHandle::Single(s) => s.run_until(deadline),
            SimHandle::Par(p) => p.run_until(deadline),
        }
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: Duration) -> u64 {
        match self {
            SimHandle::Single(s) => s.run_for(d),
            SimHandle::Par(p) => p.run_for(d),
        }
    }

    /// Number of events currently scheduled.
    pub fn pending_events(&self) -> usize {
        match self {
            SimHandle::Single(s) => s.pending_events(),
            SimHandle::Par(p) => p.pending_events(),
        }
    }

    /// Runs `f` with mutable access to the concrete node `T` at `id`.
    pub fn with_node<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        match self {
            SimHandle::Single(s) => s.with_node(id, f),
            SimHandle::Par(p) => p.with_node(id, f),
        }
    }

    /// Immutable access to the concrete node `T` at `id`.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        match self {
            SimHandle::Single(s) => s.node_ref(id),
            SimHandle::Par(p) => p.node_ref(id),
        }
    }

    /// Human-readable node name.
    pub fn node_name(&self, id: NodeId) -> &str {
        match self {
            SimHandle::Single(s) => s.node_name(id),
            SimHandle::Par(p) => p.node_name(id),
        }
    }

    /// Traffic counters (merged across shards when sharded).
    pub fn stats(&self) -> moqdns_netsim::TrafficStats<'_> {
        match self {
            SimHandle::Single(s) => s.stats(),
            SimHandle::Par(p) => p.stats(),
        }
    }

    /// Mutable traffic counters (e.g. to reset after warm-up).
    pub fn stats_mut(&mut self) -> moqdns_netsim::TrafficStatsMut<'_> {
        match self {
            SimHandle::Single(s) => s.stats_mut(),
            SimHandle::Par(p) => p.stats_mut(),
        }
    }

    /// Enables the order-independent delivery digest.
    pub fn enable_delivery_digest(&mut self) {
        match self {
            SimHandle::Single(s) => s.enable_delivery_digest(),
            SimHandle::Par(p) => p.enable_delivery_digest(),
        }
    }

    /// The delivery digest (wrapping sum across shards when sharded).
    pub fn delivery_digest(&self) -> u64 {
        match self {
            SimHandle::Single(s) => s.delivery_digest(),
            SimHandle::Par(p) => p.delivery_digest(),
        }
    }
}

impl TopoHost for SimHandle {
    fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        SimHandle::set_link(self, a, b, cfg);
    }
}

impl moqdns_netsim::FaultHost for SimHandle {
    fn now(&self) -> SimTime {
        SimHandle::now(self)
    }
    fn run_until(&mut self, deadline: SimTime) {
        SimHandle::run_until(self, deadline);
    }
    fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        SimHandle::set_link(self, a, b, cfg);
    }
    fn set_link_directed(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        SimHandle::set_link_directed(self, src, dst, cfg);
    }
}

/// Applies a [`moqdns_netsim::NodeFault`] to a [`RelayNode`] living in
/// `sim` — the
/// `on_node` callback the relay-tree chaos drills hand to
/// [`moqdns_netsim::run_plan`]. Crash sends CONNECTION_CLOSE everywhere
/// and goes dark ([`RelayNode::shutdown`]); restart re-initializes the
/// relay in place ([`RelayNode::revive`]) with its cumulative stats
/// intact.
pub fn apply_relay_fault(sim: &mut SimHandle, node: NodeId, fault: moqdns_netsim::NodeFault) {
    sim.with_node::<RelayNode, _>(node, |relay, ctx| match fault {
        // Guarded so replaying an already-applied plan prefix (the
        // drills drive one plan in segments, pausing mid-window to push
        // an update round) is a no-op rather than a second shutdown or a
        // state-wiping double revive.
        moqdns_netsim::NodeFault::Crash if !relay.is_dead() => relay.shutdown(ctx),
        moqdns_netsim::NodeFault::Restart if relay.is_dead() => relay.revive(),
        _ => {}
    });
}

/// A cross-region **core federation** world (built from a
/// [`FederationScenario`]):
///
/// ```text
///                      auth (origin)
///                   /       |       \          slow inter-region links
///              core0 ══════ core1 ══════ core2    (full-mesh peer links;
///               ║  \          |          /  ║      shard i homes on core i)
///               ║ [region0] [region1] [region2]
///             edge0 edge1  edge2 ...          region-local edges
///               |     |      |                 (StaticParent -> own core)
///             stubs stubs  stubs              TreeStub leaves
/// ```
///
/// Unlike [`MeshWorld`] — where every edge attaches to every core — the
/// edges here are **regional**: shard routing happens *between the
/// cores*, over dedicated peer links. A core subscribes/fetches tracks
/// homed on a sibling shard from that sibling, so the origin only ever
/// serves each track once (to its home core), and a dead origin leaves
/// every already-published track fully servable region-to-region.
pub struct FederationWorld {
    /// The simulator (single-threaded or sharded — see [`SimHandle`]).
    pub sim: SimHandle,
    /// Tier/parent/peer bookkeeping from the builder.
    pub topo: Topology,
    /// The scenario this world was built from.
    pub spec: FederationScenario,
    /// Origin (authoritative) server node.
    pub auth: NodeId,
    /// Core relay nodes (shard `i` lives on `cores[i]`, serving region `i`).
    pub cores: Vec<NodeId>,
    /// Edge relay nodes (edge `j` belongs to region `j % cores`).
    pub edges: Vec<NodeId>,
    /// Stub subscriber nodes.
    pub stubs: Vec<NodeId>,
    /// The questions (one per track) every stub subscribes to.
    pub questions: Vec<Question>,
    zone_apex: Name,
    /// Counter for naming post-kill late-joiner nodes.
    late_nodes: usize,
}

impl FederationWorld {
    /// Record name for track `i`.
    pub fn record_name(i: usize) -> Name {
        format!("r{i}.fed.example").parse().unwrap()
    }

    /// Builds the federation world from `spec` and settles it (stubs
    /// connected, joining fetches answered, parent + peer subscriptions
    /// in place). Single-threaded — the CI-baseline path.
    pub fn build(spec: &FederationScenario, seed: u64) -> FederationWorld {
        Self::build_with_workers(spec, seed, 0)
    }

    /// Builds the same world on `workers` parallel shards (`0` =
    /// single-threaded). Sharding is by region: the origin lives on
    /// shard 0, core `s` (and its whole region — edges and stubs) on
    /// shard `s % workers`, so only the slow inter-region links (origin
    /// uplinks and the core peer mesh) cross shards and the lookahead
    /// bound is `spec.peer_delay`. Workers beyond `spec.cores` would
    /// own nothing, so the count is clamped.
    pub fn build_with_workers(
        spec: &FederationScenario,
        seed: u64,
        workers: usize,
    ) -> FederationWorld {
        let workers = workers.min(spec.cores.max(1));
        let mut sim = SimHandle::new(seed, workers);
        let w = sim.workers();
        sim.set_default_link(LinkConfig::with_delay(spec.link_delay));

        let zone_apex: Name = "fed.example".parse().unwrap();
        let mut zone = Zone::with_default_soa(zone_apex.clone());
        for i in 0..spec.tracks {
            zone.add_record(Record::new(
                Self::record_name(i),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
            ));
        }
        let questions: Vec<Question> = (0..spec.tracks)
            .map(|i| Question::new(Self::record_name(i), RecordType::A))
            .collect();

        // Node creation is dense and tier-ordered: auth = 0, cores =
        // 1..=K. A core's peer addresses are therefore known *before*
        // the sibling nodes exist (asserted below).
        let k = spec.cores;
        let ec = spec.edge_count();
        let core_id = |s: usize| NodeId::from_index(1 + s);
        let intra = LinkConfig::with_delay(spec.link_delay);
        let inter = LinkConfig::with_delay(spec.peer_delay);
        let qs = questions.clone();
        // Region → shard: core `s` and everything under it on `s % w`.
        // Edge `j` serves region `j % k`; stub `j` hangs off edge
        // `j % ec` (the builder's round-robin parent assignment).
        let topo = TopoBuilder::new()
            .tier("auth", 1, 0, inter)
            .tier("core", k, 1, inter)
            .tier("edge", ec, 1, intra)
            .tier("stub", spec.stub_count(), 1, intra)
            .peer_full_mesh("core", inter)
            .build(&mut sim, move |sim, ctx| match ctx.tier_name {
                "auth" => sim.add_node(
                    0,
                    ctx.name.clone(),
                    Box::new(AuthServer::new(
                        Authority::single(zone.clone()),
                        TransportConfig::default()
                            .idle_timeout(Duration::from_secs(3600))
                            .keep_alive(Duration::from_secs(25)),
                        11,
                    )),
                ),
                "core" => {
                    let parent = Addr::new(ctx.parents[0], MOQT_PORT);
                    let peers: Vec<Addr> = (0..k)
                        .filter(|&s| s != ctx.index)
                        .map(|s| Addr::new(core_id(s), MOQT_PORT))
                        .collect();
                    sim.add_node(
                        ctx.index % w,
                        ctx.name.clone(),
                        Box::new(
                            RelayNode::new(parent, 0, 40 + ctx.index as u64)
                                .peers(peers, ctx.index)
                                .tier("core"),
                        ),
                    )
                }
                "edge" => {
                    let parent = Addr::new(ctx.parents[0], MOQT_PORT);
                    sim.add_node(
                        (ctx.index % k) % w,
                        ctx.name.clone(),
                        Box::new(RelayNode::new(parent, 0, 60 + ctx.index as u64).tier("edge")),
                    )
                }
                _ => sim.add_node(
                    ((ctx.index % ec) % k) % w,
                    ctx.name.clone(),
                    Box::new(TreeStub::new(
                        Addr::new(ctx.parents[0], MOQT_PORT),
                        qs.clone(),
                        100 + ctx.index as u64,
                    )),
                ),
            });

        let auth = topo.tier_named("auth")[0];
        let cores = topo.tier_named("core").to_vec();
        for (s, &c) in cores.iter().enumerate() {
            assert_eq!(c, core_id(s), "dense tier-ordered node ids");
        }
        let edges = topo.tier_named("edge").to_vec();
        let stubs = topo.tier_named("stub").to_vec();
        let mut world = FederationWorld {
            sim,
            topo,
            spec: *spec,
            auth,
            cores,
            edges,
            stubs,
            questions,
            zone_apex,
            late_nodes: 0,
        };
        world
            .sim
            .run_until(world.sim.now() + Duration::from_secs(5));
        world
    }

    /// The home core (hash shard) of track `i` — the only core that ever
    /// contacts the origin for it.
    pub fn home_core(&self, i: usize) -> usize {
        let track = track_from_question(&self.questions[i], RequestFlags::iterative()).unwrap();
        (track_hash(&track) % self.spec.cores as u64) as usize
    }

    /// Tracks homed on core `c`.
    pub fn shard_size(&self, c: usize) -> usize {
        (0..self.spec.tracks)
            .filter(|&i| self.home_core(i) == c)
            .count()
    }

    /// The region an edge index belongs to (edge `j` → region `j % cores`,
    /// the round-robin parent assignment of the builder).
    pub fn region_of_edge(&self, j: usize) -> usize {
        j % self.spec.cores
    }

    /// Stub nodes whose edge lives in `region`.
    pub fn region_stubs(&self, region: usize) -> Vec<NodeId> {
        let edge_count = self.edges.len();
        self.stubs
            .iter()
            .enumerate()
            .filter(|(i, _)| self.region_of_edge(i % edge_count) == region)
            .map(|(_, &s)| s)
            .collect()
    }

    /// Replaces track `i`'s A record at the origin, triggering a push
    /// through the federation.
    pub fn update_track(&mut self, i: usize, new_octet: u8) {
        let name = Self::record_name(i);
        let apex = self.zone_apex.clone();
        self.sim.with_node::<AuthServer, _>(self.auth, |a, ctx| {
            a.update_zone(ctx, |authority| {
                if let Some(z) = authority.find_zone_mut(&apex) {
                    z.set_records(
                        &name,
                        RecordType::A,
                        vec![Record::new(
                            name.clone(),
                            60,
                            RData::A(Ipv4Addr::new(198, 51, 100, new_octet)),
                        )],
                    );
                }
            });
        });
    }

    /// Pushes one round of updates (every track once) and settles.
    pub fn update_round(&mut self, octet_base: u8) {
        for i in 0..self.spec.tracks {
            self.update_track(i, octet_base.wrapping_add(i as u8));
        }
        let deadline = self.sim.now() + self.spec.update_interval;
        self.sim.run_until(deadline);
    }

    /// Kills the origin mid-run (the federation drill: already-published
    /// tracks must keep flowing region-to-region afterwards).
    pub fn kill_origin(&mut self) {
        let auth = self.auth;
        self.sim.with_node::<AuthServer, _>(auth, |a, ctx| {
            a.shutdown(ctx);
        });
    }

    /// Adds a brand-new edge relay in `region` with `stubs` fresh stub
    /// subscribers attached — a cold cache joining after (e.g.) the
    /// origin died. Returns `(edge, stubs)`.
    pub fn add_late_edge(&mut self, region: usize, stubs: usize) -> (NodeId, Vec<NodeId>) {
        let core = self.cores[region];
        let shard = region % self.sim.workers();
        let intra = LinkConfig::with_delay(self.spec.link_delay);
        let n = self.late_nodes;
        self.late_nodes += 1;
        let edge = self.sim.add_node(
            shard,
            format!("late-edge{n}"),
            Box::new(
                RelayNode::new(Addr::new(core, MOQT_PORT), 0, 600 + n as u64).tier("late-edge"),
            ),
        );
        self.sim.set_link(edge, core, intra);
        let mut late_stubs = Vec::with_capacity(stubs);
        for i in 0..stubs {
            let s = self.sim.add_node(
                shard,
                format!("late-stub{n}-{i}"),
                Box::new(TreeStub::new(
                    Addr::new(edge, MOQT_PORT),
                    self.questions.clone(),
                    700 + (n * 16 + i) as u64,
                )),
            );
            self.sim.set_link(s, edge, intra);
            late_stubs.push(s);
        }
        (edge, late_stubs)
    }

    /// Total pushed updates received across the original stubs.
    pub fn delivered_updates(&self) -> u64 {
        self.stubs
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).updates)
            .sum()
    }

    /// Update datagrams delivered from the origin into all cores.
    pub fn delivered_into_cores(&self) -> u64 {
        self.cores
            .iter()
            .map(|&c| self.sim.stats().between(self.auth, c).delivered)
            .sum()
    }

    /// Per-tier relay stats (core first, then edge).
    pub fn tier_stats(&self) -> Vec<TierRelayStats> {
        let mut out = Vec::new();
        for (label, ids) in [("core", &self.cores), ("edge", &self.edges)] {
            let mut tier = TierRelayStats::new(label);
            for &id in ids {
                let r = self.sim.node_ref::<RelayNode>(id);
                tier.accumulate(r.stats(), r.upstream_subscription_count());
            }
            out.push(tier);
        }
        out
    }
}

/// The **metro-scale** federation world (built from a [`MetroScenario`]):
/// the [`FederationWorld`] shape grown to ~10,000 stubs over ~64 tracks,
/// with each stub subscribing to one track *slice* instead of the whole
/// set (see [`MetroScenario::slice_of_stub`]).
///
/// ```text
///                      auth (origin)
///                   /       |       \          slow inter-region links
///              core0 ══════ core1 ══════ core2   (full-mesh peer links;
///               ║            |            ║       shard i homes on core i)
///           [region0]    [region1]    [region2]
///          edge0..edge3 edge4..edge7 edge8..11   4 region-local edges each
///            |||...       |||...      |||...
///          833 stubs    833 stubs   833 stubs    per edge — 9,996 total,
///                                                 8-track slices each
/// ```
///
/// This world is two orders of magnitude larger than anything else in
/// the CI matrix; it exists to exercise the simulator's data plane
/// (scheduler, link tables, zero-copy delivery) as much as the protocol.
pub struct MetroWorld {
    /// The simulator (single-threaded or sharded — see [`SimHandle`]).
    pub sim: SimHandle,
    /// Tier/parent/peer bookkeeping from the builder.
    pub topo: Topology,
    /// The scenario this world was built from.
    pub spec: MetroScenario,
    /// Origin (authoritative) server node.
    pub auth: NodeId,
    /// Core relay nodes (shard `i` lives on `cores[i]`, serving region `i`).
    pub cores: Vec<NodeId>,
    /// Edge relay nodes (edge `j` belongs to region `j % cores`... wired
    /// round-robin by the builder).
    pub edges: Vec<NodeId>,
    /// Stub subscriber nodes (stub `j` hangs off edge `j % edge_count`
    /// and subscribes to slice `spec.slice_of_stub(j)`).
    pub stubs: Vec<NodeId>,
    /// The questions, one per track.
    pub questions: Vec<Question>,
    zone_apex: Name,
    /// Counter for naming post-kill late-joiner nodes.
    late_nodes: usize,
}

impl MetroWorld {
    /// Record name for track `i`.
    pub fn record_name(i: usize) -> Name {
        format!("r{i}.metro.example").parse().unwrap()
    }

    /// Builds the metro world from `spec` and settles it (every stub
    /// connected, joining fetches answered, parent + peer subscriptions
    /// in place). Single-threaded — the CI-baseline path.
    pub fn build(spec: &MetroScenario, seed: u64) -> MetroWorld {
        Self::build_with_workers(spec, seed, 0)
    }

    /// Builds the same world on `workers` parallel shards (`0` =
    /// single-threaded). Sharding is by region, exactly as in
    /// [`FederationWorld::build_with_workers`]: only the inter-region
    /// links cross shards and the lookahead bound is `spec.peer_delay`.
    pub fn build_with_workers(spec: &MetroScenario, seed: u64, workers: usize) -> MetroWorld {
        assert!(
            spec.stubs_per_edge >= spec.slices(),
            "every edge must see every slice for the fetch invariants"
        );
        let workers = workers.min(spec.cores.max(1));
        let mut sim = SimHandle::new(seed, workers);
        let w = sim.workers();
        sim.set_default_link(LinkConfig::with_delay(spec.link_delay));

        let zone_apex: Name = "metro.example".parse().unwrap();
        let mut zone = Zone::with_default_soa(zone_apex.clone());
        for i in 0..spec.tracks {
            zone.add_record(Record::new(
                Self::record_name(i),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
            ));
        }
        let questions: Vec<Question> = (0..spec.tracks)
            .map(|i| Question::new(Self::record_name(i), RecordType::A))
            .collect();

        // Node creation is dense and tier-ordered: auth = 0, cores =
        // 1..=K (asserted below), so peer addresses are known up front.
        let k = spec.cores;
        let core_id = |s: usize| NodeId::from_index(1 + s);
        let intra = LinkConfig::with_delay(spec.link_delay);
        let inter = LinkConfig::with_delay(spec.peer_delay);
        let ec = spec.edge_count();
        let qs = questions.clone();
        let sp = *spec;
        // Region → shard: core `s` and everything under it on `s % w`
        // (edge `j` serves region `j % k`; stub `j` hangs off edge
        // `j % ec` — the builder's round-robin parent assignment).
        let topo = TopoBuilder::new()
            .tier("auth", 1, 0, inter)
            .tier("core", k, 1, inter)
            .tier("edge", ec, 1, intra)
            .tier("stub", spec.stub_count(), 1, intra)
            .peer_full_mesh("core", inter)
            .build(&mut sim, move |sim, ctx| match ctx.tier_name {
                "auth" => sim.add_node(
                    0,
                    ctx.name.clone(),
                    Box::new(AuthServer::new(
                        Authority::single(zone.clone()),
                        TransportConfig::default()
                            .idle_timeout(Duration::from_secs(3600))
                            .keep_alive(Duration::from_secs(60)),
                        11,
                    )),
                ),
                "core" => {
                    let parent = Addr::new(ctx.parents[0], MOQT_PORT);
                    let peers: Vec<Addr> = (0..k)
                        .filter(|&s| s != ctx.index)
                        .map(|s| Addr::new(core_id(s), MOQT_PORT))
                        .collect();
                    sim.add_node(
                        ctx.index % w,
                        ctx.name.clone(),
                        Box::new(
                            RelayNode::new(parent, 0, 40 + ctx.index as u64)
                                .peers(peers, ctx.index)
                                .tier("core"),
                        ),
                    )
                }
                "edge" => {
                    let parent = Addr::new(ctx.parents[0], MOQT_PORT);
                    sim.add_node(
                        (ctx.index % k) % w,
                        ctx.name.clone(),
                        Box::new(RelayNode::new(parent, 0, 60 + ctx.index as u64).tier("edge")),
                    )
                }
                _ => {
                    let slice = sp.slice_of_stub(ctx.index);
                    let slice_qs: Vec<Question> =
                        sp.slice_tracks(slice).map(|t| qs[t].clone()).collect();
                    sim.add_node(
                        ((ctx.index % ec) % k) % w,
                        ctx.name.clone(),
                        Box::new(TreeStub::new(
                            Addr::new(ctx.parents[0], MOQT_PORT),
                            slice_qs,
                            100 + ctx.index as u64,
                        )),
                    )
                }
            });

        let auth = topo.tier_named("auth")[0];
        let cores = topo.tier_named("core").to_vec();
        for (s, &c) in cores.iter().enumerate() {
            assert_eq!(c, core_id(s), "dense tier-ordered node ids");
        }
        let edges = topo.tier_named("edge").to_vec();
        let stubs = topo.tier_named("stub").to_vec();
        let mut world = MetroWorld {
            sim,
            topo,
            spec: *spec,
            auth,
            cores,
            edges,
            stubs,
            questions,
            zone_apex,
            late_nodes: 0,
        };
        world
            .sim
            .run_until(world.sim.now() + Duration::from_secs(10));
        world
    }

    /// The home core (hash shard) of track `i`.
    pub fn home_core(&self, i: usize) -> usize {
        let track = track_from_question(&self.questions[i], RequestFlags::iterative()).unwrap();
        (track_hash(&track) % self.spec.cores as u64) as usize
    }

    /// Tracks homed on core `c`.
    pub fn shard_size(&self, c: usize) -> usize {
        (0..self.spec.tracks)
            .filter(|&i| self.home_core(i) == c)
            .count()
    }

    /// Replaces track `i`'s A record at the origin.
    pub fn update_track(&mut self, i: usize, new_octet: u8) {
        let name = Self::record_name(i);
        let apex = self.zone_apex.clone();
        self.sim.with_node::<AuthServer, _>(self.auth, |a, ctx| {
            a.update_zone(ctx, |authority| {
                if let Some(z) = authority.find_zone_mut(&apex) {
                    z.set_records(
                        &name,
                        RecordType::A,
                        vec![Record::new(
                            name.clone(),
                            60,
                            RData::A(Ipv4Addr::new(198, 51, 100, new_octet)),
                        )],
                    );
                }
            });
        });
    }

    /// Pushes one round of updates (every track once) without advancing
    /// time — the chaos drills push mid-fault-window and let the fault
    /// plan drive the clock.
    pub fn push_round(&mut self, octet_base: u8) {
        for i in 0..self.spec.tracks {
            self.update_track(i, octet_base.wrapping_add(i as u8));
        }
    }

    /// Pushes one round of updates (every track once) and settles.
    pub fn update_round(&mut self, octet_base: u8) {
        self.push_round(octet_base);
        let deadline = self.sim.now() + self.spec.update_interval;
        self.sim.run_until(deadline);
    }

    /// Kills the origin mid-run.
    pub fn kill_origin(&mut self) {
        let auth = self.auth;
        self.sim.with_node::<AuthServer, _>(auth, |a, ctx| {
            a.shutdown(ctx);
        });
    }

    /// Adds a brand-new edge relay in `region` with `stubs` fresh stub
    /// subscribers (stub `i` takes slice `i % slices`) — a cold cache
    /// joining after the origin died. Returns `(edge, stubs)`.
    pub fn add_late_edge(&mut self, region: usize, stubs: usize) -> (NodeId, Vec<NodeId>) {
        let core = self.cores[region];
        let shard = region % self.sim.workers();
        let intra = LinkConfig::with_delay(self.spec.link_delay);
        let n = self.late_nodes;
        self.late_nodes += 1;
        let edge = self.sim.add_node(
            shard,
            format!("late-edge{n}"),
            Box::new(
                RelayNode::new(Addr::new(core, MOQT_PORT), 0, 6000 + n as u64).tier("late-edge"),
            ),
        );
        self.sim.set_link(edge, core, intra);
        let mut late_stubs = Vec::with_capacity(stubs);
        for i in 0..stubs {
            let slice = i % self.spec.slices();
            let slice_qs: Vec<Question> = self
                .spec
                .slice_tracks(slice)
                .map(|t| self.questions[t].clone())
                .collect();
            let s = self.sim.add_node(
                shard,
                format!("late-stub{n}-{i}"),
                Box::new(TreeStub::new(
                    Addr::new(edge, MOQT_PORT),
                    slice_qs,
                    7000 + (n * 64 + i) as u64,
                )),
            );
            self.sim.set_link(s, edge, intra);
            late_stubs.push(s);
        }
        (edge, late_stubs)
    }

    /// Total pushed updates received across the original stubs.
    pub fn delivered_updates(&self) -> u64 {
        self.stubs
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).updates)
            .sum()
    }

    /// Joining fetches answered across the original stubs.
    pub fn fetched_total(&self) -> u64 {
        self.stubs
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).fetched)
            .sum()
    }

    /// Per-tier relay stats (core first, then edge).
    pub fn tier_stats(&self) -> Vec<TierRelayStats> {
        let mut out = Vec::new();
        for (label, ids) in [("core", &self.cores), ("edge", &self.edges)] {
            let mut tier = TierRelayStats::new(label);
            for &id in ids {
                let r = self.sim.node_ref::<RelayNode>(id);
                tier.accumulate(r.stats(), r.upstream_subscription_count());
            }
            out.push(tier);
        }
        out
    }
}

/// The **chaos** world (built from a [`ChaosScenario`]): a [`MetroWorld`]
/// plus one extra *chaos edge* in region 0 carrying a small cohort of
/// short-idle, auto-redialing [`TreeStub`]s — the crash target. The
/// drills below compose a seeded [`FaultPlan`](moqdns_netsim::FaultPlan)
/// per phase and drive it in segments (run into the fault window, push
/// an update round mid-window, run through heal + settle); every fault
/// applies at a simulation barrier and all loss draws are per-link
/// deterministic, so the whole sequence replays bit-identically
/// single-threaded and sharded (pinned by `parallel_parity`).
pub struct ChaosWorld {
    /// The underlying metro world (region-sharded when built with
    /// workers; the chaos edge and its cohort live on shard 0).
    pub metro: MetroWorld,
    /// The scenario this world was built from.
    pub spec: ChaosScenario,
    /// The crash-target edge relay (region 0).
    pub chaos_edge: NodeId,
    /// The redial cohort hanging off [`ChaosWorld::chaos_edge`].
    pub chaos_stubs: Vec<NodeId>,
}

impl ChaosWorld {
    /// Builds and settles the world single-threaded (the CI-baseline
    /// path).
    pub fn build(spec: &ChaosScenario, seed: u64) -> ChaosWorld {
        Self::build_with_workers(spec, seed, 0)
    }

    /// Builds the same world on `workers` parallel shards (`0` =
    /// single-threaded).
    pub fn build_with_workers(spec: &ChaosScenario, seed: u64, workers: usize) -> ChaosWorld {
        let mut metro = MetroWorld::build_with_workers(&spec.metro, seed, workers);
        let core = metro.cores[0];
        let intra = LinkConfig::with_delay(spec.metro.link_delay);
        let edge = metro.sim.add_node(
            0,
            "chaos-edge",
            Box::new(RelayNode::new(Addr::new(core, MOQT_PORT), 0, 5000).tier("chaos-edge")),
        );
        metro.sim.set_link(edge, core, intra);
        let transport = TransportConfig::default()
            .idle_timeout(spec.stub_idle)
            .keep_alive(spec.stub_keep_alive);
        let mut chaos_stubs = Vec::with_capacity(spec.chaos_stubs);
        for i in 0..spec.chaos_stubs {
            let slice = i % spec.metro.slices();
            let qs: Vec<Question> = spec
                .metro
                .slice_tracks(slice)
                .map(|t| metro.questions[t].clone())
                .collect();
            let s = metro.sim.add_node(
                0,
                format!("chaos-stub{i}"),
                Box::new(
                    TreeStub::with_transport(
                        Addr::new(edge, MOQT_PORT),
                        qs,
                        8000 + i as u64,
                        transport.clone(),
                    )
                    .redial_after(spec.stub_redial),
                ),
            );
            metro.sim.set_link(s, edge, intra);
            chaos_stubs.push(s);
        }
        let settle = metro.sim.now() + spec.settle;
        metro.sim.run_until(settle);
        ChaosWorld {
            metro,
            spec: *spec,
            chaos_edge: edge,
            chaos_stubs,
        }
    }

    /// The core carrying the most hash-homed tracks — its origin uplink
    /// is the highest-impact link to flap.
    pub fn busiest_core(&self) -> usize {
        (0..self.spec.metro.cores)
            .max_by_key(|&c| self.metro.shard_size(c))
            .unwrap_or(0)
    }

    /// **Drill 1 — uplink flap.** Flaps the busiest core's origin uplink
    /// (loss → 1.0 both ways, delay untouched so the sharded lookahead
    /// bound holds) for [`ChaosScenario::flap_len`], pushing one full
    /// update round mid-flap. The round's objects ride reliable streams,
    /// so they retransmit and deliver completely after the heal.
    pub fn flap_drill(&mut self, octet: u8) {
        let b = self.busiest_core();
        let auth = self.metro.auth;
        let core = self.metro.cores[b];
        let inter = LinkConfig::with_delay(self.spec.metro.peer_delay);
        let t0 = self.metro.sim.now() + Duration::from_secs(1);
        let t1 = t0 + self.spec.flap_len;
        let plan = moqdns_netsim::FaultPlanBuilder::new(self.spec.fault_seed)
            .window_jitter(Duration::from_millis(50))
            .flap(auth, core, inter, t0, t1)
            .build();
        self.drive_segmented(
            &plan,
            t0 + self.spec.flap_len / 2,
            octet,
            t1 + self.spec.settle,
        );
    }

    /// **Drill 2 — region partition.** Cuts every link into
    /// [`ChaosScenario::partition_region`] (origin uplink + all core
    /// peer links; intra-region links stay up) for
    /// [`ChaosScenario::partition_len`], pushing one round mid-partition.
    /// The isolated region drains completely on reunion.
    pub fn partition_drill(&mut self, octet: u8) {
        let r = self.spec.partition_region.min(self.spec.metro.cores - 1);
        let core = self.metro.cores[r];
        let inter = LinkConfig::with_delay(self.spec.metro.peer_delay);
        let mut cut = vec![(self.metro.auth, core, inter)];
        for (o, &c) in self.metro.cores.iter().enumerate() {
            if o != r {
                cut.push((c, core, inter));
            }
        }
        let t0 = self.metro.sim.now() + Duration::from_secs(1);
        let t1 = t0 + self.spec.partition_len;
        let plan = moqdns_netsim::FaultPlanBuilder::new(self.spec.fault_seed ^ 0x2)
            .window_jitter(Duration::from_millis(50))
            .partition(&cut, t0, t1)
            .build();
        self.drive_segmented(
            &plan,
            t0 + self.spec.partition_len / 2,
            octet,
            t1 + self.spec.settle,
        );
    }

    /// **Drill 3 — edge crash/restart.** Crashes the chaos edge
    /// (CONNECTION_CLOSE to every peer, then dark) for
    /// [`ChaosScenario::edge_downtime`], pushing one round mid-downtime
    /// (the cohort is disconnected and must *not* receive it as a push —
    /// the rejoin fetch brings them current instead), restarting it, and
    /// settling long enough for every cohort stub to redial, re-handshake
    /// and resubscribe. Then pushes a post-recovery round that must reach
    /// the whole cohort.
    pub fn crash_drill(&mut self, mid_octet: u8, post_octet: u8) {
        let edge = self.chaos_edge;
        let t0 = self.metro.sim.now() + Duration::from_secs(1);
        let t1 = t0 + self.spec.edge_downtime;
        let plan = moqdns_netsim::FaultPlanBuilder::new(self.spec.fault_seed ^ 0x3)
            .crash(edge, t0)
            .restart(edge, t1)
            .build();
        // Reconnect slack: a redial can land just before the restart and
        // only complete on a capped PTO retransmit of its ClientHello —
        // give the stragglers one idle-timeout cycle plus settle.
        let end = t1 + self.spec.stub_idle + self.spec.stub_redial + self.spec.settle;
        self.drive_segmented(&plan, t0 + self.spec.edge_downtime / 2, mid_octet, end);
        self.metro.push_round(post_octet);
        let settle = self.metro.sim.now() + self.spec.settle;
        self.metro.sim.run_until(settle);
    }

    /// Drives `plan` to `mid`, pushes one update round, then drives it to
    /// `end`. The second segment re-applies the plan's already-applied
    /// prefix — safe: set-link events are idempotent config writes and
    /// [`apply_relay_fault`] guards crash/restart on the relay's state.
    fn drive_segmented(
        &mut self,
        plan: &moqdns_netsim::FaultPlan,
        mid: SimTime,
        octet: u8,
        end: SimTime,
    ) {
        moqdns_netsim::run_plan(&mut self.metro.sim, plan, mid, apply_relay_fault);
        self.metro.push_round(octet);
        moqdns_netsim::run_plan(&mut self.metro.sim, plan, end, apply_relay_fault);
    }

    /// Pushed updates received across the chaos cohort.
    pub fn chaos_delivered(&self) -> u64 {
        self.chaos_stubs
            .iter()
            .map(|&s| self.metro.sim.node_ref::<TreeStub>(s).updates)
            .sum()
    }

    /// Fetch responses (joining + rejoin) answered across the cohort.
    pub fn chaos_fetched(&self) -> u64 {
        self.chaos_stubs
            .iter()
            .map(|&s| self.metro.sim.node_ref::<TreeStub>(s).fetched)
            .sum()
    }

    /// Duplicate / out-of-order deliveries across the cohort **and** the
    /// original metro stubs — the no-duplicate-across-faults invariant.
    pub fn total_regressions(&self) -> u64 {
        self.chaos_stubs
            .iter()
            .chain(self.metro.stubs.iter())
            .map(|&s| self.metro.sim.node_ref::<TreeStub>(s).regressions)
            .sum()
    }

    /// Per-stub redial counts for the cohort.
    pub fn chaos_redials(&self) -> Vec<u64> {
        self.chaos_stubs
            .iter()
            .map(|&s| self.metro.sim.node_ref::<TreeStub>(s).redials)
            .collect()
    }

    /// Live session count on the chaos edge (cohort + uplink).
    pub fn edge_sessions(&self) -> usize {
        self.metro
            .sim
            .node_ref::<RelayNode>(self.chaos_edge)
            .session_count()
    }

    /// State-size estimate of the chaos edge (the high-water gate).
    pub fn edge_state(&self) -> usize {
        self.metro
            .sim
            .node_ref::<RelayNode>(self.chaos_edge)
            .state_size_estimate()
    }
}

/// The planet-scale federation world: the [`MetroWorld`] topology grown
/// to dozens of regions and ~100k resident stubs
/// ([`PlanetScenario::planet`]), with Zipf-popular track demand (ranks
/// from [`Toplist`]) and diurnal join/leave waves of transient stubs.
///
/// ```text
///                         auth (origin)
///              /      /       |                \
///        core[0] ── core[1] ── … full mesh … core[23]     (1 shard each)
///         /   \                                 /   \
///     edge[0] edge[24] …                  edge[23] edge[47] …
///        |       |                            |
///     521 stubs each, slice by Zipf quantile  + wave cohorts that
///     (slice 0 = head ranks = most stubs)       join and leave
/// ```
///
/// Built through [`SimHandle`], so the same world runs single-threaded
/// (CI baseline) or sharded one-region-per-worker ([`ParSim`]) with a
/// bit-identical event history.
pub struct PlanetWorld {
    /// The simulator (single-threaded or sharded — see [`SimHandle`]).
    pub sim: SimHandle,
    /// Tier/parent/peer bookkeeping from the builder.
    pub topo: Topology,
    /// The scenario this world was built from.
    pub spec: PlanetScenario,
    /// Origin (authoritative) server node.
    pub auth: NodeId,
    /// Core relay nodes (shard `i` lives on `cores[i]`, serving region `i`).
    pub cores: Vec<NodeId>,
    /// Edge relay nodes (edge `j` serves region `j % cores`).
    pub edges: Vec<NodeId>,
    /// Resident stub nodes (stub `j` hangs off edge `j % edge_count` and
    /// subscribes to slice `spec.slice_of_stub(j)`).
    pub stubs: Vec<NodeId>,
    /// The questions, one per track (rank order: index 0 = rank 1).
    pub questions: Vec<Question>,
    /// Track record names (first label from the toplist, rank order).
    pub track_names: Vec<Name>,
    zone_apex: Name,
    /// Wave cohorts added so far (for unique naming/seeding).
    waves_added: usize,
}

impl PlanetWorld {
    /// Builds the planet world from `spec` and settles it. Single-
    /// threaded — the CI-baseline path.
    pub fn build(spec: &PlanetScenario, seed: u64) -> PlanetWorld {
        Self::build_with_workers(spec, seed, 0)
    }

    /// Builds the same world on `workers` parallel shards (`0` =
    /// single-threaded). Sharding is by region, as in
    /// [`MetroWorld::build_with_workers`]: only the inter-region links
    /// cross shards and the lookahead bound is `spec.peer_delay`.
    pub fn build_with_workers(spec: &PlanetScenario, seed: u64, workers: usize) -> PlanetWorld {
        let workers = workers.min(spec.cores.max(1));
        let mut sim = SimHandle::new(seed, workers);
        let w = sim.workers();
        sim.set_default_link(LinkConfig::with_delay(spec.link_delay));

        // Track names and popularity come from the synthetic toplist:
        // track `i` is toplist rank `i + 1`, hosted under one zone apex
        // (first label kept, e.g. `site00001.planet.example`).
        let toplist = Toplist::generate(spec.tracks, seed);
        assert_eq!(
            toplist.zipf_exponent(),
            spec.zipf_s,
            "spec popularity must match the toplist's Zipf exponent"
        );
        let zone_apex: Name = "planet.example".parse().unwrap();
        let track_names: Vec<Name> = toplist
            .domains()
            .iter()
            .map(|d| {
                let label = d.name.to_string();
                let first = label.split('.').next().expect("non-empty name");
                format!("{first}.planet.example").parse().unwrap()
            })
            .collect();
        let mut zone = Zone::with_default_soa(zone_apex.clone());
        for (i, name) in track_names.iter().enumerate() {
            zone.add_record(Record::new(
                name.clone(),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
            ));
        }
        let questions: Vec<Question> = track_names
            .iter()
            .map(|n| Question::new(n.clone(), RecordType::A))
            .collect();

        // Node creation is dense and tier-ordered: auth = 0, cores =
        // 1..=K (asserted below), so peer addresses are known up front.
        let k = spec.cores;
        let core_id = |s: usize| NodeId::from_index(1 + s);
        let intra = LinkConfig::with_delay(spec.link_delay);
        let inter = LinkConfig::with_delay(spec.peer_delay);
        let ec = spec.edge_count();
        let qs = questions.clone();
        let sp = *spec;
        // Region → shard: core `s` and everything under it on `s % w`
        // (edge `j` serves region `j % k`; stub `j` hangs off edge
        // `j % ec` — the builder's round-robin parent assignment).
        let topo = TopoBuilder::new()
            .tier("auth", 1, 0, inter)
            .tier("core", k, 1, inter)
            .tier("edge", ec, 1, intra)
            .tier("stub", spec.stub_count(), 1, intra)
            .peer_full_mesh("core", inter)
            .build(&mut sim, move |sim, ctx| match ctx.tier_name {
                "auth" => sim.add_node(
                    0,
                    ctx.name.clone(),
                    Box::new(AuthServer::new(
                        Authority::single(zone.clone()),
                        TransportConfig::default()
                            .idle_timeout(Duration::from_secs(3600))
                            .keep_alive(Duration::from_secs(60)),
                        11,
                    )),
                ),
                "core" => {
                    let parent = Addr::new(ctx.parents[0], MOQT_PORT);
                    let peers: Vec<Addr> = (0..k)
                        .filter(|&s| s != ctx.index)
                        .map(|s| Addr::new(core_id(s), MOQT_PORT))
                        .collect();
                    sim.add_node(
                        ctx.index % w,
                        ctx.name.clone(),
                        Box::new(
                            RelayNode::new(parent, 0, 40 + ctx.index as u64)
                                .peers(peers, ctx.index)
                                .tier("core"),
                        ),
                    )
                }
                "edge" => {
                    let parent = Addr::new(ctx.parents[0], MOQT_PORT);
                    sim.add_node(
                        (ctx.index % k) % w,
                        ctx.name.clone(),
                        Box::new(RelayNode::new(parent, 0, 60 + ctx.index as u64).tier("edge")),
                    )
                }
                _ => {
                    let slice = sp.slice_of_stub(ctx.index);
                    let slice_qs: Vec<Question> =
                        sp.slice_tracks(slice).map(|t| qs[t].clone()).collect();
                    sim.add_node(
                        ((ctx.index % ec) % k) % w,
                        ctx.name.clone(),
                        Box::new(TreeStub::new(
                            Addr::new(ctx.parents[0], MOQT_PORT),
                            slice_qs,
                            100 + ctx.index as u64,
                        )),
                    )
                }
            });

        let auth = topo.tier_named("auth")[0];
        let cores = topo.tier_named("core").to_vec();
        for (s, &c) in cores.iter().enumerate() {
            assert_eq!(c, core_id(s), "dense tier-ordered node ids");
        }
        let edges = topo.tier_named("edge").to_vec();
        let stubs = topo.tier_named("stub").to_vec();
        let mut world = PlanetWorld {
            sim,
            topo,
            spec: *spec,
            auth,
            cores,
            edges,
            stubs,
            questions,
            track_names,
            zone_apex,
            waves_added: 0,
        };
        world
            .sim
            .run_until(world.sim.now() + Duration::from_secs(10));
        world
    }

    /// The home core (hash shard) of track `i`.
    pub fn home_core(&self, i: usize) -> usize {
        let track = track_from_question(&self.questions[i], RequestFlags::iterative()).unwrap();
        (track_hash(&track) % self.spec.cores as u64) as usize
    }

    /// Replaces track `i`'s A record at the origin.
    pub fn update_track(&mut self, i: usize, new_octet: u8) {
        let name = self.track_names[i].clone();
        let apex = self.zone_apex.clone();
        self.sim.with_node::<AuthServer, _>(self.auth, |a, ctx| {
            a.update_zone(ctx, |authority| {
                if let Some(z) = authority.find_zone_mut(&apex) {
                    z.set_records(
                        &name,
                        RecordType::A,
                        vec![Record::new(
                            name.clone(),
                            60,
                            RData::A(Ipv4Addr::new(198, 51, 100, new_octet)),
                        )],
                    );
                }
            });
        });
    }

    /// Pushes one round of updates (every track once) and settles.
    pub fn update_round(&mut self, octet_base: u8) {
        for i in 0..self.spec.tracks {
            self.update_track(i, octet_base.wrapping_add(i as u8));
        }
        let deadline = self.sim.now() + self.spec.update_interval;
        self.sim.run_until(deadline);
    }

    /// A diurnal wave dawns: [`PlanetScenario::wave_stubs_per_edge`]
    /// transient stubs join under *every* edge, each subscribing its
    /// Zipf-popular slice ([`PlanetScenario::wave_slice_of`]). Returns
    /// the cohort (run the sim to let their joins settle).
    pub fn add_wave(&mut self) -> Vec<NodeId> {
        let wave = self.waves_added;
        self.waves_added += 1;
        let intra = LinkConfig::with_delay(self.spec.link_delay);
        let workers = self.sim.workers();
        let mut cohort = Vec::new();
        for (e, &edge) in self.edges.clone().iter().enumerate() {
            let shard = self.spec.region_of_edge(e) % workers;
            for i in 0..self.spec.wave_stubs_per_edge {
                let slice = self.spec.wave_slice_of(i);
                let slice_qs: Vec<Question> = self
                    .spec
                    .slice_tracks(slice)
                    .map(|t| self.questions[t].clone())
                    .collect();
                let s = self.sim.add_node(
                    shard,
                    format!("wave{wave}-e{e}-{i}"),
                    Box::new(TreeStub::new(
                        Addr::new(edge, MOQT_PORT),
                        slice_qs,
                        500_000 + ((wave * self.edges.len() + e) * 1024 + i) as u64,
                    )),
                );
                self.sim.set_link(s, edge, intra);
                cohort.push(s);
            }
        }
        cohort
    }

    /// The wave's dusk: every cohort stub goes offline (connections
    /// close; the edges tear their sessions down).
    pub fn leave_wave(&mut self, cohort: &[NodeId]) {
        for &s in cohort {
            self.sim.with_node::<TreeStub, _>(s, |stub, ctx| {
                stub.leave(ctx);
            });
        }
    }

    /// Total pushed updates received across the resident stubs.
    pub fn delivered_updates(&self) -> u64 {
        self.stubs
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).updates)
            .sum()
    }

    /// Joining fetches answered across the resident stubs.
    pub fn fetched_total(&self) -> u64 {
        self.stubs
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).fetched)
            .sum()
    }

    /// Total pushed updates received across an arbitrary stub cohort.
    pub fn cohort_updates(&self, cohort: &[NodeId]) -> u64 {
        cohort
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).updates)
            .sum()
    }

    /// Joining fetches answered across an arbitrary stub cohort.
    pub fn cohort_fetched(&self, cohort: &[NodeId]) -> u64 {
        cohort
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).fetched)
            .sum()
    }

    /// Upstream fetches opened by the whole edge tier so far (monotone).
    pub fn edge_fetch_sum(&self) -> u64 {
        self.edges
            .iter()
            .map(|&e| self.sim.node_ref::<RelayNode>(e).stats().upstream_fetches)
            .sum()
    }

    /// Live sessions across the whole edge tier (downstream + uplinks) —
    /// the state the diurnal drill requires waves to give back.
    pub fn edge_session_sum(&self) -> usize {
        self.edges
            .iter()
            .map(|&e| self.sim.node_ref::<RelayNode>(e).session_count())
            .sum()
    }

    /// Per-tier relay stats (core first, then edge).
    pub fn tier_stats(&self) -> Vec<TierRelayStats> {
        let mut out = Vec::new();
        for (label, ids) in [("core", &self.cores), ("edge", &self.edges)] {
            let mut tier = TierRelayStats::new(label);
            for &id in ids {
                let r = self.sim.node_ref::<RelayNode>(id);
                tier.accumulate(r.stats(), r.upstream_subscription_count());
            }
            out.push(tier);
        }
        out
    }
}

/// Which attacker hangs off the first edge relay of an
/// [`AdversarialWorld`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Garbage control bytes, bogus-alias datagrams, duplicate request
    /// ids — the state machine must poison + close, counting violations.
    Byzantine,
    /// Subscribes to everything, then never drains — the backlog bound
    /// must evict the session.
    SlowLoris,
    /// Stampedes cold tracks with standalone fetches — the per-session
    /// fetch budget must throttle, then evict.
    FetchBomb,
}

impl AttackKind {
    /// Stable label for tables and gate metric names.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::Byzantine => "byzantine",
            AttackKind::SlowLoris => "slow_loris",
            AttackKind::FetchBomb => "fetch_bomb",
        }
    }
}

/// The hardening-drill world (built from an [`AdversarialScenario`]):
/// origin → core relay → edge relays → honest [`TreeStub`]s, plus ONE
/// attacker of the chosen [`AttackKind`] connected to the first edge.
/// Edge relays run with the scenario's tightened [`RelayLimits`] and
/// session-backlog bound; the honest population must not notice.
pub struct AdversarialWorld {
    /// The simulator.
    pub sim: Simulator,
    /// Tier/parent bookkeeping from the builder.
    pub topo: Topology,
    /// Authoritative origin node.
    pub auth: NodeId,
    /// The single core relay.
    pub core: NodeId,
    /// Edge relays (the attacker targets the first).
    pub edges: Vec<NodeId>,
    /// Honest stub subscribers.
    pub stubs: Vec<NodeId>,
    /// The attacker node.
    pub attacker: NodeId,
    /// Which attack the attacker runs.
    pub attack: AttackKind,
    /// The questions (one per track) every honest stub subscribes to.
    pub questions: Vec<Question>,
    zone_apex: Name,
}

impl AdversarialWorld {
    /// Record name for track `i`.
    pub fn record_name(i: usize) -> Name {
        format!("r{i}.adv.example").parse().unwrap()
    }

    /// Builds the world, settles the honest tree, then connects the
    /// attacker and lets it reach its target.
    pub fn build(spec: &AdversarialScenario, attack: AttackKind, seed: u64) -> AdversarialWorld {
        let mut sim = Simulator::new(seed);
        sim.set_default_link(LinkConfig::with_delay(spec.link_delay));

        let zone_apex: Name = "adv.example".parse().unwrap();
        let mut zone = Zone::with_default_soa(zone_apex.clone());
        for i in 0..spec.tracks {
            zone.add_record(Record::new(
                Self::record_name(i),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
            ));
        }
        let questions: Vec<Question> = (0..spec.tracks)
            .map(|i| Question::new(Self::record_name(i), RecordType::A))
            .collect();

        let limits = RelayLimits {
            max_outstanding_fetches_per_session: spec.max_outstanding_fetches,
            evict_after_throttles: spec.evict_after_throttles,
        };
        let backlog = spec.session_backlog;
        let qs = questions.clone();
        let link = LinkConfig::with_delay(spec.link_delay);
        let topo = TopoBuilder::new()
            .tier("auth", 1, 0, link)
            .tier("core", 1, 1, link)
            .tier("edge", spec.edges, 1, link)
            .tier("stub", spec.stub_count(), 1, link)
            .build(&mut sim, move |sim, ctx| match ctx.tier_name {
                "auth" => sim.add_node(
                    ctx.name.clone(),
                    Box::new(AuthServer::new(
                        Authority::single(zone.clone()),
                        TransportConfig::default()
                            .idle_timeout(Duration::from_secs(3600))
                            .keep_alive(Duration::from_secs(25)),
                        11,
                    )),
                ),
                "core" => sim.add_node(
                    ctx.name.clone(),
                    Box::new(
                        RelayNode::new(Addr::new(ctx.parents[0], MOQT_PORT), 0, 40).tier("core"),
                    ),
                ),
                "edge" => sim.add_node(
                    ctx.name.clone(),
                    Box::new(
                        RelayNode::new(
                            Addr::new(ctx.parents[0], MOQT_PORT),
                            0,
                            60 + ctx.index as u64,
                        )
                        .tier("edge")
                        .limits(limits)
                        .session_backlog(backlog),
                    ),
                ),
                _ => sim.add_node(
                    ctx.name.clone(),
                    Box::new(TreeStub::new(
                        Addr::new(ctx.parents[0], MOQT_PORT),
                        qs.clone(),
                        100 + ctx.index as u64,
                    )),
                ),
            });

        let auth = topo.tier_named("auth")[0];
        let core = topo.tier_named("core")[0];
        let edges = topo.tier_named("edge").to_vec();
        let stubs = topo.tier_named("stub").to_vec();

        // Settle the honest tree before the attacker shows up, so the
        // baseline subscriptions are in place.
        sim.run_until(sim.now() + Duration::from_secs(5));

        let target = Addr::new(edges[0], MOQT_PORT);
        let attacker_node: Box<dyn Node> = match attack {
            AttackKind::Byzantine => {
                Box::new(ByzantineNode::new(target, spec.attack_interval, 900))
            }
            AttackKind::SlowLoris => Box::new(SlowLorisNode::new(target, questions.clone(), 900)),
            AttackKind::FetchBomb => Box::new(FetchBombNode::new(
                target,
                spec.attack_interval,
                spec.fetch_burst,
                900,
            )),
        };
        let attacker = sim.add_node(format!("attacker-{}", attack.label()), attacker_node);
        sim.run_until(sim.now() + Duration::from_secs(1));

        AdversarialWorld {
            sim,
            topo,
            auth,
            core,
            edges,
            stubs,
            attacker,
            attack,
            questions,
            zone_apex,
        }
    }

    /// Replaces track `i`'s A record, triggering a push through the tree.
    pub fn update_track(&mut self, i: usize, new_octet: u8) {
        let name = Self::record_name(i);
        let apex = self.zone_apex.clone();
        self.sim.with_node::<AuthServer, _>(self.auth, |a, ctx| {
            a.update_zone(ctx, |authority| {
                if let Some(z) = authority.find_zone_mut(&apex) {
                    z.set_records(
                        &name,
                        RecordType::A,
                        vec![Record::new(
                            name.clone(),
                            60,
                            RData::A(Ipv4Addr::new(198, 51, 100, new_octet)),
                        )],
                    );
                }
            });
        });
    }

    /// One update round: bumps every track once, then lets it propagate.
    pub fn update_round(&mut self, octet_base: u8) {
        for i in 0..self.questions.len() {
            self.update_track(i, octet_base.wrapping_add(i as u8));
        }
    }

    /// Total pushed updates received across the HONEST stubs.
    pub fn delivered_updates(&self) -> u64 {
        self.stubs
            .iter()
            .map(|&s| self.sim.node_ref::<TreeStub>(s).updates)
            .sum()
    }

    /// Folded counters of the attacked edge relay.
    pub fn target_edge_stats(&self) -> moqdns_moqt::relay::RelayStats {
        self.sim.node_ref::<RelayNode>(self.edges[0]).stats()
    }

    /// Live session + connection state held by the attacked edge.
    pub fn target_edge_state_size(&self) -> usize {
        self.sim
            .node_ref::<RelayNode>(self.edges[0])
            .state_size_estimate()
    }

    /// Live sessions on the attacked edge.
    pub fn target_edge_sessions(&self) -> usize {
        self.sim
            .node_ref::<RelayNode>(self.edges[0])
            .session_count()
    }

    /// Per-tier relay stats (core first, then edge).
    pub fn tier_stats(&self) -> Vec<TierRelayStats> {
        let mut out = Vec::new();
        let core_ids = vec![self.core];
        for (label, ids) in [("core", &core_ids), ("edge", &self.edges)] {
            let mut tier = TierRelayStats::new(label);
            for &id in ids {
                let r = self.sim.node_ref::<RelayNode>(id);
                tier.accumulate(r.stats(), r.upstream_subscription_count());
            }
            out.push(tier);
        }
        out
    }
}
