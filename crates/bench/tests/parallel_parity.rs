//! Parallel-simulation parity: the sharded ([`ParSim`]-backed) builds of
//! the standing multi-region worlds must be *indistinguishable* from the
//! single-threaded CI-baseline builds — identical delivery digests and
//! identical gate metrics — for 1, 2, and N workers.
//!
//! This is the end-to-end check of the conservative-lookahead contract
//! (`moqdns_netsim::par`): within a shard execution order is exactly the
//! single-threaded order, and cross-shard datagrams carry sender-composed
//! scheduler keys, so the merged event history is the same history the
//! global scheduler would have produced.

use moqdns_bench::worlds::{ChaosWorld, FederationWorld, MetroWorld, PlanetWorld, SimHandle};
use moqdns_workload::scenarios::{
    ChaosScenario, FederationScenario, MetroScenario, PlanetScenario,
};

/// Everything we compare between a single-threaded and a sharded run.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    delivered_updates: u64,
    fetched_or_cores: u64,
    total_datagrams: u64,
    total_bytes: u64,
    digest: u64,
    now_nanos: u64,
}

fn run_federation(workers: usize) -> Observed {
    let spec = FederationScenario::federation().smoke();
    let mut w = FederationWorld::build_with_workers(&spec, 7, workers);
    // The digest is enabled post-settle in every variant, so it covers
    // the same (dynamic) phase of the run: three update rounds plus an
    // origin kill and a late joiner.
    w.sim.enable_delivery_digest();
    w.update_round(10);
    w.update_round(20);
    w.kill_origin();
    let (_, _) = w.add_late_edge(1, 2);
    w.update_round(30);
    Observed {
        delivered_updates: w.delivered_updates(),
        fetched_or_cores: w.delivered_into_cores(),
        total_datagrams: w.sim.stats().total_datagrams(),
        total_bytes: w.sim.stats().total_bytes(),
        digest: w.sim.delivery_digest(),
        now_nanos: w.sim.now().as_nanos(),
    }
}

fn run_metro(workers: usize) -> Observed {
    let spec = MetroScenario::metro().smoke();
    let mut w = MetroWorld::build_with_workers(&spec, 7, workers);
    w.sim.enable_delivery_digest();
    w.update_round(10);
    w.update_round(20);
    Observed {
        delivered_updates: w.delivered_updates(),
        fetched_or_cores: w.fetched_total(),
        total_datagrams: w.sim.stats().total_datagrams(),
        total_bytes: w.sim.stats().total_bytes(),
        digest: w.sim.delivery_digest(),
        now_nanos: w.sim.now().as_nanos(),
    }
}

#[test]
fn federation_parallel_matches_single() {
    let single = run_federation(0);
    assert!(single.delivered_updates > 0, "world must actually deliver");
    assert!(single.digest != 0, "digest must cover the dynamic phase");
    for workers in [1, 2, 3] {
        let par = run_federation(workers);
        assert_eq!(single, par, "federation diverged at W={workers}");
    }
}

#[test]
fn metro_parallel_matches_single() {
    let single = run_metro(0);
    assert!(single.delivered_updates > 0, "world must actually deliver");
    assert!(single.digest != 0, "digest must cover the dynamic phase");
    for workers in [1, 2, 3] {
        let par = run_metro(workers);
        assert_eq!(single, par, "metro diverged at W={workers}");
    }
}

/// The full four-phase chaos drill (clean round, uplink flap, region
/// partition, edge crash/restart) with an *active fault plan* — the
/// end-to-end pin that faults applied at barriers plus per-link loss
/// draws keep the sharded event history bit-identical.
fn run_chaos(workers: usize) -> (Observed, u64, u64) {
    let spec = ChaosScenario::chaos().smoke();
    let mut w = ChaosWorld::build_with_workers(&spec, 7, workers);
    w.metro.sim.enable_delivery_digest();
    w.metro.update_round(10);
    w.flap_drill(30);
    w.partition_drill(50);
    w.crash_drill(70, 90);
    let obs = Observed {
        delivered_updates: w.metro.delivered_updates() + w.chaos_delivered(),
        fetched_or_cores: w.metro.fetched_total() + w.chaos_fetched(),
        total_datagrams: w.metro.sim.stats().total_datagrams(),
        total_bytes: w.metro.sim.stats().total_bytes(),
        digest: w.metro.sim.delivery_digest(),
        now_nanos: w.metro.sim.now().as_nanos(),
    };
    (obs, w.chaos_redials().iter().sum(), w.total_regressions())
}

#[test]
fn chaos_drill_parallel_matches_single() {
    let single = run_chaos(0);
    assert!(
        single.0.delivered_updates > 0,
        "world must actually deliver"
    );
    assert!(single.1 > 0, "the crash drill must force redials");
    assert_eq!(single.2, 0, "no duplicate delivery under faults");
    for workers in [1, 2, 3] {
        let par = run_chaos(workers);
        assert_eq!(single, par, "chaos drill diverged at W={workers}");
    }
}

fn run_planet(workers: usize) -> Observed {
    let spec = PlanetScenario::planet().smoke();
    let mut w = PlanetWorld::build_with_workers(&spec, 7, workers);
    w.sim.enable_delivery_digest();
    // One resident round, then a full diurnal wave (dawn → midday round
    // → dusk) — the wave path adds nodes and closes connections mid-run,
    // which must also be bit-identical under sharding.
    w.update_round(10);
    let cohort = w.add_wave();
    w.sim.run_until(w.sim.now() + spec.update_interval * 2);
    w.update_round(20);
    w.leave_wave(&cohort);
    w.sim.run_until(w.sim.now() + spec.update_interval);
    w.update_round(30);
    Observed {
        delivered_updates: w.delivered_updates() + w.cohort_updates(&cohort),
        fetched_or_cores: w.fetched_total() + w.cohort_fetched(&cohort),
        total_datagrams: w.sim.stats().total_datagrams(),
        total_bytes: w.sim.stats().total_bytes(),
        digest: w.sim.delivery_digest(),
        now_nanos: w.sim.now().as_nanos(),
    }
}

#[test]
fn planet_parallel_matches_single() {
    let single = run_planet(0);
    assert!(single.delivered_updates > 0, "world must actually deliver");
    assert!(single.digest != 0, "digest must cover the dynamic phase");
    for workers in [1, 4] {
        let par = run_planet(workers);
        assert_eq!(single, par, "planet diverged at W={workers}");
    }
}

#[test]
fn worker_count_is_clamped_to_regions() {
    // Requesting more shards than regions must not leave empty shards
    // (an empty shard would register no cross-shard link and poison the
    // lookahead bound) — the builder clamps to the region count.
    let spec = FederationScenario::federation().smoke();
    let w = FederationWorld::build_with_workers(&spec, 7, 64);
    assert_eq!(w.sim.workers(), spec.cores);
    match &w.sim {
        SimHandle::Par(p) => assert_eq!(p.workers(), spec.cores),
        SimHandle::Single(_) => panic!("expected the sharded variant"),
    }
}
