//! Offline shim for the subset of the `criterion` API this workspace
//! uses: [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::sample_size`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology: each benchmark warms up for ~200 ms, then runs batches
//! sized to ~50 ms until ~1 s of samples accumulate; the reported figure
//! is the median batch mean with min/max spread. Results print as
//!
//! ```text
//! bench <name> ... median <t> ns/iter (min <t>, max <t>[, <rate>/s])
//! ```
//!
//! and, when `CRITERION_JSON` names a file, are appended there as JSON
//! lines (`{"name":...,"median_ns":...}`) for scripted comparison.

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// The timing loop handed to `bench_function` closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Bencher {
        Bencher {
            warmup,
            measure,
            samples: Vec::new(),
        }
    }

    /// Times `f`, storing per-iteration nanosecond samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: discover a batch size that runs ~50 ms, JIT caches hot.
        let mut batch: u64 = 1;
        let warm_end = Instant::now() + self.warmup;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let dt = t0.elapsed();
            if Instant::now() >= warm_end {
                if dt < Duration::from_millis(40) && batch < 1 << 40 {
                    let scale = (Duration::from_millis(50).as_nanos() as f64
                        / dt.as_nanos().max(1) as f64)
                        .clamp(1.0, 1024.0);
                    batch = ((batch as f64) * scale) as u64;
                    batch = batch.max(1);
                }
                break;
            }
            if dt < Duration::from_millis(40) && batch < 1 << 40 {
                batch *= 2;
            }
        }
        // Measurement batches.
        let end = Instant::now() + self.measure;
        while Instant::now() < end || self.samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let dt = t0.elapsed();
            self.samples.push(dt.as_nanos() as f64 / batch as f64);
        }
    }
}

fn report(name: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mibs = n as f64 / (median / 1e9) / (1024.0 * 1024.0);
            format!(", {mibs:.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (median / 1e9);
            format!(", {eps:.0} elem/s")
        }
        None => String::new(),
    };
    println!("bench {name} ... median {median:.1} ns/iter (min {min:.1}, max {max:.1}{rate})");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1}}}"
            );
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` passes a substring filter; other
        // harness flags (--bench, --exact, ...) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(1000),
            filter,
        }
    }
}

impl Criterion {
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.selected(name) {
            let mut b = Bencher::new(self.warmup, self.measure);
            f(&mut b);
            report(name, &mut b.samples, None);
        }
        self
    }

    /// Opens a named group (throughput/sample-size annotations).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group (named `<group>/<id>`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.selected(&full) {
            let mut b = Bencher::new(self.criterion.warmup, self.criterion.measure);
            f(&mut b);
            report(&full, &mut b.samples, self.throughput);
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            filter: None,
        };
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_filtering() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(10),
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("skipped/one", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran, "filter must skip non-matching benchmarks");
    }
}
