//! Offline shim for the `parking_lot` lock API subset this workspace
//! uses: [`Mutex`]/[`RwLock`] whose `lock`/`read`/`write` return guards
//! directly (no poison `Result`). Built on `std::sync`; a poisoned lock
//! (a panic while held) is recovered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

use std::sync;

/// A mutual-exclusion lock returning its guard without a poison Result.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock returning guards without poison Results.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, the value stays reachable.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
