//! Offline shim for the subset of the `proptest` API this workspace uses:
//!
//! * the [`proptest!`] macro wrapping `#[test]` fns whose arguments are
//!   drawn from strategies (`arg in strategy`);
//! * [`prelude::any`] for integers and bools;
//! * [`collection::vec`] for vectors with a size range;
//! * integer range strategies (`0u16..70`, `0u64..=MAX`);
//! * string strategies from a regex subset (char classes, groups,
//!   `{m,n}`/`{m}`/`*`/`+`/`?` quantifiers, `\`-escapes, `|` alternation);
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! generated inputs and panics. Case count is fixed at
//! [`CASES`] per property, seeded deterministically per test name, so
//! failures reproduce.

use std::ops::{Range, RangeInclusive};

pub mod strategy;

pub use strategy::Strategy;

/// Number of cases each property runs. Override with the
/// `PROPTEST_CASES` environment variable.
pub const CASES: u32 = 128;

/// Deterministic per-test RNG handed to strategies.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Creates an RNG seeded from the test's name so each property gets a
    /// distinct but reproducible stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        use rand::SeedableRng;
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi.wrapping_sub(lo);
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }
}

/// Effective case count (reads `PROPTEST_CASES` once per call; cheap).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CASES)
}

/// `proptest::collection` — collection strategies.
pub mod collection {
    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property, reporting the expression text.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn` runs [`CASES`] times with arguments
/// drawn from the given strategies; a failing case prints its inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    let __report = format!(
                        concat!("[", stringify!($name), " case {}]", $(" ", stringify!($arg), " = {:?}"),+),
                        __case, $(&$arg),+
                    );
                    let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        move || { $body }
                    ));
                    if let Err(e) = __outcome {
                        eprintln!("proptest failure: {__report}");
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )+
    };
}

// Re-exported so the macro can call ranges/regex generically.
impl<T: strategy::UniformInt> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "empty range strategy");
        T::from_u64(rng.between(lo, hi - 1))
    }
}

impl<T: strategy::UniformInt> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "empty range strategy");
        T::from_u64(rng.between(lo, hi))
    }
}
