//! Strategies: value generators driven by a [`TestRng`].

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Blanket impl so strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Integers a range strategy can produce (lossless through u64).
pub trait UniformInt: Copy {
    /// Widens to u64.
    fn to_u64(self) -> u64;
    /// Narrows from u64 (caller guarantees range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Types with a whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

// Tuples of strategies generate tuples of values, element-wise in order.
macro_rules! impl_tuple_strategy {
    ($($s:ident => $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A => a);
impl_tuple_strategy!(A => a, B => b);
impl_tuple_strategy!(A => a, B => b, C => c);
impl_tuple_strategy!(A => a, B => b, C => c, D => d);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection length bounds, inclusive on both ends.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Vector strategy from [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.between(self.size.min as u64, self.size.max as u64) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// String literals are regex strategies (subset: literals, `\`-escapes,
/// `[...]` classes with ranges, `(...)` groups, `|` alternation, and
/// `{m}`/`{m,n}`/`*`/`+`/`?` quantifiers).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = parse_seq(&mut Lexer::new(self), false);
        let mut out = String::new();
        gen_node(&ast, rng, &mut out);
        out
    }
}

enum Node {
    /// Ordered parts, generated in sequence.
    Seq(Vec<Node>),
    /// One branch chosen uniformly.
    Alt(Vec<Node>),
    /// A literal character.
    Char(char),
    /// One character from the set.
    Class(Vec<char>),
    /// Inner node repeated between min and max times.
    Repeat(Box<Node>, u32, u32),
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
}

impl Lexer {
    fn new(s: &str) -> Lexer {
        Lexer {
            chars: s.chars().collect(),
            pos: 0,
        }
    }
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }
    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }
    fn expect(&mut self, c: char) {
        match self.next() {
            Some(got) if got == c => {}
            other => panic!("regex strategy: expected {c:?}, got {other:?}"),
        }
    }
}

/// Parses a sequence (stops at `)` when `in_group`, or at `|`/end).
fn parse_seq(lx: &mut Lexer, in_group: bool) -> Node {
    let mut branches = Vec::new();
    let mut parts = Vec::new();
    loop {
        match lx.peek() {
            None => break,
            Some(')') if in_group => break,
            Some('|') => {
                lx.next();
                branches.push(Node::Seq(std::mem::take(&mut parts)));
                continue;
            }
            _ => {}
        }
        let base = parse_base(lx);
        let node = match lx.peek() {
            Some('{') => {
                let (m, n) = parse_counts(lx);
                Node::Repeat(Box::new(base), m, n)
            }
            Some('*') => {
                lx.next();
                Node::Repeat(Box::new(base), 0, 8)
            }
            Some('+') => {
                lx.next();
                Node::Repeat(Box::new(base), 1, 8)
            }
            Some('?') => {
                lx.next();
                Node::Repeat(Box::new(base), 0, 1)
            }
            _ => base,
        };
        parts.push(node);
    }
    let tail = Node::Seq(parts);
    if branches.is_empty() {
        tail
    } else {
        branches.push(tail);
        Node::Alt(branches)
    }
}

fn parse_base(lx: &mut Lexer) -> Node {
    match lx.next() {
        Some('(') => {
            let inner = parse_seq(lx, true);
            lx.expect(')');
            inner
        }
        Some('[') => {
            let mut set = Vec::new();
            loop {
                match lx.next() {
                    Some(']') => break,
                    Some('\\') => set.push(lx.next().expect("regex strategy: dangling escape")),
                    Some(a) => {
                        if lx.peek() == Some('-')
                            && lx.chars.get(lx.pos + 1).is_some_and(|&c| c != ']')
                        {
                            lx.next(); // '-'
                            let b = lx.next().unwrap();
                            for c in a..=b {
                                set.push(c);
                            }
                        } else {
                            set.push(a);
                        }
                    }
                    None => panic!("regex strategy: unterminated class"),
                }
            }
            assert!(!set.is_empty(), "regex strategy: empty class");
            Node::Class(set)
        }
        Some('\\') => Node::Char(lx.next().expect("regex strategy: dangling escape")),
        Some('.') => Node::Class(('a'..='z').chain('0'..='9').collect()),
        Some(c) => Node::Char(c),
        None => panic!("regex strategy: empty pattern atom"),
    }
}

fn parse_counts(lx: &mut Lexer) -> (u32, u32) {
    lx.expect('{');
    let mut first = String::new();
    let mut second = None::<String>;
    loop {
        match lx.next() {
            Some('}') => break,
            Some(',') => second = Some(String::new()),
            Some(d) if d.is_ascii_digit() => match &mut second {
                Some(s) => s.push(d),
                None => first.push(d),
            },
            other => panic!("regex strategy: bad repetition {other:?}"),
        }
    }
    let m: u32 = first.parse().expect("regex strategy: repetition min");
    let n = match second {
        None => m,
        Some(s) if s.is_empty() => m + 8,
        Some(s) => s.parse().expect("regex strategy: repetition max"),
    };
    assert!(m <= n, "regex strategy: inverted repetition");
    (m, n)
}

fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(parts) => {
            for p in parts {
                gen_node(p, rng, out);
            }
        }
        Node::Alt(branches) => {
            let i = rng.below(branches.len() as u64) as usize;
            gen_node(&branches[i], rng, out);
        }
        Node::Char(c) => out.push(*c),
        Node::Class(set) => {
            let i = rng.below(set.len() as u64) as usize;
            out.push(set[i]);
        }
        Node::Repeat(inner, m, n) => {
            let k = rng.between(*m as u64, *n as u64);
            for _ in 0..k {
                gen_node(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn any_and_ranges() {
        let mut r = rng();
        for _ in 0..1000 {
            let v: u16 = (0u16..70).generate(&mut r);
            assert!(v < 70);
            let w: u64 = (0u64..=5).generate(&mut r);
            assert!(w <= 5);
            let _: bool = any::<bool>().generate(&mut r);
        }
    }

    #[test]
    fn vec_sizes_in_range() {
        let mut r = rng();
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..500 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn regex_domain_shape() {
        let mut r = rng();
        let pat = "[a-z0-9]{1,12}(\\.[a-z0-9]{1,12}){0,4}";
        for _ in 0..500 {
            let s = pat.generate(&mut r);
            for label in s.split('.') {
                assert!(!label.is_empty() && label.len() <= 12, "{s:?}");
                assert!(
                    label
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()),
                    "{s:?}"
                );
            }
            assert!(s.split('.').count() <= 5, "{s:?}");
        }
    }

    #[test]
    fn regex_literal_suffix() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{1,10}\\.com".generate(&mut r);
            assert!(s.ends_with(".com"), "{s:?}");
        }
    }

    #[test]
    fn regex_alternation_and_quantifiers() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "(ab|cd)+x?".generate(&mut r);
            assert!(s.starts_with("ab") || s.starts_with("cd"), "{s:?}");
        }
    }
}
