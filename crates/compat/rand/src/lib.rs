//! Offline shim for the subset of the `rand` 0.9 API used by this
//! workspace: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`] and [`Rng::random_range`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic,
//! fast, and statistically solid for simulation workloads. This is **not**
//! a cryptographic RNG; nothing in the workspace needs one (transaction-id
//! randomization in the simulator is about collision avoidance, not
//! security). Swap for the real crate when a registry is reachable.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing sampling interface (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type for integers, `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform integer draw in `[0, bound)` by 128-bit multiply (Lemire-style
/// without the rejection step; bias is ≤ 2⁻⁶⁴ · bound, irrelevant here).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, per Vigna's reference seeding advice.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** (public domain, Blackman & Vigna).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(5u64..=5);
            assert_eq!(y, 5);
            let z = r.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&z));
        }
    }

    #[test]
    fn covers_full_inclusive_u64_range() {
        let mut r = StdRng::seed_from_u64(3);
        // Must not overflow on span == u64::MAX.
        let _ = r.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.random_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "{buckets:?}");
        }
    }
}
