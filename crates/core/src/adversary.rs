//! Adversarial drill nodes (ISSUE 6 hardening fleet).
//!
//! Three deliberately hostile [`Node`] implementations that attack a relay
//! from the *outside*, through the same QUIC+MoQT stack honest nodes use:
//!
//! - [`ByzantineNode`] — speaks just enough MoQT to handshake, then feeds
//!   the relay garbage control bytes, object datagrams with bogus track
//!   aliases, and duplicate request ids. The relay must poison the session
//!   (counting a violation) and close it; the byzantine node reconnects and
//!   starts over.
//! - [`SlowLorisNode`] — subscribes to every track, then blackholes: it
//!   stops processing (or acking) anything the relay sends. The relay's
//!   per-session send state grows with every pushed update until the
//!   backlog bound evicts the session.
//! - [`FetchBombNode`] — stampedes the relay with standalone FETCHes for
//!   distinct cold tracks, blowing through the per-session fetch budget.
//!   The relay must throttle (REQUEST_BLOCKED-style rejection) and finally
//!   evict the session.
//!
//! All three are deterministic: attack cadence comes from sim timers, not
//! RNG, so the adversarial scenario's counters are baseline-able in CI.
//! None of them touch relay internals — every attack travels the wire.

use crate::stack::{MoqtStack, StackEvent};
use moqdns_dns::message::Question;
use moqdns_moqt::data::{Object, ObjectDatagram};
use moqdns_moqt::message::{ControlMessage, FilterType};
use moqdns_moqt::track::FullTrackName;
use moqdns_netsim::{Addr, Ctx, Node, Payload};
use moqdns_quic::{ConnHandle, TransportConfig};
use std::any::Any;
use std::time::Duration;

/// Timer token the drill nodes use for their attack cadence (distinct from
/// [`crate::stack::TOKEN_QUIC`], which is routed into the stack).
pub const TOKEN_ATTACK: u64 = (1 << 56) + 1;

fn adversary_transport() -> TransportConfig {
    TransportConfig::default()
        .idle_timeout(Duration::from_secs(3600))
        .keep_alive(Duration::from_secs(25))
}

/// Builds the track an adversary targets from a DNS question, the same way
/// honest stubs do, so hostile requests traverse identical relay code.
fn track_for(q: &Question) -> FullTrackName {
    crate::mapping::track_from_question(q, crate::mapping::RequestFlags::iterative())
        .expect("adversary question maps to a track")
}

// ---------------------------------------------------------------------
// Byzantine
// ---------------------------------------------------------------------

/// A protocol liar: handshakes honestly, then cycles through three attacks
/// per tick — garbage control bytes, bogus-alias datagrams, and duplicate
/// request ids. Reconnects whenever the relay (correctly) closes it.
pub struct ByzantineNode {
    stack: MoqtStack,
    target: Addr,
    interval: Duration,
    conn: Option<ConnHandle>,
    tick: u64,
    /// Garbage control-byte bursts injected.
    pub garbage_bursts: u64,
    /// Datagrams sent with a track alias the relay never granted.
    pub bogus_datagrams: u64,
    /// Duplicate-request-id SUBSCRIBEs injected.
    pub duplicate_requests: u64,
    /// Times the relay closed our session (poisoned it).
    pub closed_by_peer: u64,
    /// Reconnect attempts after a close.
    pub reconnects: u64,
}

impl ByzantineNode {
    /// A byzantine client attacking `target` every `interval`.
    pub fn new(target: Addr, interval: Duration, seed: u64) -> ByzantineNode {
        ByzantineNode {
            stack: MoqtStack::client(adversary_transport(), seed),
            target,
            interval,
            conn: None,
            tick: 0,
            garbage_bursts: 0,
            bogus_datagrams: 0,
            duplicate_requests: 0,
            closed_by_peer: 0,
            reconnects: 0,
        }
    }

    fn handle(&mut self, evs: Vec<StackEvent>) {
        for ev in evs {
            if let StackEvent::Closed(h) = ev {
                if self.conn == Some(h) {
                    self.conn = None;
                    self.closed_by_peer += 1;
                }
            }
        }
    }

    fn attack(&mut self, ctx: &mut Ctx<'_>) {
        let Some(h) = self.conn else {
            self.conn = self.stack.connect(ctx.now(), self.target, false);
            self.reconnects += 1;
            let evs = self.stack.flush(ctx);
            self.handle(evs);
            return;
        };
        let ready = self.stack.session(h).is_some_and(|s| s.is_ready());
        if ready {
            let step = self.tick % 3;
            self.tick += 1;
            let (sess, conn) = self.stack.session_conn(h).expect("live session");
            match step {
                0 => {
                    // A complete frame (type 0x3f, 4-byte body) carrying a
                    // message type that does not exist: the relay must
                    // poison, never resynchronize. The frame is complete on
                    // arrival so the decoder cannot sidestep it by waiting
                    // for more bytes.
                    let mut junk = vec![0x3f, 0x04];
                    junk.extend_from_slice(&[0xaa; 4]);
                    sess.inject_raw_control(conn, &junk);
                    self.garbage_bursts += 1;
                }
                1 => {
                    // An object on a track alias no SUBSCRIBE established.
                    // Unauthenticated noise: dropped and counted, not fatal.
                    let dg = ObjectDatagram {
                        track_alias: 0xbadd,
                        object: Object {
                            group_id: self.tick,
                            object_id: 0,
                            payload: b"forged".to_vec().into(),
                        },
                    };
                    let _ = conn.send_datagram(dg.encode());
                    self.bogus_datagrams += 1;
                }
                _ => {
                    // The same request id twice: a well-formed lie the
                    // state machine must catch as a violation.
                    let q = Question::new(
                        "dup.adv.example".parse().expect("name"),
                        moqdns_dns::rr::RecordType::A,
                    );
                    let sub = ControlMessage::Subscribe {
                        request_id: 2,
                        track_alias: 2,
                        track: track_for(&q),
                        filter: FilterType::LatestObject,
                    };
                    let mut bytes = sub.encode();
                    bytes.extend(sub.encode());
                    sess.inject_raw_control(conn, &bytes);
                    self.duplicate_requests += 1;
                }
            }
        }
        let evs = self.stack.flush(ctx);
        self.handle(evs);
    }
}

impl Node for ByzantineNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = self.stack.connect(ctx.now(), self.target, false);
        let evs = self.stack.flush(ctx);
        self.handle(evs);
        ctx.set_timer(self.interval, TOKEN_ATTACK);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, data: Payload) {
        let evs = self.stack.on_datagram(ctx, from, &data);
        self.handle(evs);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_ATTACK {
            self.attack(ctx);
            ctx.set_timer(self.interval, TOKEN_ATTACK);
        } else {
            let evs = self.stack.on_timer(ctx);
            self.handle(evs);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Slow loris
// ---------------------------------------------------------------------

/// A subscriber that never drains: it subscribes to every track, then goes
/// silent — incoming datagrams are swallowed without reaching the QUIC
/// stack, so nothing is ever acknowledged. The relay's per-session send
/// state grows with each pushed update until the backlog bound evicts it.
pub struct SlowLorisNode {
    stack: MoqtStack,
    target: Addr,
    questions: Vec<Question>,
    interval: Duration,
    conn: Option<ConnHandle>,
    subscribed: bool,
    /// True once the node has gone silent.
    pub blackholed: bool,
    /// Subscriptions opened before going silent.
    pub subs_sent: u64,
    /// Datagrams swallowed after going silent.
    pub swallowed: u64,
}

impl SlowLorisNode {
    /// A slow-loris subscriber of `questions` attacking `target`.
    pub fn new(target: Addr, questions: Vec<Question>, seed: u64) -> SlowLorisNode {
        SlowLorisNode {
            stack: MoqtStack::client(adversary_transport(), seed),
            target,
            questions,
            interval: Duration::from_millis(200),
            conn: None,
            subscribed: false,
            blackholed: false,
            subs_sent: 0,
            swallowed: 0,
        }
    }
}

impl Node for SlowLorisNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = self.stack.connect(ctx.now(), self.target, false);
        let _ = self.stack.flush(ctx);
        ctx.set_timer(self.interval, TOKEN_ATTACK);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, data: Payload) {
        if self.blackholed {
            self.swallowed += 1;
            return;
        }
        let _ = self.stack.on_datagram(ctx, from, &data);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.blackholed {
            return;
        }
        if token == TOKEN_ATTACK {
            let ready = self
                .conn
                .and_then(|h| self.stack.session(h))
                .is_some_and(|s| s.is_ready());
            if !self.subscribed && ready {
                let h = self.conn.expect("conn present when ready");
                let questions = self.questions.clone();
                let (sess, conn) = self.stack.session_conn(h).expect("live session");
                for q in &questions {
                    sess.subscribe(conn, track_for(q));
                    self.subs_sent += 1;
                }
                self.subscribed = true;
                let _ = self.stack.flush(ctx);
                // The SUBSCRIBEs are on the wire; from here on, silence.
                self.blackholed = true;
            } else {
                ctx.set_timer(self.interval, TOKEN_ATTACK);
            }
        } else {
            let _ = self.stack.on_timer(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Fetch bomb
// ---------------------------------------------------------------------

/// A cold-track stampeder: every tick it fires a burst of standalone
/// FETCHes, each for a track nobody publishes, so none can be answered
/// from cache and every one would otherwise become upstream work. The
/// relay's per-session budget must throttle, then evict it; it reconnects
/// and resumes.
pub struct FetchBombNode {
    stack: MoqtStack,
    target: Addr,
    interval: Duration,
    burst: u32,
    conn: Option<ConnHandle>,
    serial: u64,
    /// FETCH requests issued.
    pub fetches_sent: u64,
    /// FETCHes the relay rejected.
    pub fetches_rejected: u64,
    /// Times the relay evicted (closed) our session.
    pub closed_by_peer: u64,
    /// Reconnect attempts after an eviction.
    pub reconnects: u64,
}

impl FetchBombNode {
    /// A fetch-bomber sending `burst` cold fetches every `interval` at
    /// `target`.
    pub fn new(target: Addr, interval: Duration, burst: u32, seed: u64) -> FetchBombNode {
        FetchBombNode {
            stack: MoqtStack::client(adversary_transport(), seed),
            target,
            interval,
            burst,
            conn: None,
            serial: 0,
            fetches_sent: 0,
            fetches_rejected: 0,
            closed_by_peer: 0,
            reconnects: 0,
        }
    }

    fn handle(&mut self, evs: Vec<StackEvent>) {
        for ev in evs {
            if let StackEvent::Closed(h) = ev {
                if self.conn == Some(h) {
                    self.conn = None;
                    self.closed_by_peer += 1;
                }
            }
        }
    }

    fn attack(&mut self, ctx: &mut Ctx<'_>) {
        let Some(h) = self.conn else {
            self.conn = self.stack.connect(ctx.now(), self.target, false);
            self.reconnects += 1;
            let evs = self.stack.flush(ctx);
            self.handle(evs);
            return;
        };
        let ready = self.stack.session(h).is_some_and(|s| s.is_ready());
        if ready {
            let burst = self.burst;
            let (sess, conn) = self.stack.session_conn(h).expect("live session");
            for _ in 0..burst {
                let q = Question::new(
                    format!("b{}.bomb.example", self.serial)
                        .parse()
                        .expect("name"),
                    moqdns_dns::rr::RecordType::A,
                );
                sess.fetch(conn, track_for(&q), 0, 0);
                self.serial += 1;
                self.fetches_sent += 1;
            }
        }
        let evs = self.stack.flush(ctx);
        self.handle(evs);
    }
}

impl Node for FetchBombNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = self.stack.connect(ctx.now(), self.target, false);
        let evs = self.stack.flush(ctx);
        self.handle(evs);
        ctx.set_timer(self.interval, TOKEN_ATTACK);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, data: Payload) {
        let evs = self.stack.on_datagram(ctx, from, &data);
        // Count rejections out of the event stream.
        for ev in &evs {
            if let StackEvent::Session(
                _,
                moqdns_moqt::session::SessionEvent::FetchRejected { .. },
            ) = ev
            {
                self.fetches_rejected += 1;
            }
        }
        self.handle(evs);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_ATTACK {
            self.attack(ctx);
            ctx.set_timer(self.interval, TOKEN_ATTACK);
        } else {
            let evs = self.stack.on_timer(ctx);
            self.handle(evs);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}
