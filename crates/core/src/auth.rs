//! The MoQT-enabled authoritative nameserver (paper §4.2, §5).
//!
//! Serves its zones over classic DNS-on-UDP *and* DNS-over-MoQT:
//!
//! * SUBSCRIBE for a question in one of its zones is accepted with
//!   `largest = (zone version, 0)`;
//! * a joining FETCH (offset 1) is answered with the current response
//!   wrapped in an object whose group id is the zone version (Fig 4);
//! * whenever a zone changes, the server regenerates the answer for every
//!   subscribed track and pushes the new version to every subscriber whose
//!   answer actually changed — "an update is sent to all subscribers who
//!   are subscribed to a track that includes the updated record in its
//!   answer message" (§4.2).

use crate::mapping::{
    object_from_response, question_from_track, track_from_question, RequestFlags,
};
use crate::stack::{MoqtStack, StackEvent, TOKEN_QUIC};
use crate::{DNS_PORT, MOQT_PORT};
use moqdns_dns::message::Question;
use moqdns_dns::server::Authority;
use moqdns_dns::transport::serve_datagram;
use moqdns_moqt::data::Object;
use moqdns_moqt::session::{IncomingFetchKind, SessionEvent};
use moqdns_moqt::track::FullTrackName;
use moqdns_netsim::{Addr, Ctx, Node};
use moqdns_quic::{ConnHandle, TransportConfig};
use moqdns_wire::Payload;
use std::any::Any;
use std::collections::BTreeMap;

/// Counters exposed to experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuthStats {
    /// Classic UDP queries answered.
    pub classic_queries: u64,
    /// MoQT subscriptions accepted.
    pub subscriptions_accepted: u64,
    /// MoQT subscriptions rejected.
    pub subscriptions_rejected: u64,
    /// Joining/standalone fetches served.
    pub fetches_served: u64,
    /// Update objects pushed to subscribers.
    pub updates_pushed: u64,
}

/// One live peer subscription.
struct SubEntry {
    question: Question,
    /// Last object payload pushed/advertised (suppresses no-op pushes).
    /// A shared handle: comparing against the current object is a pointer
    /// check when nothing changed since the last push.
    last_payload: Payload,
}

/// Authoritative nameserver node: zones + classic UDP + MoQT publisher.
pub struct AuthServer {
    authority: Authority,
    stack: MoqtStack,
    /// Push updates as unreliable datagrams instead of streams (ablation
    /// A2 only; the paper's design always uses streams, §4.1).
    use_datagrams: bool,
    /// (connection, peer request id) -> subscription entry.
    subs: BTreeMap<(ConnHandle, u64), SubEntry>,
    /// Taken down mid-run: ignore all further traffic.
    dead: bool,
    /// Counters.
    pub stats: AuthStats,
}

impl AuthServer {
    /// Creates a server for `authority`'s zones.
    pub fn new(authority: Authority, transport: TransportConfig, seed: u64) -> AuthServer {
        AuthServer {
            authority,
            stack: MoqtStack::server(transport, seed),
            use_datagrams: false,
            subs: BTreeMap::new(),
            dead: false,
            stats: AuthStats::default(),
        }
    }

    /// Ablation A2: push updates as unreliable datagrams (RFC 9221)
    /// instead of streams. Loss then silently drops updates — exactly the
    /// failure mode §4.1 avoids by using streams.
    pub fn set_use_datagrams(&mut self, on: bool) {
        self.use_datagrams = on;
    }

    /// Read access to the zones.
    pub fn authority(&self) -> &Authority {
        &self.authority
    }

    /// Number of live peer subscriptions (state overhead, §5.1).
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// Estimated MoQT/QUIC state bytes (E9).
    pub fn state_size_estimate(&self) -> usize {
        self.stack.state_size_estimate()
            + self
                .subs
                .values()
                .map(|s| 64 + s.last_payload.len())
                .sum::<usize>()
    }

    /// Takes the origin out of service: closes every connection (peers
    /// see a CONNECTION_CLOSE, not an idle timeout) and drops all
    /// subscription state. Used by the federation drill to prove
    /// already-published tracks keep flowing core-to-core after the
    /// origin dies.
    pub fn shutdown(&mut self, ctx: &mut Ctx<'_>) {
        self.stack.close_all(ctx, 0x0, "origin shutdown");
        self.subs.clear();
        self.dead = true;
    }

    /// Whether [`AuthServer::shutdown`] was called.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Applies a zone mutation and pushes resulting updates to subscribers
    /// (§4.2). Call through `Simulator::with_node`.
    pub fn update_zone(&mut self, ctx: &mut Ctx<'_>, f: impl FnOnce(&mut Authority)) {
        f(&mut self.authority);
        self.push_updates(ctx);
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
    }

    fn push_updates(&mut self, ctx: &mut Ctx<'_>) {
        let keys: Vec<(ConnHandle, u64)> = self.subs.keys().copied().collect();
        // §4.2 fan-out, encoded once per track: subscribers to the same
        // question share one object whose payload is cloned by reference,
        // so push cost is O(1) in subscriber count for bytes copied.
        let mut current: BTreeMap<Question, Option<Object>> = BTreeMap::new();
        for (h, req) in keys {
            let question = self.subs.get(&(h, req)).unwrap().question.clone();
            let object = current
                .entry(question)
                .or_insert_with_key(|q| self.current_object(q).map(|(o, _)| o));
            let Some(object) = object else { continue };
            let changed = self.subs.get(&(h, req)).unwrap().last_payload != object.payload;
            if changed {
                let use_dg = self.use_datagrams;
                if let Some((session, conn)) = self.stack.session_conn(h) {
                    let sent = if use_dg {
                        session.publish_datagram(conn, req, object.clone())
                    } else {
                        session.publish(conn, req, object.clone())
                    };
                    if sent {
                        self.stats.updates_pushed += 1;
                        self.subs.get_mut(&(h, req)).unwrap().last_payload = object.payload.clone();
                    }
                }
            }
        }
        let _ = self.stack.flush(ctx);
    }

    fn current_object(&self, question: &Question) -> Option<(moqdns_moqt::data::Object, u64)> {
        let version = self.authority.zone_version_for(&question.qname)?;
        let response = self.authority.answer_question(question);
        Some((object_from_response(&response, version), version))
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<StackEvent>) {
        let mut follow_up = Vec::new();
        for ev in events {
            match ev {
                StackEvent::Session(h, SessionEvent::IncomingSubscribe { request_id, track }) => {
                    self.on_subscribe(h, request_id, &track);
                }
                StackEvent::Session(h, SessionEvent::IncomingFetch { request_id, kind }) => {
                    self.on_fetch(h, request_id, kind);
                }
                StackEvent::Session(h, SessionEvent::PeerUnsubscribed { request_id }) => {
                    self.subs.remove(&(h, request_id));
                }
                StackEvent::Closed(h) => {
                    self.subs.retain(|(hh, _), _| *hh != h);
                }
                _ => {}
            }
        }
        let evs = self.stack.flush(ctx);
        if !evs.is_empty() {
            follow_up.extend(evs);
        }
        if !follow_up.is_empty() {
            self.handle_events(ctx, follow_up);
        }
    }

    fn on_subscribe(&mut self, h: ConnHandle, request_id: u64, track: &FullTrackName) {
        let parsed = question_from_track(track);
        let Ok((question, _flags)) = parsed else {
            if let Some((session, conn)) = self.stack.session_conn(h) {
                session.reject_subscribe(conn, request_id, 0x1, "malformed dns track");
            }
            self.stats.subscriptions_rejected += 1;
            return;
        };
        match self.current_object(&question) {
            Some((object, version)) => {
                if let Some((session, conn)) = self.stack.session_conn(h) {
                    session.accept_subscribe(conn, request_id, Some((version, 0)));
                }
                self.stats.subscriptions_accepted += 1;
                self.subs.insert(
                    (h, request_id),
                    SubEntry {
                        question,
                        last_payload: object.payload,
                    },
                );
            }
            None => {
                if let Some((session, conn)) = self.stack.session_conn(h) {
                    session.reject_subscribe(conn, request_id, 0x4, "not authoritative");
                }
                self.stats.subscriptions_rejected += 1;
            }
        }
    }

    fn on_fetch(&mut self, h: ConnHandle, request_id: u64, kind: IncomingFetchKind) {
        let track = match &kind {
            IncomingFetchKind::StandAlone { track, .. } => track.clone(),
            IncomingFetchKind::Joining { track, .. } => track.clone(),
            // A federation fetch that escalated all the way to the origin
            // is served like any standalone fetch (the hop budget only
            // constrains core-to-core forwards).
            IncomingFetchKind::Peer { track, .. } => track.clone(),
        };
        let Ok((question, _)) = question_from_track(&track) else {
            if let Some((session, conn)) = self.stack.session_conn(h) {
                session.reject_fetch(conn, request_id, 0x1, "malformed dns track");
            }
            return;
        };
        match self.current_object(&question) {
            Some((object, version)) => {
                if let Some((session, conn)) = self.stack.session_conn(h) {
                    session.respond_fetch(conn, request_id, (version, 0), vec![object]);
                }
                self.stats.fetches_served += 1;
            }
            None => {
                if let Some((session, conn)) = self.stack.session_conn(h) {
                    session.reject_fetch(conn, request_id, 0x4, "not authoritative");
                }
            }
        }
    }
}

impl Node for AuthServer {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Payload) {
        if self.dead {
            return;
        }
        match to_port {
            DNS_PORT => {
                if let Ok(reply) = serve_datagram(&self.authority, &payload) {
                    self.stats.classic_queries += 1;
                    ctx.send(DNS_PORT, from, reply);
                }
            }
            MOQT_PORT => {
                let evs = self.stack.on_datagram(ctx, from, &payload);
                self.handle_events(ctx, evs);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.dead {
            return;
        }
        if token == TOKEN_QUIC {
            let evs = self.stack.on_timer(ctx);
            self.handle_events(ctx, evs);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

/// Convenience: builds the track for a recursive-resolver-style question
/// against this server (iterative flags).
pub fn auth_track(question: &Question) -> FullTrackName {
    track_from_question(question, RequestFlags::iterative()).expect("valid dns track")
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqdns_dns::message::Message;
    use moqdns_dns::name::Name;
    use moqdns_dns::rdata::RData;
    use moqdns_dns::rr::{Record, RecordType};
    use moqdns_dns::zone::Zone;
    use moqdns_netsim::{LinkConfig, SimTime, Simulator};
    use moqdns_quic::TransportConfig;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn zone() -> Zone {
        let mut z = Zone::with_default_soa(n("example.com"));
        z.add_record(Record::new(
            n("www.example.com"),
            30,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        z
    }

    /// Test client node: a MoqtStack that records events.
    struct Client {
        stack: MoqtStack,
        events: Vec<StackEvent>,
    }

    impl Node for Client {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, d: Payload) {
            let evs = self.stack.on_datagram(ctx, from, &d);
            self.events.extend(evs);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            let evs = self.stack.on_timer(ctx);
            self.events.extend(evs);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    fn setup() -> (Simulator, moqdns_netsim::NodeId, moqdns_netsim::NodeId) {
        let mut sim = Simulator::new(5);
        sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(10)));
        let auth = sim.add_node(
            "auth",
            Box::new(AuthServer::new(
                Authority::single(zone()),
                TransportConfig::default(),
                1,
            )),
        );
        let client = sim.add_node(
            "client",
            Box::new(Client {
                stack: MoqtStack::client(TransportConfig::default(), 2),
                events: Vec::new(),
            }),
        );
        sim.run_until_idle();
        (sim, auth, client)
    }

    #[test]
    fn classic_udp_still_served() {
        let (mut sim, auth, client) = setup();
        let q = Message::query(7, Question::new(n("www.example.com"), RecordType::A));
        sim.with_node::<Client, _>(client, |_, ctx| {
            ctx.send(5353, Addr::new(auth, DNS_PORT), q.encode());
        });
        sim.run_until_idle();
        // The reply came back to the client node (datagram recorded by sim).
        let delivered = sim.stats().between(auth, client);
        assert_eq!(delivered.delivered, 1);
        let served = sim.node_ref::<AuthServer>(auth).stats.classic_queries;
        assert_eq!(served, 1);
    }

    #[test]
    fn lookup_via_subscribe_and_joining_fetch() {
        let (mut sim, auth, client) = setup();
        let question = Question::new(n("www.example.com"), RecordType::A);
        let track = auth_track(&question);

        let h = sim.with_node::<Client, _>(client, |c, ctx| {
            let h = c
                .stack
                .connect(ctx.now(), Addr::new(auth, MOQT_PORT), false)
                .expect("connect");
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
            h
        });
        sim.run_until(SimTime::from_millis(200));
        sim.with_node::<Client, _>(client, |c, ctx| {
            let (sess, conn) = c.stack.session_conn(h).unwrap();
            sess.subscribe_with_joining_fetch(conn, track.clone(), 1);
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
        });
        sim.run_until(SimTime::from_millis(500));

        let client_ref = sim.node_ref::<Client>(client);
        // SUBSCRIBE_OK with the current zone version.
        let accepted = client_ref.events.iter().find_map(|e| match e {
            StackEvent::Session(_, SessionEvent::SubscribeAccepted { largest, .. }) => *largest,
            _ => None,
        });
        let zone_version = sim.node_ref::<AuthServer>(auth).authority().zones()[0].version();
        assert_eq!(accepted, Some((zone_version, 0)));
        // Fetch returned the current record.
        let fetched = client_ref.events.iter().find_map(|e| match e {
            StackEvent::Session(_, SessionEvent::FetchObjects { objects, .. }) => {
                Some(objects.clone())
            }
            _ => None,
        });
        let objects = fetched.expect("joining fetch answered");
        assert_eq!(objects.len(), 1);
        assert_eq!(objects[0].group_id, zone_version);
        let resp = crate::mapping::response_from_object(&objects[0]).unwrap();
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
    }

    #[test]
    fn zone_update_pushes_to_subscriber() {
        let (mut sim, auth, client) = setup();
        let question = Question::new(n("www.example.com"), RecordType::A);
        let track = auth_track(&question);

        let h = sim.with_node::<Client, _>(client, |c, ctx| {
            let h = c
                .stack
                .connect(ctx.now(), Addr::new(auth, MOQT_PORT), false)
                .expect("connect");
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
            h
        });
        sim.run_until(SimTime::from_millis(200));
        sim.with_node::<Client, _>(client, |c, ctx| {
            let (sess, conn) = c.stack.session_conn(h).unwrap();
            sess.subscribe_with_joining_fetch(conn, track.clone(), 1);
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
        });
        sim.run_until(SimTime::from_millis(500));

        // Update the record at the authoritative server.
        sim.with_node::<AuthServer, _>(auth, |a, ctx| {
            a.update_zone(ctx, |auth| {
                auth.find_zone_mut(&n("www.example.com"))
                    .unwrap()
                    .set_records(
                        &n("www.example.com"),
                        RecordType::A,
                        vec![Record::new(
                            n("www.example.com"),
                            30,
                            RData::A(Ipv4Addr::new(192, 0, 2, 99)),
                        )],
                    );
            });
        });
        sim.run_until(SimTime::from_millis(1000));

        let client_ref = sim.node_ref::<Client>(client);
        let pushed = client_ref.events.iter().find_map(|e| match e {
            StackEvent::Session(_, SessionEvent::SubscriptionObject { object, .. }) => {
                Some(object.clone())
            }
            _ => None,
        });
        let object = pushed.expect("update pushed");
        let resp = crate::mapping::response_from_object(&object).unwrap();
        assert_eq!(
            resp.answers[0].rdata,
            RData::A(Ipv4Addr::new(192, 0, 2, 99))
        );
        assert_eq!(sim.node_ref::<AuthServer>(auth).stats.updates_pushed, 1);
    }

    #[test]
    fn unrelated_zone_update_not_pushed() {
        let (mut sim, auth, client) = setup();
        let question = Question::new(n("www.example.com"), RecordType::A);
        let track = auth_track(&question);
        let h = sim.with_node::<Client, _>(client, |c, ctx| {
            let h = c
                .stack
                .connect(ctx.now(), Addr::new(auth, MOQT_PORT), false)
                .expect("connect");
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
            h
        });
        sim.run_until(SimTime::from_millis(200));
        sim.with_node::<Client, _>(client, |c, ctx| {
            let (sess, conn) = c.stack.session_conn(h).unwrap();
            sess.subscribe_with_joining_fetch(conn, track, 1);
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
        });
        sim.run_until(SimTime::from_millis(500));

        // Change a *different* name: subscriber's answer is unchanged, so
        // nothing must be pushed even though the zone version bumped.
        sim.with_node::<AuthServer, _>(auth, |a, ctx| {
            a.update_zone(ctx, |auth| {
                auth.find_zone_mut(&n("example.com"))
                    .unwrap()
                    .add_record(Record::new(
                        n("other.example.com"),
                        30,
                        RData::A(Ipv4Addr::new(192, 0, 2, 50)),
                    ));
            });
        });
        sim.run_until(SimTime::from_millis(1000));
        assert_eq!(sim.node_ref::<AuthServer>(auth).stats.updates_pushed, 0);
    }

    #[test]
    fn subscribe_out_of_zone_rejected() {
        let (mut sim, auth, client) = setup();
        let question = Question::new(n("www.other.org"), RecordType::A);
        let track = auth_track(&question);
        let h = sim.with_node::<Client, _>(client, |c, ctx| {
            let h = c
                .stack
                .connect(ctx.now(), Addr::new(auth, MOQT_PORT), false)
                .expect("connect");
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
            h
        });
        sim.run_until(SimTime::from_millis(200));
        sim.with_node::<Client, _>(client, |c, ctx| {
            let (sess, conn) = c.stack.session_conn(h).unwrap();
            sess.subscribe(conn, track);
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
        });
        sim.run_until(SimTime::from_millis(500));
        let rejected = sim.node_ref::<Client>(client).events.iter().any(|e| {
            matches!(
                e,
                StackEvent::Session(_, SessionEvent::SubscribeRejected { .. })
            )
        });
        assert!(rejected);
        assert_eq!(
            sim.node_ref::<AuthServer>(auth)
                .stats
                .subscriptions_rejected,
            1
        );
    }

    #[test]
    fn disconnect_cleans_subscriptions() {
        let (mut sim, auth, client) = setup();
        let question = Question::new(n("www.example.com"), RecordType::A);
        let track = auth_track(&question);
        let h = sim.with_node::<Client, _>(client, |c, ctx| {
            let h = c
                .stack
                .connect(ctx.now(), Addr::new(auth, MOQT_PORT), false)
                .expect("connect");
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
            h
        });
        sim.run_until(SimTime::from_millis(200));
        let sub_id = sim.with_node::<Client, _>(client, |c, ctx| {
            let (sess, conn) = c.stack.session_conn(h).unwrap();
            let id = sess.subscribe(conn, track);
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
            id
        });
        sim.run_until(SimTime::from_millis(500));
        assert_eq!(sim.node_ref::<AuthServer>(auth).subscription_count(), 1);

        sim.with_node::<Client, _>(client, |c, ctx| {
            let (sess, conn) = c.stack.session_conn(h).unwrap();
            sess.unsubscribe(conn, sub_id);
            let evs = c.stack.flush(ctx);
            c.events.extend(evs);
        });
        sim.run_until(SimTime::from_millis(800));
        assert_eq!(sim.node_ref::<AuthServer>(auth).subscription_count(), 0);
    }
}
