//! The forwarder (paper §5).
//!
//! "The forwarder only forwards DNS requests to recursive resolvers using
//! MoQT. … the forwarder can provide DNS over MoQT functionality directly
//! at the client when being operated on the same device, thereby also
//! enabling backwards compatibility with traditional DNS stub resolvers."
//!
//! Front: classic DNS-over-UDP on port 53. Back: DNS-over-MoQT to the
//! recursive resolver, with subscriptions retained so repeated queries for
//! the same name are answered locally from pushed state.
//!
//! Header-flag handling (RFC 1035 §4.1.1): the client's OPCODE, RD and CD
//! bits are propagated into the upstream track (they are part of the Fig 3
//! namespace byte, so queries differing in RD land on different tracks),
//! and responses echo the client's RD with RA set — the forwarder's
//! upstream is a recursive resolver, so recursion *is* available.

use crate::mapping::{response_from_object, track_from_question, RequestFlags};
use crate::metrics::{AnswerSource, LookupSample, Metrics, UpdateSample};
use crate::stack::{MoqtStack, StackEvent, TOKEN_QUIC};
use crate::{DNS_PORT, MOQT_PORT};
use moqdns_dns::message::Opcode;
use moqdns_dns::message::{Message, Question, Rcode};
use moqdns_moqt::session::SessionEvent;
use moqdns_netsim::{Addr, Ctx, Node, Payload, SimTime};
use moqdns_quic::{ConnHandle, TransportConfig};
use std::any::Any;
use std::collections::BTreeMap;
use std::time::Duration;

/// A classic client waiting for an answer.
struct ClientWaiter {
    from: Addr,
    query_id: u16,
    started: SimTime,
}

/// Key of forwarder-side track state: the question plus the header flags
/// that participate in the Fig 3 mapping.
type TrackKey = (Question, RequestFlags);

/// Per-track forwarder state.
struct TrackState {
    /// Latest pushed/fetched response (id canonicalized to 0).
    latest: Option<Message>,
    /// Latest version (group id).
    version: u64,
    /// Whether a subscription is live for this question.
    live: bool,
    /// Waiters to answer once the first response arrives.
    waiters: Vec<ClientWaiter>,
}

/// The forwarder node.
pub struct Forwarder {
    /// Recursive resolver node address.
    upstream: Addr,
    stack: MoqtStack,
    conn: Option<ConnHandle>,
    /// (question, flags) -> state.
    tracks: BTreeMap<TrackKey, TrackState>,
    /// Our subscribe request id -> track key.
    subs: BTreeMap<u64, TrackKey>,
    /// Our fetch request id -> track key.
    fetches: BTreeMap<u64, TrackKey>,
    /// Lookups queued until the session is ready.
    queued: Vec<TrackKey>,
    /// Raw measurements.
    pub metrics: Metrics,
}

impl Forwarder {
    /// Creates a forwarder using the recursive resolver at `upstream`.
    pub fn new(upstream: Addr, seed: u64) -> Forwarder {
        let transport = TransportConfig::default()
            .idle_timeout(Duration::from_secs(3600))
            .keep_alive(Duration::from_secs(25));
        Forwarder {
            upstream,
            stack: MoqtStack::client(transport, seed),
            conn: None,
            tracks: BTreeMap::new(),
            subs: BTreeMap::new(),
            fetches: BTreeMap::new(),
            queued: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    /// Number of live upstream subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    fn on_classic_query(&mut self, ctx: &mut Ctx<'_>, from: Addr, data: &[u8]) {
        let Ok(query) = Message::decode(data) else {
            return;
        };
        let Some(q) = query.question().cloned() else {
            return;
        };
        // RFC 1035 §4.1.1: propagate the client's OPCODE/RD/CD upstream
        // instead of assuming a recursion-desired QUERY.
        let flags = RequestFlags::from_query(&query);
        if flags.opcode != Opcode::Query {
            // Only QUERY maps onto pub/sub tracks; anything else is
            // NOTIMP rather than silently treated as a standard query.
            let mut resp = Message::response(query);
            resp.header.rcode = Rcode::NotImp;
            ctx.send(DNS_PORT, from, resp.encode());
            return;
        }
        let key = (q, flags);
        let started = ctx.now();

        // Answer from pushed state when we have it (zero upstream traffic).
        if let Some(state) = self.tracks.get(&key) {
            if let Some(latest) = &state.latest {
                let mut resp = latest.clone();
                resp.header.id = query.header.id;
                resp.header.rd = flags.rd;
                resp.header.ra = true;
                ctx.send(DNS_PORT, from, resp.encode());
                self.metrics.lookups.push(LookupSample {
                    question: key.0,
                    started,
                    finished: ctx.now(),
                    source: AnswerSource::Cache,
                    ok: true,
                    version: Some(state.version),
                });
                return;
            }
        }

        // Otherwise subscribe+fetch upstream (or join an in-flight one).
        let state = self.tracks.entry(key.clone()).or_insert(TrackState {
            latest: None,
            version: 0,
            live: false,
            waiters: Vec::new(),
        });
        state.waiters.push(ClientWaiter {
            from,
            query_id: query.header.id,
            started,
        });
        let in_flight = state.live || self.fetches.values().any(|k| *k == key);
        if !in_flight {
            self.subscribe_upstream(ctx, key);
        }
    }

    fn subscribe_upstream(&mut self, ctx: &mut Ctx<'_>, key: TrackKey) {
        // A key already subscribed or already queued must not be issued
        // twice (a queued key could otherwise race a later direct
        // subscribe and double the upstream subscription).
        if self.subs.values().any(|k| *k == key) || self.queued.contains(&key) {
            return;
        }
        if self.conn.is_none() || self.stack.session(self.conn.unwrap()).is_none() {
            self.conn =
                self.stack
                    .connect(ctx.now(), Addr::new(self.upstream.node, MOQT_PORT), true);
        }
        let Some(h) = self.conn else {
            // Connect failed: keep the key queued; the next query retries.
            self.queued.push(key);
            return;
        };
        let track = track_from_question(&key.0, key.1).expect("valid dns track");
        let Some((session, conn)) = self.stack.session_conn(h) else {
            self.queued.push(key);
            return;
        };
        let (sub_id, fetch_id) = session.subscribe_with_joining_fetch(conn, track, 1);
        self.metrics.subscribes_sent += 1;
        self.metrics.fetches_sent += 1;
        self.subs.insert(sub_id, key.clone());
        self.fetches.insert(fetch_id, key);
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
    }

    fn answer_waiters(&mut self, ctx: &mut Ctx<'_>, key: &TrackKey) {
        let Some(state) = self.tracks.get_mut(key) else {
            return;
        };
        let Some(latest) = state.latest.clone() else {
            return;
        };
        let version = state.version;
        let waiters = std::mem::take(&mut state.waiters);
        for w in waiters {
            let mut resp = latest.clone();
            resp.header.id = w.query_id;
            resp.header.rd = key.1.rd;
            resp.header.ra = true;
            ctx.send(DNS_PORT, w.from, resp.encode());
            self.metrics.lookups.push(LookupSample {
                question: key.0.clone(),
                started: w.started,
                finished: ctx.now(),
                source: AnswerSource::Moqt,
                ok: latest.header.rcode == Rcode::NoError,
                version: Some(version),
            });
        }
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<StackEvent>) {
        for ev in events {
            match ev {
                StackEvent::Session(_, SessionEvent::Ready { .. }) => {
                    let queued = std::mem::take(&mut self.queued);
                    for key in queued {
                        self.subscribe_upstream(ctx, key);
                    }
                }
                StackEvent::Session(_, SessionEvent::SubscribeAccepted { request_id, .. }) => {
                    if let Some(key) = self.subs.get(&request_id) {
                        if let Some(state) = self.tracks.get_mut(key) {
                            state.live = true;
                        }
                    }
                }
                StackEvent::Session(_, SessionEvent::SubscribeRejected { request_id, .. }) => {
                    if let Some(key) = self.subs.remove(&request_id) {
                        if let Some(state) = self.tracks.get_mut(&key) {
                            state.live = false;
                        }
                    }
                }
                StackEvent::Session(
                    _,
                    SessionEvent::FetchObjects {
                        request_id,
                        objects,
                    },
                ) => {
                    if let Some(key) = self.fetches.remove(&request_id) {
                        if let Some(object) = objects.first() {
                            if let Ok(msg) = response_from_object(object) {
                                let state = self.tracks.entry(key.clone()).or_insert(TrackState {
                                    latest: None,
                                    version: 0,
                                    live: false,
                                    waiters: Vec::new(),
                                });
                                state.latest = Some(msg);
                                state.version = object.group_id;
                                self.answer_waiters(ctx, &key);
                            }
                        }
                    }
                }
                StackEvent::Session(_, SessionEvent::FetchRejected { request_id, .. }) => {
                    if let Some(key) = self.fetches.remove(&request_id) {
                        // Fail pending waiters with SERVFAIL.
                        if let Some(state) = self.tracks.get_mut(&key) {
                            let waiters = std::mem::take(&mut state.waiters);
                            for w in waiters {
                                let mut resp =
                                    Message::response(Message::query(w.query_id, key.0.clone()));
                                resp.header.rcode = Rcode::ServFail;
                                resp.header.rd = key.1.rd;
                                resp.header.ra = true;
                                ctx.send(DNS_PORT, w.from, resp.encode());
                            }
                        }
                    }
                }
                StackEvent::Session(_, SessionEvent::SubscriptionObject { request_id, object }) => {
                    if let Some(key) = self.subs.get(&request_id).cloned() {
                        if let Ok(msg) = response_from_object(&object) {
                            if let Some(state) = self.tracks.get_mut(&key) {
                                state.latest = Some(msg);
                                state.version = object.group_id;
                            }
                            self.metrics.objects_received += 1;
                            self.metrics.updates.push(UpdateSample {
                                question: key.0,
                                version: object.group_id,
                                received: ctx.now(),
                            });
                        }
                    }
                }
                StackEvent::Session(_, SessionEvent::SubscriptionEnded { request_id, .. }) => {
                    if let Some(key) = self.subs.remove(&request_id) {
                        if let Some(state) = self.tracks.get_mut(&key) {
                            state.live = false;
                        }
                    }
                }
                StackEvent::Closed(_) => {
                    self.conn = None;
                    self.subs.clear();
                    for state in self.tracks.values_mut() {
                        state.live = false;
                    }
                }
                _ => {}
            }
        }
    }
}

impl Node for Forwarder {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Payload) {
        match to_port {
            DNS_PORT => self.on_classic_query(ctx, from, &payload),
            MOQT_PORT => {
                let evs = self.stack.on_datagram(ctx, from, &payload);
                self.handle_events(ctx, evs);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_QUIC {
            let evs = self.stack.on_timer(ctx);
            self.handle_events(ctx, evs);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}
