//! # moqdns-core — DNS over Media-over-QUIC Transport
//!
//! The paper's primary contribution, implemented end to end: a
//! publish-subscribe variant of DNS where resolvers SUBSCRIBE to records
//! and authoritative servers push updates as MoQT objects, with joining
//! FETCH for the initial lookup, happy-eyeballs fallback to classic DNS,
//! and configurable subscription teardown.
//!
//! Components (mirroring the paper's prototype, §5):
//!
//! * [`mapping`] — the DNS↔MoQT mapping of Fig 3 (question → namespace
//!   tuple + track name) and Fig 4 (response → object payload, group id =
//!   zone version, object id = 0);
//! * [`stack`] — shared glue that runs a QUIC endpoint + MoQT sessions
//!   inside a `moqdns-netsim` node;
//! * [`auth`] — an authoritative nameserver speaking classic DNS-over-UDP
//!   *and* DNS-over-MoQT, pushing updates on zone changes (§4.2);
//! * [`recursive`] — a recursive resolver: classic + MoQT downstream,
//!   iterative resolution upstream over classic UDP, MoQT, or a
//!   happy-eyeballs race (§4.5), with cache integration and update
//!   propagation to downstream subscribers;
//! * [`stub`] — a stub resolver client (classic or MoQT) that records
//!   lookup latency and update staleness for the experiments;
//! * [`forwarder`] — the paper's forwarder: a classic DNS front end that
//!   forwards over MoQT (§5: "provides DNS over MoQT functionality
//!   directly at the client … enabling backwards compatibility");
//! * [`relay_node`] — a MoQT relay wired into the simulator, using
//!   `moqdns_moqt::relay::RelayCore` for aggregation + caching (§3), a
//!   `RoutePolicy` for per-track uplink selection (§5.3 relay trees),
//!   and an optional peer federation (cross-region cores serving each
//!   other instead of the origin);
//! * [`links`] — reusable upstream-link management (N parents + M
//!   federated peers, reconnect, subscription replay) for relays and
//!   other multi-homed nodes;
//! * [`teardown`] — subscription clean-up policies (§4.4);
//! * [`metrics`] — staleness/traffic/latency counters the experiments read;
//! * [`adversary`] — hostile drill nodes (byzantine relay client,
//!   slow-loris subscriber, fetch bomber) that exercise the hardening
//!   paths from the wire side.

pub mod adversary;
pub mod auth;
pub mod forwarder;
pub mod links;
pub mod mapping;
pub mod metrics;
pub mod recursive;
pub mod relay_node;
pub mod stack;
pub mod stub;
pub mod teardown;

pub use auth::AuthServer;
pub use forwarder::Forwarder;
pub use links::Links;
pub use mapping::{
    object_from_response, question_from_track, response_from_object, track_from_question,
};
pub use recursive::{RecursiveResolver, UpstreamMode};
pub use relay_node::RelayNode;
pub use stub::{StubMode, StubResolver};
pub use teardown::TeardownPolicy;

/// UDP port for classic DNS in the simulated world.
pub const DNS_PORT: u16 = 53;
/// UDP port for MoQT-over-QUIC in the simulated world.
pub const MOQT_PORT: u16 = 8443;

/// Synthetic IPv4 address for a simulated node (`10.x.y.z` from the node
/// index). Lets the DNS substrate keep using real `IpAddr` glue records.
pub fn node_ip(node: moqdns_netsim::NodeId) -> std::net::Ipv4Addr {
    let i = node.index() as u32;
    std::net::Ipv4Addr::from(0x0A00_0000 | (i & 0x00FF_FFFF))
}

/// Inverse of [`node_ip`].
pub fn ip_node(ip: std::net::Ipv4Addr) -> moqdns_netsim::NodeId {
    let v = u32::from(ip) & 0x00FF_FFFF;
    moqdns_netsim::NodeId::from_index(v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ip_roundtrip() {
        let id = moqdns_netsim::NodeId::from_index(42);
        let ip = node_ip(id);
        assert_eq!(ip, std::net::Ipv4Addr::new(10, 0, 0, 42));
        assert_eq!(ip_node(ip), id);
    }

    #[test]
    fn node_ip_wide_range() {
        let id = moqdns_netsim::NodeId::from_index(0x01_02_03);
        let ip = node_ip(id);
        assert_eq!(ip, std::net::Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(ip_node(ip), id);
    }
}
