//! Upstream link management for relays: N parents **and** M federated
//! peer cores, one [`MoqtStack`] connection each, with reconnect and
//! subscription replay — one dial/queue/replay/reconnect machine for both
//! link classes.
//!
//! [`RelayCore`](moqdns_moqt::relay::RelayCore) decides *which* link a
//! track should ride (its `RoutePolicy` for parents, its federation shard
//! map for peers); this module owns the *how*: dialing the remote,
//! queueing subscriptions until the session is ready, replaying the queue
//! on `Ready`, tracking upstream request ids, and clearing everything
//! when a connection dies so the next subscribe redials. Links are
//! addressed by [`LinkId`] in the core's order — parents first
//! (`0..parent_count`), then peers — so the node-side plumbing never
//! needs to know a link's class except when issuing a budgeted peer
//! fetch. It is deliberately independent of `RelayNode` so any future
//! node that needs several upstreams (multi-homed recursive resolvers,
//! inter-region bridges) can reuse it.

use crate::stack::MoqtStack;
use crate::MOQT_PORT;
use moqdns_moqt::relay::LinkId;
use moqdns_moqt::track::FullTrackName;
use moqdns_netsim::{Addr, Ctx};
use moqdns_quic::ConnHandle;
use std::collections::BTreeMap;

/// State for one upstream link (parent or peer).
#[derive(Debug)]
struct LinkState {
    /// Remote node address (the MoQT port is applied when dialing).
    remote: Addr,
    /// Live (or in-progress) connection to the remote.
    conn: Option<ConnHandle>,
    /// Upstream subscribe request id -> track.
    subs: BTreeMap<u64, FullTrackName>,
    /// track -> upstream subscribe request id (for teardown).
    by_track: BTreeMap<FullTrackName, u64>,
    /// Upstream fetch request id -> (track, requested group range). The
    /// downstream fetches waiting on the result live in `RelayCore`'s
    /// pending-fetch table (one entry per track, with a waiter list), so
    /// this map only recovers the track identity — and the range the
    /// answer covers — when the response arrives.
    fetches: BTreeMap<u64, (FullTrackName, u64, u64)>,
    /// Tracks to subscribe once the session object exists.
    queued: Vec<FullTrackName>,
}

impl LinkState {
    fn new(remote: Addr) -> LinkState {
        LinkState {
            remote,
            conn: None,
            subs: BTreeMap::new(),
            by_track: BTreeMap::new(),
            fetches: BTreeMap::new(),
            queued: Vec::new(),
        }
    }
}

/// Manager for a relay's (or any multi-homed node's) upstream
/// connections: one slot per parent and per federated peer, addressed by
/// [`LinkId`] (parents first, then peers — the same order `RelayCore`
/// uses).
#[derive(Debug)]
pub struct Links {
    links: Vec<LinkState>,
    /// Links `0..parents` are parent uplinks; the rest are peers.
    parents: usize,
    /// Recovery-probe redial attempts (see
    /// [`moqdns_moqt::relay::RelayStats::redials`]). Cumulative: survives
    /// [`Links::reset`] so a revived node's recovery history stays
    /// visible to the drills gating on it.
    redials: u64,
    /// Dial attempts that failed outright at the endpoint layer (see
    /// [`moqdns_moqt::relay::RelayStats::failed_dials`]). Cumulative.
    failed_dials: u64,
}

impl Links {
    /// One parent slot per address, in route-policy index order, with no
    /// peer links (the classic pre-federation shape).
    pub fn new(parents: Vec<Addr>) -> Links {
        let parents_n = parents.len();
        Links {
            links: parents.into_iter().map(LinkState::new).collect(),
            parents: parents_n,
            redials: 0,
            failed_dials: 0,
        }
    }

    /// Appends peer links after the parents, in federation shard order
    /// (self omitted).
    pub fn add_peers(&mut self, peers: Vec<Addr>) {
        assert_eq!(
            self.links.len(),
            self.parents,
            "peers must be added before any reconfiguration"
        );
        self.links.extend(peers.into_iter().map(LinkState::new));
    }

    /// Number of configured links (parents + peers).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when no links are configured.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Number of parent uplinks (links `0..n`).
    pub fn parent_count(&self) -> usize {
        self.parents
    }

    /// Number of federated peer links (links `parent_count()..len()`).
    pub fn peer_count(&self) -> usize {
        self.links.len() - self.parents
    }

    /// Which link (if any) owns connection `h`.
    pub fn classify(&self, h: ConnHandle) -> Option<LinkId> {
        self.links.iter().position(|l| l.conn == Some(h))
    }

    /// Live upstream subscriptions on `id`.
    pub fn sub_count(&self, id: LinkId) -> usize {
        self.links.get(id).map(|l| l.subs.len()).unwrap_or(0)
    }

    /// Live upstream subscriptions across all links (§3 aggregation:
    /// this is the relay's total upstream cost).
    pub fn total_subs(&self) -> usize {
        self.links.iter().map(|l| l.subs.len()).sum()
    }

    /// Live upstream subscriptions riding parent uplinks — the traffic
    /// the origin side of the hierarchy still carries.
    pub fn parent_subs(&self) -> usize {
        self.links[..self.parents]
            .iter()
            .map(|l| l.subs.len())
            .sum()
    }

    /// Live upstream subscriptions riding federated peer links — demand
    /// served region-to-region instead of through the origin.
    pub fn peer_subs(&self) -> usize {
        self.links[self.parents..]
            .iter()
            .map(|l| l.subs.len())
            .sum()
    }

    /// The track an upstream subscription id on `id` belongs to.
    pub fn track_for_sub(&self, id: LinkId, request_id: u64) -> Option<&FullTrackName> {
        self.links.get(id)?.subs.get(&request_id)
    }

    /// Removes and returns the track and requested group range of
    /// upstream fetch `request_id` on link `id`.
    pub fn take_fetch(&mut self, id: LinkId, request_id: u64) -> Option<(FullTrackName, u64, u64)> {
        self.links.get_mut(id)?.fetches.remove(&request_id)
    }

    fn ensure_conn(
        &mut self,
        ctx: &mut Ctx<'_>,
        stack: &mut MoqtStack,
        id: LinkId,
    ) -> Option<ConnHandle> {
        let link = self.links.get_mut(id)?;
        match link.conn {
            Some(h) if stack.session(h).is_some() => Some(h),
            _ => {
                let remote = link.remote;
                match stack.connect(ctx.now(), Addr::new(remote.node, MOQT_PORT), true) {
                    Some(h) => {
                        link.conn = Some(h);
                        Some(h)
                    }
                    None => {
                        self.failed_dials += 1;
                        None
                    }
                }
            }
        }
    }

    /// Subscribes to `track` on link `id`, dialing the remote if needed.
    /// If the session object is not available yet the track is queued and
    /// replayed from [`Links::on_session_ready`].
    pub fn subscribe(
        &mut self,
        ctx: &mut Ctx<'_>,
        stack: &mut MoqtStack,
        id: LinkId,
        track: FullTrackName,
    ) {
        let Some(h) = self.ensure_conn(ctx, stack, id) else {
            if let Some(link) = self.links.get_mut(id) {
                link.queued.push(track);
            }
            return;
        };
        let link = &mut self.links[id];
        if link.by_track.contains_key(&track) {
            return;
        }
        // CLIENT_SETUP may still be in flight; MoQT control messages queue
        // on the stream, so subscribing immediately is safe either way —
        // but we only subscribe once the session object exists.
        let Some((session, conn)) = stack.session_conn(h) else {
            link.queued.push(track);
            return;
        };
        let sub_id = session.subscribe(conn, track.clone());
        link.subs.insert(sub_id, track.clone());
        link.by_track.insert(track, sub_id);
    }

    /// Drops the upstream subscription for `track` on link `id`.
    pub fn unsubscribe(&mut self, stack: &mut MoqtStack, id: LinkId, track: &FullTrackName) {
        let Some(link) = self.links.get_mut(id) else {
            return;
        };
        link.queued.retain(|t| t != track);
        if let Some(sub_id) = link.by_track.remove(track) {
            link.subs.remove(&sub_id);
            if let Some(h) = link.conn {
                if let Some((session, conn)) = stack.session_conn(h) {
                    session.unsubscribe(conn, sub_id);
                }
            }
        }
    }

    /// Issues an upstream fetch for `track` on link `id`. Returns false
    /// when no connection could be established (the caller should fail the
    /// pending fetch, rejecting its waiters).
    pub fn fetch(
        &mut self,
        ctx: &mut Ctx<'_>,
        stack: &mut MoqtStack,
        id: LinkId,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
    ) -> bool {
        let Some(h) = self.ensure_conn(ctx, stack, id) else {
            return false;
        };
        let Some((session, conn)) = stack.session_conn(h) else {
            return false;
        };
        let fid = session.fetch(conn, track.clone(), start_group, end_group);
        self.links[id]
            .fetches
            .insert(fid, (track, start_group, end_group));
        true
    }

    /// Issues a budgeted federation fetch for `track` on peer link `id`
    /// (the wire carries `hop_budget` so the receiving core can bound
    /// further forwards). Returns false when no connection could be
    /// established.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_peer(
        &mut self,
        ctx: &mut Ctx<'_>,
        stack: &mut MoqtStack,
        id: LinkId,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
        hop_budget: u64,
    ) -> bool {
        let Some(h) = self.ensure_conn(ctx, stack, id) else {
            return false;
        };
        let Some((session, conn)) = stack.session_conn(h) else {
            return false;
        };
        let fid = session.fetch_peer(conn, track.clone(), start_group, end_group, hop_budget);
        self.links[id]
            .fetches
            .insert(fid, (track, start_group, end_group));
        true
    }

    /// Dials the remote behind link `id` if no connection attempt is
    /// live, abandoning a stalled previous attempt first. Used by the
    /// owning node's recovery probe: once the dial completes, the session
    /// `Ready` event flows back through `classify` and the core marks the
    /// link healthy (triggering rebalancing) — identically for parents
    /// and peers.
    pub fn redial(&mut self, ctx: &mut Ctx<'_>, stack: &mut MoqtStack, id: LinkId) {
        let Some(link) = self.links.get_mut(id) else {
            return;
        };
        // A previous probe's dial may be stuck retransmitting its
        // handshake into a void (the QUIC PTO backoff is capped at
        // `MAX_PTO_BACKOFF`× base, but under an hour-long idle timeout a
        // stalled dial still probes forever); abandon it so each probe
        // starts a fresh, promptly-answered handshake.
        if let Some(h) = link.conn.take() {
            match stack.session(h) {
                Some(s) if s.is_ready() => {
                    link.conn = Some(h);
                    return;
                }
                Some(_) => stack.abandon(h),
                None => {}
            }
        }
        // Anything issued on the abandoned attempt never reached the
        // remote. Requeue its subscriptions so the fresh dial's `Ready`
        // replays them (via [`Links::on_session_ready`]) — without this a
        // single-uplink relay that resubscribed at close time onto its
        // own stalled dial comes back from an outage permanently deaf.
        // In-flight fetches died with the attempt; their waiters were
        // re-routed or rejected by the core's close handling.
        let stale: Vec<FullTrackName> = link.subs.values().cloned().collect();
        link.subs.clear();
        link.by_track.clear();
        link.fetches.clear();
        link.queued.extend(stale);
        self.redials += 1;
        self.ensure_conn(ctx, stack, id);
    }

    /// Cumulative recovery counters: `(redials, failed_dials)`. These
    /// survive [`Links::reset`] — a revived node keeps its history — so
    /// chaos drills can gate redial storms over a whole run.
    pub fn recovery_stats(&self) -> (u64, u64) {
        (self.redials, self.failed_dials)
    }

    /// Forgets every connection, subscription, and in-flight fetch on
    /// every link (without sending anything). Used when the owning node
    /// is revived after a mid-run shutdown and must rebuild from scratch.
    pub fn reset(&mut self) {
        for link in &mut self.links {
            link.conn = None;
            link.subs.clear();
            link.by_track.clear();
            link.fetches.clear();
            link.queued.clear();
        }
    }

    /// The session on link `id` became ready: replays queued
    /// subscriptions.
    pub fn on_session_ready(&mut self, ctx: &mut Ctx<'_>, stack: &mut MoqtStack, id: LinkId) {
        let Some(link) = self.links.get_mut(id) else {
            return;
        };
        let queued = std::mem::take(&mut link.queued);
        for track in queued {
            self.subscribe(ctx, stack, id, track);
        }
    }

    /// The connection on link `id` closed: forgets it and every
    /// subscription/fetch riding it. Tracks are re-routed by
    /// `RelayCore::on_uplink_closed`, whose subscribe / fetch actions
    /// land back here and redial; in-flight fetches' waiters live in the
    /// core's pending-fetch table, which re-issues or rejects them there.
    pub fn on_closed(&mut self, id: LinkId) {
        let Some(link) = self.links.get_mut(id) else {
            return;
        };
        link.conn = None;
        link.subs.clear();
        link.by_track.clear();
        link.queued.clear();
        link.fetches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqdns_netsim::NodeId;

    fn addr(i: usize) -> Addr {
        Addr::new(NodeId::from_index(i), MOQT_PORT)
    }

    #[test]
    fn classify_and_counts_empty() {
        let up = Links::new(vec![addr(1), addr(2)]);
        assert_eq!(up.len(), 2);
        assert!(!up.is_empty());
        assert_eq!(up.total_subs(), 0);
        assert_eq!(up.sub_count(0), 0);
        assert_eq!(up.classify(moqdns_quic::ConnHandle(77)), None);
    }

    #[test]
    fn on_closed_clears_everything() {
        let mut up = Links::new(vec![addr(1)]);
        let t = FullTrackName::new(vec![vec![1]], vec![2]).unwrap();
        up.links[0].fetches.insert(9, (t.clone(), 0, u64::MAX));
        up.links[0].subs.insert(1, t.clone());
        up.links[0].by_track.insert(t, 1);
        up.on_closed(0);
        assert_eq!(up.total_subs(), 0);
        assert!(up.links[0].conn.is_none());
        assert!(up.links[0].fetches.is_empty());
        assert_eq!(up.take_fetch(0, 9), None);
    }

    #[test]
    fn reset_forgets_all_links() {
        let mut up = Links::new(vec![addr(1), addr(2)]);
        let t = FullTrackName::new(vec![vec![1]], vec![2]).unwrap();
        up.links[1].fetches.insert(4, (t.clone(), 0, u64::MAX));
        up.links[1].subs.insert(2, t.clone());
        up.links[1].by_track.insert(t.clone(), 2);
        up.links[0].queued.push(t);
        up.reset();
        assert_eq!(up.total_subs(), 0);
        for l in &up.links {
            assert!(l.conn.is_none() && l.fetches.is_empty() && l.queued.is_empty());
        }
    }

    #[test]
    fn peers_extend_the_link_space_after_parents() {
        let mut up = Links::new(vec![addr(1)]);
        up.add_peers(vec![addr(2), addr(3)]);
        assert_eq!(up.len(), 3);
        assert_eq!(up.parent_count(), 1);
        assert_eq!(up.peer_count(), 2);
        let t = FullTrackName::new(vec![vec![1]], vec![2]).unwrap();
        up.links[0].subs.insert(1, t.clone());
        up.links[2].subs.insert(2, t);
        assert_eq!(up.parent_subs(), 1);
        assert_eq!(up.peer_subs(), 1);
        assert_eq!(up.total_subs(), 2);
    }
}
