//! The DNS ↔ MoQT mapping (paper §4.3, Figs 3 and 4).
//!
//! **Queries → tracks (Fig 3).** Five DNS request fields map onto the MoQT
//! full track name:
//!
//! ```text
//! namespace[0] = 1 byte:  OPCODE (4 bits) | RD (1 bit) | CD (1 bit)
//! namespace[1] = 2 bytes: QTYPE
//! namespace[2] = 2 bytes: QCLASS
//! track name   = QNAME in wire form
//! ```
//!
//! With MoQT's 4096-byte combined limit this leaves 4091 bytes for QNAME —
//! far beyond DNS's own 255-byte cap, as the paper notes.
//!
//! **Responses → objects (Fig 4).** The full DNS response message is the
//! object payload; `group_id` is the zone's strictly monotonic version
//! (§4.2), `object_id` and `subgroup_id` are always 0 — every group
//! contains exactly one object.

use moqdns_dns::message::{Message, Opcode, Question};
use moqdns_dns::name::Name;
use moqdns_dns::rr::{RClass, RecordType};
use moqdns_moqt::data::Object;
use moqdns_moqt::track::FullTrackName;
use moqdns_wire::{Reader, WireError, WireResult};

/// Fields of the request beyond the question that participate in the
/// mapping (the first namespace byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestFlags {
    /// DNS OPCODE (4 bits).
    pub opcode: Opcode,
    /// Recursion desired.
    pub rd: bool,
    /// Checking disabled.
    pub cd: bool,
}

impl RequestFlags {
    /// Standard recursive query flags (stub → recursive).
    pub fn recursive() -> RequestFlags {
        RequestFlags {
            opcode: Opcode::Query,
            rd: true,
            cd: false,
        }
    }

    /// Iterative query flags (recursive → authoritative).
    pub fn iterative() -> RequestFlags {
        RequestFlags {
            opcode: Opcode::Query,
            rd: false,
            cd: false,
        }
    }

    /// The flags a client's query actually carried (RFC 1035 §4.1.1) —
    /// forwarders must propagate these upstream rather than assume
    /// recursion-desired.
    pub fn from_query(query: &Message) -> RequestFlags {
        RequestFlags {
            opcode: query.header.opcode,
            rd: query.header.rd,
            cd: query.header.cd,
        }
    }

    fn to_byte(self) -> u8 {
        (self.opcode.to_u8() << 4) | (u8::from(self.rd) << 1) | u8::from(self.cd)
    }

    fn from_byte(b: u8) -> RequestFlags {
        RequestFlags {
            opcode: Opcode::from_u8(b >> 4),
            rd: b & 0b10 != 0,
            cd: b & 0b01 != 0,
        }
    }
}

/// Maps a DNS question (+flags) to its MoQT full track name (Fig 3).
///
/// The mapping is canonical: the QNAME is lowercased first so that
/// differently-cased queries land on the same track and can share the
/// publisher's fan-out (§4.3: "to ensure that different subscribers use
/// the same combination of namespace and track name").
pub fn track_from_question(q: &Question, flags: RequestFlags) -> WireResult<FullTrackName> {
    let qname_wire = q.qname.to_lowercase().to_wire();
    FullTrackName::new(
        vec![
            vec![flags.to_byte()],
            q.qtype.to_u16().to_be_bytes().to_vec(),
            q.qclass.to_u16().to_be_bytes().to_vec(),
        ],
        qname_wire,
    )
}

/// Inverse of [`track_from_question`].
pub fn question_from_track(t: &FullTrackName) -> WireResult<(Question, RequestFlags)> {
    if t.namespace.len() != 3 {
        return Err(WireError::Invalid {
            what: "dns track namespace arity",
        });
    }
    let f = &t.namespace[0];
    if f.len() != 1 {
        return Err(WireError::Invalid {
            what: "flags element",
        });
    }
    let flags = RequestFlags::from_byte(f[0]);
    let ty = &t.namespace[1];
    let cl = &t.namespace[2];
    if ty.len() != 2 || cl.len() != 2 {
        return Err(WireError::Invalid {
            what: "qtype/qclass element",
        });
    }
    let qtype = RecordType::from_u16(u16::from_be_bytes([ty[0], ty[1]]));
    let qclass = RClass::from_u16(u16::from_be_bytes([cl[0], cl[1]]));
    let mut r = Reader::new(&t.name);
    let qname = Name::decode(&mut r)?;
    r.expect_end()?;
    Ok((
        Question {
            qname,
            qtype,
            qclass,
        },
        flags,
    ))
}

/// Wraps a DNS response message into a MoQT object (Fig 4): payload = the
/// full encoded message, group = zone version, object id = 0.
///
/// The returned object's payload is a shared handle: publishing it to N
/// subscribers (or caching it at a relay) clones a refcount, not bytes.
pub fn object_from_response(response: &Message, zone_version: u64) -> Object {
    let mut bytes = response.encode();
    // The transaction id is meaningless on a shared track (many subscribers
    // receive the same object), so it is canonicalized to zero — patched
    // directly in the first two wire bytes rather than cloning the message.
    bytes[0] = 0;
    bytes[1] = 0;
    Object {
        group_id: zone_version,
        object_id: 0,
        payload: bytes.into(),
    }
}

/// Unwraps an object back into a DNS message, validating the Fig 4
/// invariants (object id must be 0).
pub fn response_from_object(object: &Object) -> WireResult<Message> {
    if object.object_id != 0 {
        return Err(WireError::Invalid {
            what: "dns object id (must be 0)",
        });
    }
    Message::decode(&object.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqdns_dns::rdata::RData;
    use moqdns_dns::rr::Record;
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn q(s: &str, t: RecordType) -> Question {
        Question::new(n(s), t)
    }

    #[test]
    fn fig3_layout_exact_bytes() {
        let t = track_from_question(
            &q("www.example.com", RecordType::A),
            RequestFlags::recursive(),
        )
        .unwrap();
        // opcode QUERY=0, RD=1, CD=0 -> 0b0000_0010.
        assert_eq!(t.namespace[0], vec![0b0000_0010]);
        assert_eq!(t.namespace[1], vec![0x00, 0x01]); // QTYPE A
        assert_eq!(t.namespace[2], vec![0x00, 0x01]); // QCLASS IN
        assert_eq!(t.name, b"\x03www\x07example\x03com\x00".to_vec());
    }

    #[test]
    fn mapping_roundtrips() {
        for (name, ty, fl) in [
            ("www.example.com", RecordType::A, RequestFlags::recursive()),
            ("example.com", RecordType::AAAA, RequestFlags::iterative()),
            (
                "x.y.z.example.org",
                RecordType::HTTPS,
                RequestFlags::recursive(),
            ),
            (".", RecordType::NS, RequestFlags::iterative()),
        ] {
            let question = q(name, ty);
            let t = track_from_question(&question, fl).unwrap();
            let (back, back_fl) = question_from_track(&t).unwrap();
            assert_eq!(back, question);
            assert_eq!(back_fl, fl);
        }
    }

    #[test]
    fn mapping_is_case_canonical() {
        let a = track_from_question(
            &q("WWW.Example.COM", RecordType::A),
            RequestFlags::recursive(),
        )
        .unwrap();
        let b = track_from_question(
            &q("www.example.com", RecordType::A),
            RequestFlags::recursive(),
        )
        .unwrap();
        assert_eq!(a, b, "same track for differently-cased queries");
    }

    #[test]
    fn different_questions_different_tracks() {
        let fl = RequestFlags::recursive();
        let t1 = track_from_question(&q("a.com", RecordType::A), fl).unwrap();
        let t2 = track_from_question(&q("b.com", RecordType::A), fl).unwrap();
        let t3 = track_from_question(&q("a.com", RecordType::AAAA), fl).unwrap();
        let t4 =
            track_from_question(&q("a.com", RecordType::A), RequestFlags::iterative()).unwrap();
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
        assert_ne!(t1, t4, "RD bit distinguishes tracks");
    }

    #[test]
    fn qname_budget_is_4091_bytes() {
        // namespace = 1 + 2 + 2 = 5 bytes, so the track name may use 4091.
        let t = track_from_question(&q("example.com", RecordType::A), RequestFlags::recursive())
            .unwrap();
        let ns_len: usize = t.namespace.iter().map(Vec::len).sum();
        assert_eq!(ns_len, 5);
        assert_eq!(
            moqdns_moqt::track::MAX_FULL_NAME_LEN - ns_len,
            4091,
            "paper §4.3: 4091 bytes left for QNAME"
        );
    }

    #[test]
    fn fig4_object_shape() {
        let mut resp = Message::query(0x77, q("www.example.com", RecordType::A));
        resp.header.qr = true;
        resp.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        let obj = object_from_response(&resp, 42);
        assert_eq!(obj.group_id, 42);
        assert_eq!(obj.object_id, 0);
        let back = response_from_object(&obj).unwrap();
        assert_eq!(back.answers, resp.answers);
        // Transaction id canonicalized so identical content is byte-identical
        // for every subscriber (§4.2 object-identity invariant).
        assert_eq!(back.header.id, 0);
    }

    #[test]
    fn identical_content_identical_objects() {
        // §4.2: "If two objects within the same track have the same group
        // and object IDs, their content must be exactly the same."
        let mut r1 = Message::query(1, q("a.com", RecordType::A));
        r1.header.qr = true;
        let mut r2 = Message::query(2, q("a.com", RecordType::A));
        r2.header.qr = true;
        let o1 = object_from_response(&r1, 7);
        let o2 = object_from_response(&r2, 7);
        assert_eq!(o1, o2, "ids differ but objects must not");
    }

    #[test]
    fn nonzero_object_id_rejected() {
        let obj = Object {
            group_id: 1,
            object_id: 1,
            payload: vec![].into(),
        };
        assert!(response_from_object(&obj).is_err());
    }

    #[test]
    fn malformed_track_rejected() {
        // Wrong arity.
        let t = FullTrackName::new(vec![vec![0]], b"\x00".to_vec()).unwrap();
        assert!(question_from_track(&t).is_err());
        // Bad qname bytes.
        let t = FullTrackName::new(vec![vec![0], vec![0, 1], vec![0, 1]], b"\xFF\xFF".to_vec())
            .unwrap();
        assert!(question_from_track(&t).is_err());
        // Trailing garbage after qname.
        let t = FullTrackName::new(vec![vec![0], vec![0, 1], vec![0, 1]], b"\x00junk".to_vec())
            .unwrap();
        assert!(question_from_track(&t).is_err());
    }

    proptest! {
        #[test]
        fn prop_mapping_roundtrip(
            s in "[a-z0-9]{1,12}(\\.[a-z0-9]{1,12}){0,4}",
            ty in 0u16..70,
            rd in any::<bool>(),
            cd in any::<bool>(),
        ) {
            let question = Question {
                qname: s.parse().unwrap(),
                qtype: RecordType::from_u16(ty),
                qclass: RClass::IN,
            };
            let flags = RequestFlags { opcode: Opcode::Query, rd, cd };
            let t = track_from_question(&question, flags).unwrap();
            let (back, back_flags) = question_from_track(&t).unwrap();
            prop_assert_eq!(back, question);
            prop_assert_eq!(back_flags, flags);
        }

        #[test]
        fn prop_injective_on_names(
            a in "[a-z]{1,10}\\.com",
            b in "[a-z]{1,10}\\.com",
        ) {
            let fl = RequestFlags::recursive();
            let ta = track_from_question(&q(&a, RecordType::A), fl).unwrap();
            let tb = track_from_question(&q(&b, RecordType::A), fl).unwrap();
            prop_assert_eq!(a == b, ta == tb);
        }
    }
}
