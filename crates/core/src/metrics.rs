//! Measurement hooks the experiments read.
//!
//! Nodes record raw observations here; `moqdns-bench` aggregates them into
//! the tables of EXPERIMENTS.md.

use moqdns_dns::message::Question;
use moqdns_moqt::relay::RelayStats;
use moqdns_netsim::SimTime;
use std::time::Duration;

/// How a lookup was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerSource {
    /// Served from a local cache.
    Cache,
    /// Resolved over classic DNS (UDP).
    ClassicUdp,
    /// Resolved over MoQT (fetch + subscribe).
    Moqt,
    /// A pushed MoQT update (no lookup occurred at all).
    Push,
}

/// One completed lookup.
#[derive(Debug, Clone)]
pub struct LookupSample {
    /// What was asked.
    pub question: Question,
    /// When the application asked.
    pub started: SimTime,
    /// When the answer was available.
    pub finished: SimTime,
    /// Where the answer came from.
    pub source: AnswerSource,
    /// Whether the lookup succeeded.
    pub ok: bool,
    /// The record version (MoQT group id), when known.
    pub version: Option<u64>,
}

impl LookupSample {
    /// Lookup latency.
    pub fn latency(&self) -> Duration {
        self.finished - self.started
    }
}

/// One observed record update at a subscriber.
#[derive(Debug, Clone)]
pub struct UpdateSample {
    /// The track's question.
    pub question: Question,
    /// Version received (group id).
    pub version: u64,
    /// When the update arrived at this node.
    pub received: SimTime,
}

/// One staleness observation: how long a node served an outdated record
/// after the authoritative copy changed (the paper's headline metric).
#[derive(Debug, Clone)]
pub struct StalenessSample {
    /// The record's question.
    pub question: Question,
    /// When the authoritative record changed.
    pub changed_at: SimTime,
    /// When this node first had the new version.
    pub fresh_at: SimTime,
}

impl StalenessSample {
    /// The staleness window: time between the authoritative change and
    /// this node holding the new version.
    pub fn staleness(&self) -> Duration {
        self.fresh_at - self.changed_at
    }
}

/// Aggregated relay counters for one tier of a distribution tree
/// (§3 aggregation, §5.3 relay paths). The tree-scenario binaries fold
/// every relay's [`RelayStats`] into its tier and print the result as a
/// `moqdns_stats::Table`.
#[derive(Debug, Clone, Default)]
pub struct TierRelayStats {
    /// Tier label ("tier1", "edge", …).
    pub tier: String,
    /// Relays folded into this row.
    pub relays: usize,
    /// Summed relay counters.
    pub totals: RelayStats,
    /// Live upstream subscriptions summed across the tier's relays.
    pub upstream_subscriptions: usize,
}

impl TierRelayStats {
    /// An empty accumulator for `tier`.
    pub fn new(tier: impl Into<String>) -> TierRelayStats {
        TierRelayStats {
            tier: tier.into(),
            ..TierRelayStats::default()
        }
    }

    /// Folds one relay's counters into the tier.
    pub fn accumulate(&mut self, stats: RelayStats, live_upstream_subs: usize) {
        self.relays += 1;
        // Exhaustive destructuring: adding a field to RelayStats refuses
        // to compile until it is folded here too.
        let RelayStats {
            downstream_subscribes,
            upstream_subscribes,
            objects_forwarded,
            fetch_cache_hits,
            fetch_cache_misses,
            fetch_coalesced,
            upstream_fetches,
            fetch_waiters_served,
            reroutes,
            rebalances,
            peer_fetches,
            peer_objects,
            origin_offload,
            violations,
            dropped_datagrams,
            throttled_fetches,
            evicted_sessions,
            redials,
            failed_dials,
        } = stats;
        self.totals.downstream_subscribes += downstream_subscribes;
        self.totals.upstream_subscribes += upstream_subscribes;
        self.totals.objects_forwarded += objects_forwarded;
        self.totals.fetch_cache_hits += fetch_cache_hits;
        self.totals.fetch_cache_misses += fetch_cache_misses;
        self.totals.fetch_coalesced += fetch_coalesced;
        self.totals.upstream_fetches += upstream_fetches;
        self.totals.fetch_waiters_served += fetch_waiters_served;
        self.totals.reroutes += reroutes;
        self.totals.rebalances += rebalances;
        self.totals.peer_fetches += peer_fetches;
        self.totals.peer_objects += peer_objects;
        self.totals.origin_offload += origin_offload;
        self.totals.violations += violations;
        self.totals.dropped_datagrams += dropped_datagrams;
        self.totals.throttled_fetches += throttled_fetches;
        self.totals.evicted_sessions += evicted_sessions;
        self.totals.redials += redials;
        self.totals.failed_dials += failed_dials;
        self.upstream_subscriptions += live_upstream_subs;
    }

    /// Tier-wide aggregation factor: downstream subscriptions per
    /// upstream subscription opened.
    pub fn aggregation_factor(&self) -> f64 {
        if self.totals.upstream_subscribes == 0 {
            0.0
        } else {
            self.totals.downstream_subscribes as f64 / self.totals.upstream_subscribes as f64
        }
    }
}

/// Raw observation store embedded in measuring nodes.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Completed lookups.
    pub lookups: Vec<LookupSample>,
    /// Updates received via push.
    pub updates: Vec<UpdateSample>,
    /// Staleness observations.
    pub staleness: Vec<StalenessSample>,
    /// Classic DNS queries sent upstream.
    pub classic_queries_sent: u64,
    /// Classic DNS responses received.
    pub classic_responses_received: u64,
    /// MoQT subscriptions opened.
    pub subscribes_sent: u64,
    /// MoQT fetches issued.
    pub fetches_sent: u64,
    /// Objects received via subscriptions.
    pub objects_received: u64,
}

impl Metrics {
    /// Mean lookup latency over successful lookups.
    pub fn mean_lookup_latency(&self) -> Option<Duration> {
        let ok: Vec<&LookupSample> = self.lookups.iter().filter(|l| l.ok).collect();
        if ok.is_empty() {
            return None;
        }
        let total: Duration = ok.iter().map(|l| l.latency()).sum();
        Some(total / ok.len() as u32)
    }

    /// Mean staleness across observations.
    pub fn mean_staleness(&self) -> Option<Duration> {
        if self.staleness.is_empty() {
            return None;
        }
        let total: Duration = self.staleness.iter().map(|s| s.staleness()).sum();
        Some(total / self.staleness.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqdns_dns::rr::RecordType;

    fn q() -> Question {
        Question::new("x.com".parse().unwrap(), RecordType::A)
    }

    #[test]
    fn latency_and_staleness_math() {
        let l = LookupSample {
            question: q(),
            started: SimTime::from_millis(100),
            finished: SimTime::from_millis(150),
            source: AnswerSource::ClassicUdp,
            ok: true,
            version: None,
        };
        assert_eq!(l.latency(), Duration::from_millis(50));

        let s = StalenessSample {
            question: q(),
            changed_at: SimTime::from_secs(10),
            fresh_at: SimTime::from_secs(70),
        };
        assert_eq!(s.staleness(), Duration::from_secs(60));
    }

    #[test]
    fn tier_relay_stats_fold() {
        let mut tier = TierRelayStats::new("edge");
        let a = RelayStats {
            downstream_subscribes: 16,
            upstream_subscribes: 1,
            objects_forwarded: 32,
            fetch_cache_hits: 3,
            fetch_cache_misses: 1,
            fetch_coalesced: 1,
            upstream_fetches: 0,
            fetch_waiters_served: 1,
            reroutes: 0,
            rebalances: 0,
            peer_fetches: 1,
            peer_objects: 4,
            origin_offload: 1,
            violations: 2,
            dropped_datagrams: 5,
            throttled_fetches: 7,
            evicted_sessions: 1,
            redials: 3,
            failed_dials: 2,
        };
        let b = RelayStats {
            downstream_subscribes: 16,
            upstream_subscribes: 1,
            objects_forwarded: 32,
            fetch_cache_hits: 0,
            fetch_cache_misses: 0,
            fetch_coalesced: 0,
            upstream_fetches: 0,
            fetch_waiters_served: 0,
            reroutes: 1,
            rebalances: 1,
            peer_fetches: 0,
            peer_objects: 2,
            origin_offload: 0,
            violations: 1,
            dropped_datagrams: 0,
            throttled_fetches: 0,
            evicted_sessions: 1,
            redials: 1,
            failed_dials: 0,
        };
        tier.accumulate(a, 1);
        tier.accumulate(b, 1);
        assert_eq!(tier.relays, 2);
        assert_eq!(tier.totals.objects_forwarded, 64);
        assert_eq!(tier.upstream_subscriptions, 2);
        assert_eq!(tier.totals.peer_fetches, 1);
        assert_eq!(tier.totals.peer_objects, 6);
        assert_eq!(tier.totals.origin_offload, 1);
        assert_eq!(tier.totals.violations, 3);
        assert_eq!(tier.totals.dropped_datagrams, 5);
        assert_eq!(tier.totals.throttled_fetches, 7);
        assert_eq!(tier.totals.evicted_sessions, 2);
        assert_eq!(tier.totals.redials, 4);
        assert_eq!(tier.totals.failed_dials, 2);
        assert!((tier.aggregation_factor() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn aggregates() {
        let mut m = Metrics::default();
        assert!(m.mean_lookup_latency().is_none());
        assert!(m.mean_staleness().is_none());
        for ms in [10u64, 20, 30] {
            m.lookups.push(LookupSample {
                question: q(),
                started: SimTime::ZERO,
                finished: SimTime::from_millis(ms),
                source: AnswerSource::Moqt,
                ok: true,
                version: Some(1),
            });
        }
        // Failed lookups excluded from the mean.
        m.lookups.push(LookupSample {
            question: q(),
            started: SimTime::ZERO,
            finished: SimTime::from_secs(5),
            source: AnswerSource::ClassicUdp,
            ok: false,
            version: None,
        });
        assert_eq!(m.mean_lookup_latency(), Some(Duration::from_millis(20)));
    }
}
