//! The recursive resolver (paper §4.1, §4.5, §5).
//!
//! Downstream it serves stub resolvers over classic DNS-on-UDP and over
//! MoQT; upstream it resolves iteratively (root → TLD → authoritative)
//! over one of three transports:
//!
//! * [`UpstreamMode::Classic`] — plain DNS-over-UDP with retransmission;
//! * [`UpstreamMode::Moqt`] — every step is a MoQT SUBSCRIBE + joining
//!   FETCH (Fig 2), so referral and answer updates keep flowing after the
//!   lookup;
//! * [`UpstreamMode::HappyEyeballs`] — §4.5: "the resolver can use a happy
//!   eyeballs-like approach by trying to establish a MoQT connection while
//!   simultaneously sending a request over UDP".
//!
//! When the authoritative side cannot provide updates (classic-only), the
//! resolver either declines downstream subscriptions with SUBSCRIBE_ERROR,
//! or — in `poll_proxy` mode — re-requests the record every TTL and
//! synthesizes update pushes (§4.5 last paragraph).

use crate::mapping::{
    object_from_response, question_from_track, track_from_question, RequestFlags,
};
use crate::metrics::{AnswerSource, LookupSample, Metrics, UpdateSample};
use crate::stack::{MoqtStack, StackEvent, TOKEN_QUIC};
use crate::teardown::{SubscriptionTracker, TeardownPolicy};
use crate::{ip_node, DNS_PORT, MOQT_PORT};
use moqdns_dns::cache::{Cache, CacheHit};
use moqdns_dns::message::{Message, Question, Rcode};
use moqdns_dns::resolver::{IterAction, Iterative, Resolution, RootHint};
use moqdns_dns::rr::Record;
use moqdns_dns::transport::{UdpAction, UdpExchange};
use moqdns_moqt::data::Object;
use moqdns_moqt::session::{IncomingFetchKind, SessionEvent};
use moqdns_moqt::track::FullTrackName;
use moqdns_netsim::{Addr, Ctx, Node, Payload, SimTime};
use moqdns_quic::{ConnHandle, TransportConfig};
use std::any::Any;
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::time::Duration;

/// Which transport the resolver uses toward authoritative servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpstreamMode {
    /// Traditional DNS over UDP.
    Classic,
    /// DNS over MoQT (subscribe + joining fetch per step).
    Moqt,
    /// Race MoQT against UDP (§4.5).
    HappyEyeballs,
}

/// Resolver configuration.
#[derive(Clone)]
pub struct RecursiveConfig {
    /// Upstream transport.
    pub mode: UpstreamMode,
    /// Teardown policy for upstream subscriptions (§4.4).
    pub teardown: TeardownPolicy,
    /// Provide downstream updates for classic-only records by re-polling
    /// at TTL intervals (§4.5).
    pub poll_proxy: bool,
    /// Root server hints.
    pub roots: Vec<RootHint>,
    /// How often the teardown sweep runs.
    pub sweep_interval: Duration,
    /// QUIC transport tuning.
    pub transport: TransportConfig,
    /// Cache capacity (record sets).
    pub cache_size: usize,
    /// RNG/cid seed.
    pub seed: u64,
    /// Give up on a MoQT step after this long (fall to the next server, or
    /// let UDP win the happy-eyeballs race).
    pub moqt_step_timeout: Duration,
    /// Initial retransmission timeout for upstream UDP queries. Raise for
    /// long-delay paths (deep space, E8).
    pub udp_rto: Duration,
    /// Happy-eyeballs grace: how long MoQT gets to answer before the UDP
    /// probe is sent (preferring the subscription-capable transport, §4.5).
    pub happy_eyeballs_grace: Duration,
}

impl RecursiveConfig {
    /// A sensible default configuration for `mode` with the given roots.
    pub fn new(mode: UpstreamMode, roots: Vec<RootHint>, seed: u64) -> RecursiveConfig {
        RecursiveConfig {
            mode,
            teardown: TeardownPolicy::Never,
            poll_proxy: false,
            roots,
            sweep_interval: Duration::from_secs(60),
            transport: TransportConfig::default()
                .idle_timeout(Duration::from_secs(3600))
                .keep_alive(Duration::from_secs(25)),
            cache_size: 100_000,
            seed,
            moqt_step_timeout: Duration::from_secs(3),
            udp_rto: Duration::from_secs(1),
            happy_eyeballs_grace: Duration::from_millis(250),
        }
    }
}

// Timer token namespaces (high byte).
const K_UDP: u64 = 2 << 56;
const K_STEP: u64 = 3 << 56;
const K_SWEEP: u64 = 4 << 56;
const K_POLL: u64 = 5 << 56;
const K_MASK: u64 = 0xFF << 56;

/// Who is waiting for a resolution to finish.
enum Waiter {
    /// A classic UDP client (answer with this transaction id).
    Classic { from: Addr, query_id: u16 },
    /// A downstream MoQT subscriber (subscribe + joining fetch pair).
    Moqt {
        conn: ConnHandle,
        sub_request: Option<u64>,
        fetch_request: Option<u64>,
        track: FullTrackName,
    },
    /// Internal poll-proxy refresh for a track.
    Poll { track: FullTrackName },
}

/// The upstream transport state of one resolution step.
#[allow(dead_code)] // conn handles kept for diagnostics
enum Step {
    Udp {
        server: Addr,
        exchange: UdpExchange,
    },
    Moqt {
        conn: ConnHandle,
        fetch_id: Option<u64>,
    },
    Race {
        server: Addr,
        exchange: UdpExchange,
        conn: ConnHandle,
        fetch_id: Option<u64>,
        /// False until the grace period elapsed and the UDP probe flew.
        udp_started: bool,
    },
}

/// One in-flight recursive resolution.
struct Task {
    question: Question,
    iter: Iterative,
    waiters: Vec<Waiter>,
    step: Option<Step>,
    started: SimTime,
    /// Whether the final answer arrived over MoQT (updates available).
    answered_via_moqt: bool,
}

/// Upstream subscription bookkeeping.
struct UpSub {
    question: Question,
    track: FullTrackName,
}

/// A pending downstream subscribe+fetch pair not yet resolvable.
#[derive(Default)]
struct DownPending {
    sub_request: Option<u64>,
    fetch_request: Option<u64>,
}

/// The recursive resolver node.
pub struct RecursiveResolver {
    config: RecursiveConfig,
    cache: Cache,
    stack: MoqtStack,
    tasks: BTreeMap<u64, Task>,
    next_task: u64,
    active_by_question: BTreeMap<Question, u64>,
    /// Upstream MoQT connections by authoritative server address.
    upstream_conns: BTreeMap<Addr, ConnHandle>,
    /// Actions queued until an upstream session becomes ready.
    pending_upstream: BTreeMap<ConnHandle, Vec<u64>>,
    /// (conn, our fetch request id) -> task.
    fetch_waiters: BTreeMap<(ConnHandle, u64), u64>,
    /// (conn, our subscribe request id) -> upstream subscription.
    up_subs: BTreeMap<(ConnHandle, u64), UpSub>,
    /// track -> latest version we can serve (group id downstream).
    versions: BTreeMap<FullTrackName, u64>,
    /// Tracks whose updates arrive via upstream subscription.
    live_tracks: BTreeMap<FullTrackName, (ConnHandle, u64)>,
    /// Downstream subscribers per track.
    down_subs: BTreeMap<FullTrackName, Vec<(ConnHandle, u64)>>,
    /// Downstream subscribe/fetch pairs awaiting resolution.
    down_pending: BTreeMap<(ConnHandle, FullTrackName), DownPending>,
    /// Poll-proxy entries: poll id -> (track, interval).
    polls: BTreeMap<u64, (FullTrackName, Duration)>,
    next_poll: u64,
    /// Teardown tracker over upstream subscriptions.
    tracker: SubscriptionTracker<FullTrackName>,
    /// Fingerprint of last-published content per downstream track (the
    /// paper's §2 lexicographic change detection).
    fingerprints: BTreeMap<FullTrackName, (Rcode, Vec<String>)>,
    /// Raw measurements.
    pub metrics: Metrics,
}

impl RecursiveResolver {
    /// Creates a resolver node.
    pub fn new(config: RecursiveConfig) -> RecursiveResolver {
        let stack = MoqtStack::server(config.transport.clone(), config.seed);
        RecursiveResolver {
            cache: Cache::new(config.cache_size),
            stack,
            tasks: BTreeMap::new(),
            next_task: 0,
            active_by_question: BTreeMap::new(),
            upstream_conns: BTreeMap::new(),
            pending_upstream: BTreeMap::new(),
            fetch_waiters: BTreeMap::new(),
            up_subs: BTreeMap::new(),
            versions: BTreeMap::new(),
            live_tracks: BTreeMap::new(),
            down_subs: BTreeMap::new(),
            down_pending: BTreeMap::new(),
            polls: BTreeMap::new(),
            next_poll: 0,
            tracker: SubscriptionTracker::new(config.teardown),
            fingerprints: BTreeMap::new(),
            metrics: Metrics::default(),
            config,
        }
    }

    /// Enables MoQT request pipelining (§5.2 ALPN optimization) for
    /// upstream sessions created after this call.
    pub fn set_pipeline(&mut self, on: bool) {
        self.stack.set_pipeline(on);
    }

    /// The record cache (inspection).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Live upstream subscription count (§5.1 state overhead).
    pub fn upstream_subscription_count(&self) -> usize {
        self.up_subs.len()
    }

    /// Live downstream subscriber count.
    pub fn downstream_subscriber_count(&self) -> usize {
        self.down_subs.values().map(Vec::len).sum()
    }

    /// Estimated protocol state bytes (E9).
    pub fn state_size_estimate(&self) -> usize {
        self.stack.state_size_estimate()
            + self.up_subs.len() * 96
            + self.downstream_subscriber_count() * 32
    }

    // ------------------------------------------------------------------
    // Resolution engine
    // ------------------------------------------------------------------

    fn start_or_join(&mut self, ctx: &mut Ctx<'_>, question: Question, waiter: Waiter) {
        if let Some(&task_id) = self.active_by_question.get(&question) {
            if let Some(t) = self.tasks.get_mut(&task_id) {
                t.waiters.push(waiter);
                return;
            }
        }
        let task_id = self.next_task;
        self.next_task += 1;
        let seed = (ctx.random_u64() & 0xFFFF) as u16;
        let mut iter = Iterative::new(question.clone(), &self.config.roots, seed);
        let first = iter.start();
        let task = Task {
            question: question.clone(),
            iter,
            waiters: vec![waiter],
            step: None,
            started: ctx.now(),
            answered_via_moqt: false,
        };
        self.active_by_question.insert(question, task_id);
        self.tasks.insert(task_id, task);
        self.advance(ctx, task_id, first);
    }

    fn advance(&mut self, ctx: &mut Ctx<'_>, task_id: u64, action: IterAction) {
        match action {
            IterAction::SendQuery { server, query } => self.start_step(ctx, task_id, server, query),
            IterAction::Finished(res) => self.finish(ctx, task_id, Some(res)),
            IterAction::Failed(_) => self.finish(ctx, task_id, None),
        }
    }

    fn start_step(&mut self, ctx: &mut Ctx<'_>, task_id: u64, server: IpAddr, query: Message) {
        let IpAddr::V4(v4) = server else {
            // v6 unmapped in the simulator; skip to the next server.
            let next = self.tasks.get_mut(&task_id).map(|t| t.iter.on_timeout());
            if let Some(a) = next {
                self.advance(ctx, task_id, a);
            }
            return;
        };
        let node = ip_node(v4);
        let use_moqt = matches!(
            self.config.mode,
            UpstreamMode::Moqt | UpstreamMode::HappyEyeballs
        );
        let use_udp = matches!(
            self.config.mode,
            UpstreamMode::Classic | UpstreamMode::HappyEyeballs
        );

        let racing = use_udp && use_moqt;
        let udp_part = if use_udp {
            let mut exchange = UdpExchange::with_policy(query.clone(), self.config.udp_rto, 3);
            let server_addr = Addr::new(node, DNS_PORT);
            if racing {
                // §4.5 happy eyeballs with a preference for MoQT: give the
                // subscription-capable transport a head start.
                ctx.set_timer(self.config.happy_eyeballs_grace, K_UDP | task_id);
            } else if let UdpAction::Transmit { datagram, timeout } = exchange.start() {
                self.metrics.classic_queries_sent += 1;
                ctx.send(DNS_PORT, server_addr, datagram);
                ctx.set_timer(timeout, K_UDP | task_id);
            }
            Some((server_addr, exchange))
        } else {
            None
        };

        let moqt_part = if use_moqt {
            let peer = Addr::new(node, MOQT_PORT);
            let conn = match self.upstream_conns.get(&peer) {
                Some(&h) if self.stack.session(h).is_some() => Some(h),
                _ => {
                    let h = self.stack.connect(ctx.now(), peer, true);
                    if let Some(h) = h {
                        self.upstream_conns.insert(peer, h);
                    }
                    h
                }
            };
            if conn.is_some() {
                ctx.set_timer(self.config.moqt_step_timeout, K_STEP | task_id);
            }
            conn
        } else {
            None
        };

        let step = match (udp_part, moqt_part) {
            (Some((server, exchange)), None) => Step::Udp { server, exchange },
            (None, Some(conn)) => Step::Moqt {
                conn,
                fetch_id: None,
            },
            (Some((server, exchange)), Some(conn)) => Step::Race {
                server,
                exchange,
                conn,
                fetch_id: None,
                udp_started: false,
            },
            // MoQT-only mode with a failed connect: no transport is left
            // for this step, so the lookup fails instead of hanging.
            (None, None) => {
                self.finish(ctx, task_id, None);
                return;
            }
        };
        if let Some(t) = self.tasks.get_mut(&task_id) {
            t.step = Some(step);
        }
        // Subscribe over MoQT immediately if the session is ready;
        // otherwise queue until Ready.
        if let Some(conn) = moqt_part {
            if self
                .stack
                .session(conn)
                .map(|s| s.is_ready())
                .unwrap_or(false)
            {
                self.issue_step_fetch(ctx, task_id, conn);
            } else {
                self.pending_upstream.entry(conn).or_default().push(task_id);
            }
        }
        let evs = self.stack.flush(ctx);
        self.handle_stack_events(ctx, evs);
    }

    /// Sends SUBSCRIBE + joining FETCH for the current step's question.
    fn issue_step_fetch(&mut self, ctx: &mut Ctx<'_>, task_id: u64, conn: ConnHandle) {
        let Some(task) = self.tasks.get(&task_id) else {
            return;
        };
        // Guard against stale Ready events: the task may have advanced to a
        // later step (e.g. the UDP leg of a race already won this one).
        let waiting_here = matches!(
            &task.step,
            Some(Step::Moqt { conn: c, .. }) | Some(Step::Race { conn: c, .. }) if *c == conn
        );
        if !waiting_here {
            return;
        }
        // Current name under resolution may differ from the original
        // question (CNAME); the iterative machine re-sends the same
        // question per step in our design, so use the task question.
        let question = task.question.clone();
        let track =
            track_from_question(&question, RequestFlags::iterative()).expect("valid dns track");
        let Some((session, c)) = self.stack.session_conn(conn) else {
            return;
        };
        let (sub_id, fetch_id) = session.subscribe_with_joining_fetch(c, track.clone(), 1);
        self.metrics.subscribes_sent += 1;
        self.metrics.fetches_sent += 1;
        self.fetch_waiters.insert((conn, fetch_id), task_id);
        self.up_subs.insert(
            (conn, sub_id),
            UpSub {
                question,
                track: track.clone(),
            },
        );
        self.tracker.insert(track.clone(), ctx.now());
        if let Some(t) = self.tasks.get_mut(&task_id) {
            match &mut t.step {
                Some(Step::Moqt { fetch_id: f, .. }) | Some(Step::Race { fetch_id: f, .. }) => {
                    *f = Some(fetch_id)
                }
                _ => {}
            }
        }
        let evs = self.stack.flush(ctx);
        self.handle_stack_events(ctx, evs);
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, task_id: u64, res: Option<Resolution>) {
        let Some(task) = self.tasks.remove(&task_id) else {
            return;
        };
        self.active_by_question.remove(&task.question);

        let (rcode, answers, soa, ok) = match &res {
            Some(r) => (r.rcode, r.answers.clone(), r.soa.clone(), true),
            None => (Rcode::ServFail, Vec::new(), None, false),
        };

        // Cache the outcome.
        if ok {
            if rcode == Rcode::NoError && !answers.is_empty() {
                self.cache.insert(
                    ctx.now(),
                    &task.question.qname,
                    task.question.qtype,
                    answers.clone(),
                );
            } else if rcode == Rcode::NxDomain || answers.is_empty() {
                let ttl = soa.as_ref().map(|s| s.ttl).unwrap_or(300);
                self.cache.insert_negative(
                    ctx.now(),
                    &task.question.qname,
                    task.question.qtype,
                    rcode,
                    ttl,
                );
            }
        }

        self.metrics.lookups.push(LookupSample {
            question: task.question.clone(),
            started: task.started,
            finished: ctx.now(),
            source: if task.answered_via_moqt {
                AnswerSource::Moqt
            } else {
                AnswerSource::ClassicUdp
            },
            ok,
            version: None,
        });

        // Downstream track + version bookkeeping.
        let down_track = track_from_question(&task.question, RequestFlags::recursive())
            .expect("valid dns track");
        let updates_available = task.answered_via_moqt || self.config.poll_proxy;
        let version = self.bump_version_if_changed(&down_track, &task.question, rcode, &answers);

        // Build the canonical response.
        let response = self.build_response(&task.question, rcode, &answers, &soa);

        for waiter in task.waiters {
            match waiter {
                Waiter::Classic { from, query_id } => {
                    let mut r = response.clone();
                    r.header.id = query_id;
                    r.header.ra = true;
                    ctx.send(DNS_PORT, from, r.encode());
                }
                Waiter::Moqt {
                    conn,
                    sub_request,
                    fetch_request,
                    track,
                } => {
                    let object = object_from_response(&response, version);
                    if let Some(fr) = fetch_request {
                        if let Some((session, c)) = self.stack.session_conn(conn) {
                            session.respond_fetch(c, fr, (version, 0), vec![object.clone()]);
                        }
                    }
                    if let Some(sr) = sub_request {
                        if updates_available && ok {
                            if let Some((session, c)) = self.stack.session_conn(conn) {
                                session.accept_subscribe(c, sr, Some((version, 0)));
                            }
                            self.down_subs
                                .entry(track.clone())
                                .or_default()
                                .push((conn, sr));
                            if self.config.poll_proxy && !task.answered_via_moqt {
                                self.ensure_poll(ctx, &track, &answers);
                            }
                        } else {
                            // §4.5: decline the subscription, answer the fetch.
                            if let Some((session, c)) = self.stack.session_conn(conn) {
                                session.reject_subscribe(
                                    c,
                                    sr,
                                    0x4,
                                    "updates unavailable for this record",
                                );
                            }
                        }
                    }
                }
                Waiter::Poll { track } => {
                    // The version bump above already happened; push the new
                    // object to downstream subscribers if content changed.
                    self.push_downstream(ctx, &track, &response, version);
                }
            }
        }
        let evs = self.stack.flush(ctx);
        self.handle_stack_events(ctx, evs);
    }

    /// Bumps the per-track version when the answer content changed.
    fn bump_version_if_changed(
        &mut self,
        track: &FullTrackName,
        question: &Question,
        rcode: Rcode,
        answers: &[Record],
    ) -> u64 {
        let key = (rcode, canonical_answers(answers));
        let current = self.versions.get(track).copied().unwrap_or(0);
        // Store a fingerprint alongside by reusing the version map keyed by
        // a shadow track; simpler: keep fingerprints in their own map.
        let fp_changed = match self.fingerprints.get(track) {
            Some(old) => *old != key,
            None => true,
        };
        let v = if fp_changed {
            current + 1
        } else {
            current.max(1)
        };
        self.versions.insert(track.clone(), v);
        self.fingerprints.insert(track.clone(), key);
        let _ = question;
        v
    }

    fn build_response(
        &self,
        question: &Question,
        rcode: Rcode,
        answers: &[Record],
        soa: &Option<Record>,
    ) -> Message {
        let mut resp = Message::response(Message::query(0, question.clone()));
        resp.header.rcode = rcode;
        resp.header.ra = true;
        resp.answers = answers.to_vec();
        if answers.is_empty() {
            if let Some(s) = soa {
                resp.authorities.push(s.clone());
            }
        }
        resp
    }

    /// Pushes `response` as version `version` to all downstream subscribers
    /// of `track` whose content changed.
    fn push_downstream(
        &mut self,
        ctx: &mut Ctx<'_>,
        track: &FullTrackName,
        response: &Message,
        version: u64,
    ) {
        let Some(subs) = self.down_subs.get(track).cloned() else {
            return;
        };
        let object = object_from_response(response, version);
        for (conn, req) in subs {
            if let Some((session, c)) = self.stack.session_conn(conn) {
                session.publish(c, req, object.clone());
            }
        }
        let evs = self.stack.flush(ctx);
        self.handle_stack_events(ctx, evs);
    }

    fn ensure_poll(&mut self, ctx: &mut Ctx<'_>, track: &FullTrackName, answers: &[Record]) {
        if self.polls.values().any(|(t, _)| t == track) {
            return;
        }
        let ttl = answers.iter().map(|r| r.ttl).min().unwrap_or(300).max(1);
        let interval = Duration::from_secs(ttl as u64);
        let id = self.next_poll;
        self.next_poll += 1;
        self.polls.insert(id, (track.clone(), interval));
        ctx.set_timer(interval, K_POLL | id);
    }

    // ------------------------------------------------------------------
    // Step response routing
    // ------------------------------------------------------------------

    fn on_step_response(&mut self, ctx: &mut Ctx<'_>, task_id: u64, msg: &Message, via_moqt: bool) {
        let Some(task) = self.tasks.get_mut(&task_id) else {
            return;
        };
        task.step = None;
        task.answered_via_moqt = via_moqt;
        let action = task.iter.on_response(msg);
        self.advance(ctx, task_id, action);
    }

    fn on_step_timeout(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        let Some(task) = self.tasks.get_mut(&task_id) else {
            return;
        };
        task.step = None;
        let action = task.iter.on_timeout();
        self.advance(ctx, task_id, action);
    }

    // ------------------------------------------------------------------
    // MoQT event handling
    // ------------------------------------------------------------------

    fn handle_stack_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<StackEvent>) {
        for ev in events {
            match ev {
                StackEvent::Session(h, sev) => self.handle_session_event(ctx, h, sev),
                StackEvent::Closed(h) => {
                    self.upstream_conns.retain(|_, hh| *hh != h);
                    self.up_subs.retain(|(hh, _), _| *hh != h);
                    self.fetch_waiters.retain(|(hh, _), _| *hh != h);
                    self.live_tracks.retain(|_, (hh, _)| *hh != h);
                    for subs in self.down_subs.values_mut() {
                        subs.retain(|(hh, _)| *hh != h);
                    }
                    self.down_pending.retain(|(hh, _), _| *hh != h);
                }
                _ => {}
            }
        }
    }

    fn handle_session_event(&mut self, ctx: &mut Ctx<'_>, h: ConnHandle, ev: SessionEvent) {
        match ev {
            SessionEvent::Ready { .. } => {
                if let Some(tasks) = self.pending_upstream.remove(&h) {
                    for task_id in tasks {
                        if self.tasks.contains_key(&task_id) {
                            self.issue_step_fetch(ctx, task_id, h);
                        }
                    }
                }
            }
            SessionEvent::FetchObjects {
                request_id,
                objects,
            } => {
                if let Some(task_id) = self.fetch_waiters.remove(&(h, request_id)) {
                    let current = self
                        .tasks
                        .get(&task_id)
                        .map(|t| {
                            matches!(
                                &t.step,
                                Some(Step::Moqt { fetch_id, .. })
                                | Some(Step::Race { fetch_id, .. })
                                if *fetch_id == Some(request_id)
                            )
                        })
                        .unwrap_or(false);
                    if current {
                        if let Some(object) = objects.first() {
                            if let Ok(msg) = crate::mapping::response_from_object(object) {
                                self.on_step_response(ctx, task_id, &msg, true);
                            }
                        }
                    }
                }
            }
            SessionEvent::FetchRejected { request_id, .. } => {
                if let Some(task_id) = self.fetch_waiters.remove(&(h, request_id)) {
                    self.on_step_timeout(ctx, task_id);
                }
            }
            SessionEvent::SubscribeAccepted { request_id, .. } => {
                if let Some(up) = self.up_subs.get(&(h, request_id)) {
                    self.live_tracks.insert(up.track.clone(), (h, request_id));
                }
            }
            SessionEvent::SubscribeRejected { request_id, .. } => {
                self.up_subs.remove(&(h, request_id));
            }
            SessionEvent::SubscriptionObject { request_id, object } => {
                self.on_upstream_push(ctx, h, request_id, object);
            }
            SessionEvent::SubscriptionEnded { request_id, .. } => {
                if let Some(up) = self.up_subs.remove(&(h, request_id)) {
                    self.live_tracks.remove(&up.track);
                }
            }
            // --- downstream (we are the publisher) ---
            SessionEvent::IncomingSubscribe { request_id, track } => {
                self.down_pending.entry((h, track)).or_default().sub_request = Some(request_id);
                self.try_serve_downstream(ctx, h);
            }
            SessionEvent::IncomingFetch { request_id, kind } => {
                let track = match kind {
                    IncomingFetchKind::StandAlone { track, .. } => track,
                    IncomingFetchKind::Joining { track, .. } => track,
                    IncomingFetchKind::Peer { track, .. } => track,
                };
                self.down_pending
                    .entry((h, track))
                    .or_default()
                    .fetch_request = Some(request_id);
                self.try_serve_downstream(ctx, h);
            }
            SessionEvent::PeerUnsubscribed { request_id } => {
                for subs in self.down_subs.values_mut() {
                    subs.retain(|&(hh, r)| !(hh == h && r == request_id));
                }
            }
            _ => {}
        }
    }

    /// An update pushed from an authoritative server: refresh the cache and
    /// fan out to downstream subscribers (the pub/sub payoff).
    fn on_upstream_push(
        &mut self,
        ctx: &mut Ctx<'_>,
        h: ConnHandle,
        request_id: u64,
        object: Object,
    ) {
        let Some(up) = self.up_subs.get(&(h, request_id)) else {
            return;
        };
        let question = up.question.clone();
        let Ok(msg) = crate::mapping::response_from_object(&object) else {
            return;
        };
        self.metrics.objects_received += 1;
        self.metrics.updates.push(UpdateSample {
            question: question.clone(),
            version: object.group_id,
            received: ctx.now(),
        });
        // Refresh the cache with the pushed answers.
        if !msg.answers.is_empty() {
            self.cache.insert(
                ctx.now(),
                &question.qname,
                question.qtype,
                msg.answers.clone(),
            );
        }
        // Fan out downstream under the *recursive* track identity, carrying
        // the upstream version through so group ids stay consistent (§4.2).
        let down_track =
            track_from_question(&question, RequestFlags::recursive()).expect("valid dns track");
        self.versions.insert(down_track.clone(), object.group_id);
        self.fingerprints.insert(
            down_track.clone(),
            (msg.header.rcode, canonical_answers(&msg.answers)),
        );
        let mut response = msg;
        response.header.ra = true;
        self.push_downstream(ctx, &down_track, &response, object.group_id);
    }

    /// Serves a downstream subscribe/fetch pair once both halves arrived.
    fn try_serve_downstream(&mut self, ctx: &mut Ctx<'_>, h: ConnHandle) {
        let ready: Vec<(FullTrackName, DownPending)> = self
            .down_pending
            .iter()
            .filter(|((hh, _), p)| *hh == h && p.fetch_request.is_some())
            .map(|((_, t), p)| {
                (
                    t.clone(),
                    DownPending {
                        sub_request: p.sub_request,
                        fetch_request: p.fetch_request,
                    },
                )
            })
            .collect();
        for (track, pending) in ready {
            self.down_pending.remove(&(h, track.clone()));
            let Ok((question, _flags)) = question_from_track(&track) else {
                if let Some((session, c)) = self.stack.session_conn(h) {
                    if let Some(fr) = pending.fetch_request {
                        session.reject_fetch(c, fr, 0x1, "malformed dns track");
                    }
                    if let Some(sr) = pending.sub_request {
                        session.reject_subscribe(c, sr, 0x1, "malformed dns track");
                    }
                }
                continue;
            };
            // Cache hit with live updates → serve immediately.
            let cached = self.cache.get(ctx.now(), &question.qname, question.qtype);
            let has_live = self
                .live_tracks
                .contains_key(&track_from_question(&question, RequestFlags::iterative()).unwrap())
                || self.polls.values().any(|(t, _)| {
                    *t == track_from_question(&question, RequestFlags::recursive()).unwrap()
                });
            if let (Some(CacheHit::Records(records)), true) = (&cached, has_live) {
                let version = self.versions.get(&track).copied().unwrap_or(1);
                let response = self.build_response(&question, Rcode::NoError, records, &None);
                let object = object_from_response(&response, version);
                if let Some((session, c)) = self.stack.session_conn(h) {
                    if let Some(fr) = pending.fetch_request {
                        session.respond_fetch(c, fr, (version, 0), vec![object.clone()]);
                    }
                    if let Some(sr) = pending.sub_request {
                        session.accept_subscribe(c, sr, Some((version, 0)));
                    }
                }
                if let Some(sr) = pending.sub_request {
                    self.down_subs
                        .entry(track.clone())
                        .or_default()
                        .push((h, sr));
                }
                self.tracker.touch(
                    &track_from_question(&question, RequestFlags::iterative()).unwrap(),
                    ctx.now(),
                );
                continue;
            }
            // Otherwise resolve upstream, then answer.
            self.start_or_join(
                ctx,
                question,
                Waiter::Moqt {
                    conn: h,
                    sub_request: pending.sub_request,
                    fetch_request: pending.fetch_request,
                    track,
                },
            );
        }
        let evs = self.stack.flush(ctx);
        self.handle_stack_events(ctx, evs);
    }

    // ------------------------------------------------------------------
    // Classic downstream + timers
    // ------------------------------------------------------------------

    fn on_classic_query(&mut self, ctx: &mut Ctx<'_>, from: Addr, data: &[u8]) {
        let Ok(query) = Message::decode(data) else {
            return;
        };
        let Some(q) = query.question().cloned() else {
            return;
        };
        match self.cache.get(ctx.now(), &q.qname, q.qtype) {
            Some(CacheHit::Records(records)) => {
                let mut resp = Message::response(query);
                resp.header.ra = true;
                resp.answers = records;
                ctx.send(DNS_PORT, from, resp.encode());
                self.metrics.lookups.push(LookupSample {
                    question: q,
                    started: ctx.now(),
                    finished: ctx.now(),
                    source: AnswerSource::Cache,
                    ok: true,
                    version: None,
                });
            }
            Some(CacheHit::Negative(rcode)) => {
                let mut resp = Message::response(query);
                resp.header.ra = true;
                resp.header.rcode = rcode;
                ctx.send(DNS_PORT, from, resp.encode());
            }
            None => {
                self.start_or_join(
                    ctx,
                    q,
                    Waiter::Classic {
                        from,
                        query_id: query.header.id,
                    },
                );
            }
        }
    }

    fn on_udp_timer(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        let Some(task) = self.tasks.get_mut(&task_id) else {
            return;
        };
        let (server, action) = match &mut task.step {
            Some(Step::Race {
                server,
                exchange,
                udp_started,
                ..
            }) if !*udp_started => {
                // Grace elapsed without a MoQT answer: launch the UDP probe.
                *udp_started = true;
                (*server, exchange.start())
            }
            Some(Step::Udp { server, exchange })
            | Some(Step::Race {
                server, exchange, ..
            }) => (*server, exchange.on_timeout()),
            _ => return,
        };
        match action {
            UdpAction::Transmit { datagram, timeout } => {
                self.metrics.classic_queries_sent += 1;
                ctx.send(DNS_PORT, server, datagram);
                ctx.set_timer(timeout, K_UDP | task_id);
            }
            UdpAction::Failed => {
                // In a race, keep waiting for MoQT (its own timer fires
                // eventually); standalone UDP gives up this server.
                let race = matches!(task.step, Some(Step::Race { .. }));
                if !race {
                    self.on_step_timeout(ctx, task_id);
                }
            }
            _ => {}
        }
    }

    fn on_udp_response(&mut self, ctx: &mut Ctx<'_>, from: Addr, data: &[u8]) {
        // Find the task whose UDP step is waiting on this server.
        let task_id = self.tasks.iter_mut().find_map(|(id, t)| match &mut t.step {
            Some(Step::Udp { server, exchange })
            | Some(Step::Race {
                server, exchange, ..
            }) if *server == from => match exchange.on_datagram(data) {
                UdpAction::Complete(msg) => Some((*id, *msg)),
                _ => None,
            },
            _ => None,
        });
        if let Some((id, msg)) = task_id {
            self.metrics.classic_responses_received += 1;
            self.on_step_response(ctx, id, &msg, false);
        }
    }

    fn on_poll_timer(&mut self, ctx: &mut Ctx<'_>, poll_id: u64) {
        let Some((track, interval)) = self.polls.get(&poll_id).cloned() else {
            return;
        };
        // Stop polling tracks nobody subscribes to anymore.
        let has_subs = self
            .down_subs
            .get(&track)
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        if !has_subs {
            self.polls.remove(&poll_id);
            return;
        }
        if let Ok((question, _)) = question_from_track(&track) {
            // Invalidate the cache entry so the poll actually re-queries.
            self.cache.remove(&question.qname, question.qtype);
            self.start_or_join(ctx, question, Waiter::Poll { track });
        }
        ctx.set_timer(interval, K_POLL | poll_id);
    }

    fn on_sweep(&mut self, ctx: &mut Ctx<'_>) {
        let victims = self.tracker.sweep(ctx.now());
        for track in victims {
            if let Some((conn, sub_id)) = self.live_tracks.remove(&track) {
                self.up_subs.remove(&(conn, sub_id));
                if let Some((session, c)) = self.stack.session_conn(conn) {
                    session.unsubscribe(c, sub_id);
                }
            }
        }
        if self.config.teardown != TeardownPolicy::Never {
            ctx.set_timer(self.config.sweep_interval, K_SWEEP);
        }
        let evs = self.stack.flush(ctx);
        self.handle_stack_events(ctx, evs);
    }
}

/// Lexicographically ordered answer fingerprint (the paper's §2 method for
/// change detection, countering round-robin reordering).
fn canonical_answers(answers: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = answers.iter().map(|r| r.to_string()).collect();
    v.sort();
    v
}

impl Node for RecursiveResolver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.config.teardown != TeardownPolicy::Never {
            ctx.set_timer(self.config.sweep_interval, K_SWEEP);
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Payload) {
        match to_port {
            DNS_PORT => {
                // Could be a downstream query or an upstream response;
                // distinguish by the QR bit.
                if payload.len() > 2 && payload[2] & 0x80 != 0 {
                    self.on_udp_response(ctx, from, &payload);
                } else {
                    self.on_classic_query(ctx, from, &payload);
                }
            }
            MOQT_PORT => {
                let evs = self.stack.on_datagram(ctx, from, &payload);
                self.handle_stack_events(ctx, evs);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token & K_MASK {
            TOKEN_QUIC => {
                let evs = self.stack.on_timer(ctx);
                self.handle_stack_events(ctx, evs);
            }
            K_UDP => self.on_udp_timer(ctx, token & !K_MASK),
            K_STEP => self.on_step_timeout_token(ctx, token & !K_MASK),
            K_SWEEP => self.on_sweep(ctx),
            K_POLL => self.on_poll_timer(ctx, token & !K_MASK),
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

impl RecursiveResolver {
    fn on_step_timeout_token(&mut self, ctx: &mut Ctx<'_>, task_id: u64) {
        // Only meaningful if the task is still waiting on a MoQT step.
        let waiting_moqt = self
            .tasks
            .get(&task_id)
            .map(|t| matches!(t.step, Some(Step::Moqt { .. }) | Some(Step::Race { .. })))
            .unwrap_or(false);
        if waiting_moqt {
            self.on_step_timeout(ctx, task_id);
        }
    }
}
