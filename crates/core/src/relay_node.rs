//! A MoQT relay wired into the simulator (paper §3, §5.3, ablation A3).
//!
//! Downstream it is a MoQT server; upstream it is a MoQT client of one or
//! more parents (authoritative servers or other relays) **and**, when
//! federated, of its peer cores in other regions. All routing decisions
//! come from [`moqdns_moqt::relay::RelayCore`], which never inspects
//! object payloads — the relay works for DNS objects because it works for
//! *any* objects. The upstream link plumbing (dialing, queue-until-ready,
//! replay, reconnect) lives in [`crate::links`]; the per-track link
//! choice comes from the core's [`moqdns_moqt::relay::RoutePolicy`] plus
//! its federation shard map, so the same node serves single-parent
//! chains, hash-sharded meshes, failover pairs, and cross-region core
//! federations ([`RelayNode::peers`]).

use crate::links::Links;
use crate::stack::{MoqtStack, StackEvent, TOKEN_QUIC};
use crate::MOQT_PORT;
use moqdns_moqt::data::Object;
use moqdns_moqt::relay::{
    FederationConfig, RelayAction, RelayCore, RelayLimits, RelayStats, RoutePolicy, StaticParent,
};
use moqdns_moqt::session::{IncomingFetchKind, SessionEvent};
use moqdns_netsim::{splitmix64, Addr, Ctx, Node, Payload};
use moqdns_quic::{ConnHandle, TransportConfig};
use std::any::Any;
use std::collections::BTreeMap;
use std::time::Duration;

/// Timer token for the uplink recovery probe (distinct from
/// [`TOKEN_QUIC`]).
pub const TOKEN_UPLINK_PROBE: u64 = (1 << 56) + 1;

/// Ceiling on the probe backoff multiplier: consecutive unanswered probes
/// double the interval up to `PROBE_MAX_BACKOFF ×` the base (16 s with
/// the 2 s default) — long outages cost a bounded, sparse redial cadence
/// instead of a fixed-rate redial storm, yet recovery detection stays
/// prompt.
pub const PROBE_MAX_BACKOFF: u32 = 8;

/// The relay node.
pub struct RelayNode {
    stack: MoqtStack,
    core: RelayCore,
    links: Links,
    /// Downstream session key (we use the connection handle's raw value).
    sessions: BTreeMap<u64, ConnHandle>,
    /// Tier label for stats tables ("tier1", "edge", …).
    tier: String,
    /// Base interval for redialing uplinks the core believes down. When a
    /// probe dial completes, the `Ready` event marks the uplink healthy
    /// and the core rebalances tracks back onto it. Consecutive
    /// unanswered probes back off exponentially (capped at
    /// [`PROBE_MAX_BACKOFF`]× this base, plus deterministic jitter) so a
    /// fleet of relays facing a long outage does not redial in lockstep
    /// at a fixed rate forever.
    probe_interval: Duration,
    /// A probe timer is currently armed.
    probe_armed: bool,
    /// Consecutive probes that left at least one uplink down (drives the
    /// backoff exponent; reset when everything recovers or a fresh
    /// failure episode starts).
    probe_attempt: u32,
    /// Per-node jitter seed for the backed-off probe schedule. A pure
    /// hash of this and the attempt number desynchronizes sibling relays
    /// without touching the simulator's seeded RNG (determinism holds).
    probe_seed: u64,
    /// Per-connection send backlog (estimated connection state bytes)
    /// past which a downstream session is evicted as a slow-loris: a
    /// subscriber that never drains its streams grows unacked state
    /// without bound otherwise.
    max_session_backlog: usize,
    /// Taken down mid-run: ignore all further events.
    dead: bool,
}

impl RelayNode {
    /// Creates a single-parent relay forwarding to `parent`, caching up
    /// to `cache_per_track` objects per track — the classic chain shape.
    pub fn new(parent: Addr, cache_per_track: usize, seed: u64) -> RelayNode {
        RelayNode::with_policy(vec![parent], Box::new(StaticParent), cache_per_track, seed)
    }

    /// Creates a relay with `parents` as its ordered uplink set and
    /// `policy` choosing the uplink per track.
    pub fn with_policy(
        parents: Vec<Addr>,
        policy: Box<dyn RoutePolicy>,
        cache_per_track: usize,
        seed: u64,
    ) -> RelayNode {
        let transport = TransportConfig::default()
            .idle_timeout(Duration::from_secs(3600))
            .keep_alive(Duration::from_secs(25));
        let n = parents.len();
        RelayNode {
            stack: MoqtStack::server(transport, seed),
            core: RelayCore::with_policy(cache_per_track, n, policy),
            links: Links::new(parents),
            sessions: BTreeMap::new(),
            tier: String::new(),
            probe_interval: Duration::from_secs(2),
            probe_armed: false,
            probe_attempt: 0,
            probe_seed: seed,
            max_session_backlog: 1 << 20,
            dead: false,
        }
    }

    /// Replaces the per-session fetch abuse limits (builder style). The
    /// defaults are permissive; adversarial worlds tighten them.
    pub fn limits(mut self, limits: RelayLimits) -> RelayNode {
        self.core = self.core.with_limits(limits);
        self
    }

    /// Overrides the slow-loris eviction threshold: downstream sessions
    /// whose estimated connection state exceeds `bytes` after a forward
    /// are closed (builder style; default 1 MiB).
    pub fn session_backlog(mut self, bytes: usize) -> RelayNode {
        self.max_session_backlog = bytes;
        self
    }

    /// Joins a cross-region core federation (builder style): `peers` are
    /// the other cores' addresses in global shard order with this core
    /// omitted, and `my_shard` is this core's shard index among
    /// `peers.len() + 1` shards. Tracks homed on a peer shard are then
    /// subscribed and fetched over the peer link to their home core
    /// instead of escalating to the origin; the recovery probe and
    /// rebalance machinery cover peer links exactly like parents.
    pub fn peers(mut self, peers: Vec<Addr>, my_shard: usize) -> RelayNode {
        let shards = peers.len() + 1;
        self.links.add_peers(peers);
        self.core = self.core.federate(FederationConfig::new(my_shard, shards));
        self
    }

    /// Labels this relay's tier for per-tier stats aggregation.
    pub fn tier(mut self, label: impl Into<String>) -> RelayNode {
        self.tier = label.into();
        self
    }

    /// Overrides the uplink recovery probe interval (builder style).
    pub fn probe_interval(mut self, interval: Duration) -> RelayNode {
        self.probe_interval = interval;
        self
    }

    /// The tier label (empty when unset).
    pub fn tier_label(&self) -> &str {
        &self.tier
    }

    /// The route policy's label.
    pub fn policy_name(&self) -> &'static str {
        self.core.policy_name()
    }

    /// Relay effectiveness counters (ablation A3), with the session-level
    /// hardening counters (violations, dropped datagrams) of every
    /// session this node ever hosted and the link layer's recovery
    /// counters (redials, failed dials) folded in.
    pub fn stats(&self) -> RelayStats {
        let mut stats = self.core.stats();
        let sess = self.stack.session_stats_total();
        stats.violations += sess.violations;
        stats.dropped_datagrams += sess.dropped_datagrams;
        let (redials, failed_dials) = self.links.recovery_stats();
        stats.redials += redials;
        stats.failed_dials += failed_dials;
        stats
    }

    /// Aggregation factor: downstream subscriptions per upstream one.
    pub fn aggregation_factor(&self) -> f64 {
        self.core.aggregation_factor()
    }

    /// Live upstream subscriptions across all links (parents + peers).
    pub fn upstream_subscription_count(&self) -> usize {
        self.links.total_subs()
    }

    /// Live upstream subscriptions riding parent uplinks (origin-bound).
    pub fn parent_subscription_count(&self) -> usize {
        self.links.parent_subs()
    }

    /// Live upstream subscriptions riding federated peer links.
    pub fn peer_subscription_count(&self) -> usize {
        self.links.peer_subs()
    }

    /// In-flight upstream fetches (the coalescing table's size).
    pub fn pending_fetch_count(&self) -> usize {
        self.core.pending_fetch_count()
    }

    /// Live sessions hosted by this relay (downstream + uplinks).
    pub fn session_count(&self) -> usize {
        self.stack.session_count()
    }

    /// Estimated bytes of session + connection state held right now —
    /// the quantity the adversarial drills bound: evictions must actually
    /// reclaim what an attacker made the relay hold.
    pub fn state_size_estimate(&self) -> usize {
        self.stack.state_size_estimate()
    }

    /// Connection-by-connection state composition (see
    /// [`MoqtStack::state_breakdown`]) — used by the adversarial drills to
    /// attribute state growth to the connection that caused it.
    pub fn state_breakdown(&self) -> (usize, Vec<moqdns_quic::ConnStateRow>) {
        self.stack.state_breakdown()
    }

    /// Takes the relay out of service: closes every connection (peers see
    /// a CONNECTION_CLOSE, not an idle timeout) and drops all state. Used
    /// by the failover experiments to kill a tier mid-run.
    pub fn shutdown(&mut self, ctx: &mut Ctx<'_>) {
        self.stack.close_all(ctx, 0x0, "relay shutdown");
        self.sessions.clear();
        self.dead = true;
    }

    /// Whether [`RelayNode::shutdown`] was called.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Brings a [`RelayNode::shutdown`] relay back into service with empty
    /// session/subscription state (cumulative stats survive). Downstream
    /// peers re-attach via their own recovery probes; upstream
    /// subscriptions are re-opened as downstream demand returns.
    pub fn revive(&mut self) {
        self.dead = false;
        self.core.reset();
        self.links.reset();
        self.sessions.clear();
        // A probe timer that fired while we were dead was swallowed by the
        // dead-check without clearing this flag; leaving it set would keep
        // arm_probe() a no-op forever after revival.
        self.probe_armed = false;
        self.probe_attempt = 0;
    }

    /// Current probe delay: the base interval for the first attempt of a
    /// failure episode, then capped exponential backoff with
    /// deterministic per-node jitter. The jitter is a pure hash of
    /// `(probe_seed, attempt)` — no RNG draw, so the simulator's
    /// determinism contract is untouched, but sibling relays dialing the
    /// same dead parent spread out instead of redialing in lockstep.
    fn probe_delay(&self) -> Duration {
        if self.probe_attempt == 0 {
            return self.probe_interval;
        }
        let exp = self.probe_attempt.min(PROBE_MAX_BACKOFF.ilog2());
        let backed = self
            .probe_interval
            .saturating_mul(1 << exp)
            .min(self.probe_interval.saturating_mul(PROBE_MAX_BACKOFF));
        // Up to backed/8 of jitter (250 ms at the 2 s base, 2 s at the
        // 16 s cap).
        let span = (backed.as_nanos() as u64 / 8).max(1);
        let jitter = splitmix64(self.probe_seed ^ u64::from(self.probe_attempt)) % span;
        backed + Duration::from_nanos(jitter)
    }

    fn arm_probe(&mut self, ctx: &mut Ctx<'_>) {
        if !self.probe_armed && !self.probe_interval.is_zero() {
            ctx.set_timer(self.probe_delay(), TOKEN_UPLINK_PROBE);
            self.probe_armed = true;
        }
    }

    /// Redials every link (parent or peer) the core currently believes
    /// down; re-arms the probe (backing off) while any remain down.
    fn probe_uplinks(&mut self, ctx: &mut Ctx<'_>) {
        self.probe_armed = false;
        let down: Vec<usize> = (0..self.links.len())
            .filter(|&u| !self.core.is_link_up(u))
            .collect();
        if down.is_empty() {
            self.probe_attempt = 0;
            return;
        }
        for u in &down {
            self.links.redial(ctx, &mut self.stack, *u);
        }
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
        if (0..self.links.len()).any(|u| !self.core.is_link_up(u)) {
            self.probe_attempt = self.probe_attempt.saturating_add(1);
            self.arm_probe(ctx);
        } else {
            self.probe_attempt = 0;
        }
    }

    fn run_actions(&mut self, ctx: &mut Ctx<'_>, actions: Vec<RelayAction>) {
        for a in actions {
            match a {
                RelayAction::SubscribeUpstream { track, uplink } => {
                    self.links.subscribe(ctx, &mut self.stack, uplink, track);
                }
                RelayAction::SubscribePeer { track, link } => {
                    // Same dial/queue/replay machine — a peer link is
                    // just an upstream slot past the parents.
                    self.links.subscribe(ctx, &mut self.stack, link, track);
                }
                RelayAction::AcceptDownstream {
                    session,
                    request_id,
                    largest,
                } => {
                    if let Some(&h) = self.sessions.get(&session) {
                        if let Some((sess, conn)) = self.stack.session_conn(h) {
                            sess.accept_subscribe(conn, request_id, largest);
                        }
                    }
                }
                RelayAction::Forward {
                    session,
                    request_id,
                    object,
                } => {
                    if let Some(&h) = self.sessions.get(&session) {
                        let mut evicted = false;
                        if let Some((sess, conn)) = self.stack.session_conn(h) {
                            sess.publish(conn, request_id, object);
                            // Slow-loris defense: a subscriber that never
                            // drains accumulates unacked stream state on
                            // our side of the connection. Past the bound,
                            // evict instead of buffering forever. Checked
                            // only here — the one path where a slow peer
                            // grows our state — so idle sessions cost no
                            // sweep. The backlog metric counts only bytes
                            // the peer has not acked, so a healthy reader
                            // stays near zero no matter how long it lives.
                            if conn.send_backlog_bytes() > self.max_session_backlog {
                                conn.close(0x10, "session backlog exceeded");
                                evicted = true;
                            }
                        }
                        if evicted {
                            self.core.note_session_evicted();
                        }
                    }
                }
                RelayAction::ServeFetch {
                    session,
                    request_id,
                    largest,
                    objects,
                } => {
                    if let Some(&h) = self.sessions.get(&session) {
                        if let Some((sess, conn)) = self.stack.session_conn(h) {
                            // DNS tracks: only the newest version matters.
                            let newest: Vec<Object> = objects.into_iter().rev().take(1).collect();
                            sess.respond_fetch(conn, request_id, largest, newest);
                        }
                    }
                }
                RelayAction::FetchUpstream {
                    track,
                    uplink,
                    start_group,
                    end_group,
                } => {
                    let ok = self.links.fetch(
                        ctx,
                        &mut self.stack,
                        uplink,
                        track.clone(),
                        start_group,
                        end_group,
                    );
                    if !ok {
                        // Could not even dial: fail the pending fetch so
                        // every coalesced waiter gets rejected.
                        let acts = self.core.on_upstream_fetch_failed(&track);
                        self.run_actions(ctx, acts);
                    }
                }
                RelayAction::FetchPeer {
                    track,
                    link,
                    start_group,
                    end_group,
                    hop_budget,
                } => {
                    let ok = self.links.fetch_peer(
                        ctx,
                        &mut self.stack,
                        link,
                        track.clone(),
                        start_group,
                        end_group,
                        hop_budget,
                    );
                    if !ok {
                        let acts = self.core.on_upstream_fetch_failed(&track);
                        self.run_actions(ctx, acts);
                    }
                }
                RelayAction::RejectFetch {
                    session,
                    request_id,
                } => {
                    self.reject_downstream_fetch(session, request_id);
                }
                RelayAction::CloseSession { session } => {
                    // Fetch-bomb eviction: the core already counted it;
                    // the close lands as a StackEvent::Closed which runs
                    // the normal session teardown.
                    if let Some(&h) = self.sessions.get(&session) {
                        if let Some((_sess, conn)) = self.stack.session_conn(h) {
                            conn.close(0x10, "session evicted");
                        }
                    }
                }
                RelayAction::UnsubscribeUpstream { track, uplink } => {
                    self.links.unsubscribe(&mut self.stack, uplink, &track);
                }
            }
        }
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
    }

    fn reject_downstream_fetch(&mut self, session: u64, request_id: u64) {
        if let Some(&dh) = self.sessions.get(&session) {
            if let Some((sess, conn)) = self.stack.session_conn(dh) {
                sess.reject_fetch(conn, request_id, 0x5, "upstream unavailable");
            }
        }
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<StackEvent>) {
        for ev in events {
            match ev {
                StackEvent::Accepted(h) => {
                    self.sessions.insert(h.0, h);
                }
                StackEvent::Session(h, sev) => {
                    let uplink = self.links.classify(h);
                    match (uplink, sev) {
                        (Some(u), SessionEvent::Ready { .. }) => {
                            // A recovered uplink reclaims the tracks the
                            // policy homes on it (rebalancing).
                            let actions = self.core.on_uplink_up(u);
                            self.run_actions(ctx, actions);
                            self.links.on_session_ready(ctx, &mut self.stack, u);
                            let evs = self.stack.flush(ctx);
                            self.handle_events(ctx, evs);
                        }
                        (Some(u), SessionEvent::SubscriptionObject { request_id, object }) => {
                            if let Some(track) = self.links.track_for_sub(u, request_id).cloned() {
                                let actions = self.core.on_link_object(u, &track, object);
                                self.run_actions(ctx, actions);
                            }
                        }
                        (
                            Some(u),
                            SessionEvent::FetchObjects {
                                request_id,
                                objects,
                            },
                        ) => {
                            if let Some((track, start, end)) = self.links.take_fetch(u, request_id)
                            {
                                // The answer covers only the range the
                                // fetch requested; waiters beyond it keep
                                // waiting on their re-issued wider fetch.
                                let actions = self
                                    .core
                                    .on_upstream_fetch_result_range(&track, objects, start, end);
                                self.run_actions(ctx, actions);
                            }
                        }
                        (Some(u), SessionEvent::FetchRejected { request_id, .. }) => {
                            if let Some((track, _, _)) = self.links.take_fetch(u, request_id) {
                                let actions = self.core.on_upstream_fetch_failed(&track);
                                self.run_actions(ctx, actions);
                            }
                        }
                        (None, SessionEvent::IncomingSubscribe { request_id, track }) => {
                            let actions = self.core.on_downstream_subscribe(h.0, request_id, track);
                            self.run_actions(ctx, actions);
                        }
                        (None, SessionEvent::IncomingFetch { request_id, kind }) => {
                            let actions = match kind {
                                // A standalone fetch names an explicit group
                                // range; honor it so a subset request can be
                                // served from (or coalesced into) a wider
                                // in-flight whole-track fetch. An end group
                                // at the varint ceiling is the wire clamp of
                                // "whole track" — widen it back to u64::MAX
                                // so it coalesces with joining fetches.
                                IncomingFetchKind::StandAlone {
                                    track,
                                    start_group,
                                    end_group,
                                } => {
                                    let end_group = if end_group >= moqdns_wire::varint::MAX_VARINT
                                    {
                                        u64::MAX
                                    } else {
                                        end_group
                                    };
                                    self.core.on_downstream_fetch(
                                        h.0,
                                        request_id,
                                        track,
                                        start_group,
                                        end_group,
                                    )
                                }
                                IncomingFetchKind::Joining { track, .. } => self
                                    .core
                                    .on_downstream_fetch(h.0, request_id, track, 0, u64::MAX),
                                IncomingFetchKind::Peer {
                                    track,
                                    start_group,
                                    end_group,
                                    hop_budget,
                                } => {
                                    // Same whole-track widening as above so
                                    // peer and local whole-track fetches
                                    // coalesce into one pending entry.
                                    let end_group = if end_group >= moqdns_wire::varint::MAX_VARINT
                                    {
                                        u64::MAX
                                    } else {
                                        end_group
                                    };
                                    self.core.on_peer_fetch(
                                        h.0,
                                        request_id,
                                        track,
                                        start_group,
                                        end_group,
                                        hop_budget,
                                    )
                                }
                            };
                            self.run_actions(ctx, actions);
                        }
                        (None, SessionEvent::PeerUnsubscribed { request_id }) => {
                            let actions = self.core.on_downstream_unsubscribe(h.0, request_id);
                            self.run_actions(ctx, actions);
                        }
                        _ => {}
                    }
                }
                StackEvent::Closed(h) => {
                    if let Some(u) = self.links.classify(h) {
                        // Forget the uplink's connection state, then let
                        // the core re-route its tracks and re-issue (or
                        // reject) the in-flight fetches stranded on it.
                        self.links.on_closed(u);
                        let actions = self.core.on_uplink_closed(u);
                        self.run_actions(ctx, actions);
                        // Keep probing until the uplink recovers. A fresh
                        // failure is a new episode: probe promptly at the
                        // base interval rather than inheriting an old
                        // episode's backoff.
                        self.probe_attempt = 0;
                        self.arm_probe(ctx);
                    } else {
                        self.sessions.remove(&h.0);
                        let actions = self.core.on_session_closed(h.0);
                        self.run_actions(ctx, actions);
                    }
                }
                _ => {}
            }
        }
    }
}

impl Node for RelayNode {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Payload) {
        if self.dead {
            return;
        }
        if to_port == MOQT_PORT {
            let evs = self.stack.on_datagram(ctx, from, &payload);
            self.handle_events(ctx, evs);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.dead {
            return;
        }
        if token == TOKEN_QUIC {
            let evs = self.stack.on_timer(ctx);
            self.handle_events(ctx, evs);
        } else if token == TOKEN_UPLINK_PROBE {
            self.probe_uplinks(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}
