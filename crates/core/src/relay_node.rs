//! A MoQT relay wired into the simulator (paper §3, ablation A3).
//!
//! Downstream it is a MoQT server; upstream it is a MoQT client of a
//! configured parent (an authoritative server or another relay). All
//! routing decisions come from [`moqdns_moqt::relay::RelayCore`], which
//! never inspects object payloads — the relay works for DNS objects
//! because it works for *any* objects.

use crate::stack::{MoqtStack, StackEvent, TOKEN_QUIC};
use crate::MOQT_PORT;
use moqdns_moqt::data::Object;
use moqdns_moqt::relay::{RelayAction, RelayCore, RelayStats};
use moqdns_moqt::session::{IncomingFetchKind, SessionEvent};
use moqdns_moqt::track::FullTrackName;
use moqdns_netsim::{Addr, Ctx, Node};
use moqdns_quic::{ConnHandle, TransportConfig};
use std::any::Any;
use std::collections::HashMap;
use std::time::Duration;

/// The relay node.
pub struct RelayNode {
    /// Upstream parent (authoritative server or another relay).
    parent: Addr,
    stack: MoqtStack,
    core: RelayCore,
    upstream_conn: Option<ConnHandle>,
    /// Upstream subscribe request id -> track.
    up_subs: HashMap<u64, FullTrackName>,
    /// track -> upstream subscribe request id (for teardown).
    up_by_track: HashMap<FullTrackName, u64>,
    /// Upstream fetch request id -> (track, downstream session, downstream
    /// fetch request).
    up_fetches: HashMap<u64, (FullTrackName, u64, u64)>,
    /// Tracks to subscribe upstream once the session is ready.
    queued_tracks: Vec<FullTrackName>,
    /// Downstream session key (we use the connection handle's raw value).
    sessions: HashMap<u64, ConnHandle>,
}

impl RelayNode {
    /// Creates a relay forwarding to `parent`, caching up to
    /// `cache_per_track` objects per track.
    pub fn new(parent: Addr, cache_per_track: usize, seed: u64) -> RelayNode {
        let transport = TransportConfig::default()
            .idle_timeout(Duration::from_secs(3600))
            .keep_alive(Duration::from_secs(25));
        RelayNode {
            parent,
            stack: MoqtStack::server(transport, seed),
            core: RelayCore::new(cache_per_track),
            upstream_conn: None,
            up_subs: HashMap::new(),
            up_by_track: HashMap::new(),
            up_fetches: HashMap::new(),
            queued_tracks: Vec::new(),
            sessions: HashMap::new(),
        }
    }

    /// Relay effectiveness counters (ablation A3).
    pub fn stats(&self) -> RelayStats {
        self.core.stats()
    }

    /// Aggregation factor: downstream subscriptions per upstream one.
    pub fn aggregation_factor(&self) -> f64 {
        self.core.aggregation_factor()
    }

    fn ensure_upstream(&mut self, ctx: &mut Ctx<'_>) -> ConnHandle {
        match self.upstream_conn {
            Some(h) if self.stack.session(h).is_some() => h,
            _ => {
                let h = self
                    .stack
                    .connect(ctx.now(), Addr::new(self.parent.node, MOQT_PORT), true);
                self.upstream_conn = Some(h);
                h
            }
        }
    }

    fn subscribe_upstream(&mut self, ctx: &mut Ctx<'_>, track: FullTrackName) {
        let h = self.ensure_upstream(ctx);
        let ready = self.stack.session(h).map(|s| s.is_ready()).unwrap_or(false);
        // CLIENT_SETUP may still be in flight; MoQT control messages queue
        // on the stream, so subscribing immediately is safe either way —
        // but we only subscribe once the session object exists.
        let _ = ready;
        let Some((session, conn)) = self.stack.session_conn(h) else {
            self.queued_tracks.push(track);
            return;
        };
        let sub_id = session.subscribe(conn, track.clone());
        self.up_subs.insert(sub_id, track.clone());
        self.up_by_track.insert(track, sub_id);
    }

    fn run_actions(&mut self, ctx: &mut Ctx<'_>, actions: Vec<RelayAction>) {
        for a in actions {
            match a {
                RelayAction::SubscribeUpstream { track } => {
                    self.subscribe_upstream(ctx, track);
                }
                RelayAction::AcceptDownstream {
                    session,
                    request_id,
                    largest,
                } => {
                    if let Some(&h) = self.sessions.get(&session) {
                        if let Some((sess, conn)) = self.stack.session_conn(h) {
                            sess.accept_subscribe(conn, request_id, largest);
                        }
                    }
                }
                RelayAction::Forward {
                    session,
                    request_id,
                    object,
                } => {
                    if let Some(&h) = self.sessions.get(&session) {
                        if let Some((sess, conn)) = self.stack.session_conn(h) {
                            sess.publish(conn, request_id, object);
                        }
                    }
                }
                RelayAction::ServeFetch {
                    session,
                    request_id,
                    largest,
                    objects,
                } => {
                    if let Some(&h) = self.sessions.get(&session) {
                        if let Some((sess, conn)) = self.stack.session_conn(h) {
                            // DNS tracks: only the newest version matters.
                            let newest: Vec<Object> = objects.into_iter().rev().take(1).collect();
                            sess.respond_fetch(conn, request_id, largest, newest);
                        }
                    }
                }
                RelayAction::FetchUpstream {
                    track,
                    session,
                    request_id,
                    start_group,
                    end_group,
                } => {
                    let h = self.ensure_upstream(ctx);
                    if let Some((sess, conn)) = self.stack.session_conn(h) {
                        let fid = sess.fetch(conn, track.clone(), start_group, end_group);
                        self.up_fetches.insert(fid, (track, session, request_id));
                    }
                }
                RelayAction::UnsubscribeUpstream { track } => {
                    if let Some(sub_id) = self.up_by_track.remove(&track) {
                        self.up_subs.remove(&sub_id);
                        if let Some(h) = self.upstream_conn {
                            if let Some((sess, conn)) = self.stack.session_conn(h) {
                                sess.unsubscribe(conn, sub_id);
                            }
                        }
                    }
                }
            }
        }
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<StackEvent>) {
        for ev in events {
            match ev {
                StackEvent::Accepted(h) => {
                    self.sessions.insert(h.0, h);
                }
                StackEvent::Session(h, sev) => {
                    let is_upstream = Some(h) == self.upstream_conn;
                    match sev {
                        SessionEvent::Ready { .. } if is_upstream => {
                            let queued = std::mem::take(&mut self.queued_tracks);
                            for t in queued {
                                self.subscribe_upstream(ctx, t);
                            }
                        }
                        SessionEvent::SubscriptionObject { request_id, object } if is_upstream => {
                            if let Some(track) = self.up_subs.get(&request_id).cloned() {
                                let actions = self.core.on_upstream_object(&track, object);
                                self.run_actions(ctx, actions);
                            }
                        }
                        SessionEvent::FetchObjects {
                            request_id,
                            objects,
                        } if is_upstream => {
                            if let Some((track, session, down_req)) =
                                self.up_fetches.remove(&request_id)
                            {
                                let actions = self
                                    .core
                                    .on_upstream_fetch_result(&track, session, down_req, objects);
                                self.run_actions(ctx, actions);
                            }
                        }
                        SessionEvent::FetchRejected { request_id, .. } if is_upstream => {
                            if let Some((_, session, down_req)) =
                                self.up_fetches.remove(&request_id)
                            {
                                if let Some(&dh) = self.sessions.get(&session) {
                                    if let Some((sess, conn)) = self.stack.session_conn(dh) {
                                        sess.reject_fetch(conn, down_req, 0x5, "upstream miss");
                                    }
                                }
                            }
                        }
                        SessionEvent::IncomingSubscribe { request_id, track } if !is_upstream => {
                            let actions = self.core.on_downstream_subscribe(h.0, request_id, track);
                            self.run_actions(ctx, actions);
                        }
                        SessionEvent::IncomingFetch { request_id, kind } if !is_upstream => {
                            let track = match kind {
                                IncomingFetchKind::StandAlone { track, .. } => track,
                                IncomingFetchKind::Joining { track, .. } => track,
                            };
                            let actions =
                                self.core
                                    .on_downstream_fetch(h.0, request_id, track, 0, u64::MAX);
                            self.run_actions(ctx, actions);
                        }
                        SessionEvent::PeerUnsubscribed { request_id } if !is_upstream => {
                            let actions = self.core.on_downstream_unsubscribe(h.0, request_id);
                            self.run_actions(ctx, actions);
                        }
                        _ => {}
                    }
                }
                StackEvent::Closed(h) => {
                    if Some(h) == self.upstream_conn {
                        self.upstream_conn = None;
                        self.up_subs.clear();
                        self.up_by_track.clear();
                    } else {
                        self.sessions.remove(&h.0);
                        let actions = self.core.on_session_closed(h.0);
                        self.run_actions(ctx, actions);
                    }
                }
                _ => {}
            }
        }
    }
}

impl Node for RelayNode {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Vec<u8>) {
        if to_port == MOQT_PORT {
            let evs = self.stack.on_datagram(ctx, from, &payload);
            self.handle_events(ctx, evs);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_QUIC {
            let evs = self.stack.on_timer(ctx);
            self.handle_events(ctx, evs);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}
