//! A MoQT relay wired into the simulator (paper §3, §5.3, ablation A3).
//!
//! Downstream it is a MoQT server; upstream it is a MoQT client of one or
//! more parents (authoritative servers or other relays). All routing
//! decisions come from [`moqdns_moqt::relay::RelayCore`], which never
//! inspects object payloads — the relay works for DNS objects because it
//! works for *any* objects. The upstream connection plumbing (dialing,
//! queue-until-ready, replay, reconnect) lives in [`crate::uplinks`]; the
//! per-track uplink choice comes from the core's
//! [`moqdns_moqt::relay::RoutePolicy`], so the same node
//! serves single-parent chains, hash-sharded meshes, and failover pairs.

use crate::stack::{MoqtStack, StackEvent, TOKEN_QUIC};
use crate::uplinks::Uplinks;
use crate::MOQT_PORT;
use moqdns_moqt::data::Object;
use moqdns_moqt::relay::{RelayAction, RelayCore, RelayStats, RoutePolicy, StaticParent};
use moqdns_moqt::session::{IncomingFetchKind, SessionEvent};
use moqdns_netsim::{Addr, Ctx, Node};
use moqdns_quic::{ConnHandle, TransportConfig};
use std::any::Any;
use std::collections::HashMap;
use std::time::Duration;

/// Timer token for the uplink recovery probe (distinct from
/// [`TOKEN_QUIC`]).
pub const TOKEN_UPLINK_PROBE: u64 = (1 << 56) + 1;

/// The relay node.
pub struct RelayNode {
    stack: MoqtStack,
    core: RelayCore,
    uplinks: Uplinks,
    /// Downstream session key (we use the connection handle's raw value).
    sessions: HashMap<u64, ConnHandle>,
    /// Tier label for stats tables ("tier1", "edge", …).
    tier: String,
    /// How often to redial uplinks the core believes down. When a probe
    /// dial completes, the `Ready` event marks the uplink healthy and the
    /// core rebalances tracks back onto it.
    probe_interval: Duration,
    /// A probe timer is currently armed.
    probe_armed: bool,
    /// Taken down mid-run: ignore all further events.
    dead: bool,
}

impl RelayNode {
    /// Creates a single-parent relay forwarding to `parent`, caching up
    /// to `cache_per_track` objects per track — the classic chain shape.
    pub fn new(parent: Addr, cache_per_track: usize, seed: u64) -> RelayNode {
        RelayNode::with_policy(vec![parent], Box::new(StaticParent), cache_per_track, seed)
    }

    /// Creates a relay with `parents` as its ordered uplink set and
    /// `policy` choosing the uplink per track.
    pub fn with_policy(
        parents: Vec<Addr>,
        policy: Box<dyn RoutePolicy>,
        cache_per_track: usize,
        seed: u64,
    ) -> RelayNode {
        let transport = TransportConfig::default()
            .idle_timeout(Duration::from_secs(3600))
            .keep_alive(Duration::from_secs(25));
        let n = parents.len();
        RelayNode {
            stack: MoqtStack::server(transport, seed),
            core: RelayCore::with_policy(cache_per_track, n, policy),
            uplinks: Uplinks::new(parents),
            sessions: HashMap::new(),
            tier: String::new(),
            probe_interval: Duration::from_secs(2),
            probe_armed: false,
            dead: false,
        }
    }

    /// Labels this relay's tier for per-tier stats aggregation.
    pub fn tier(mut self, label: impl Into<String>) -> RelayNode {
        self.tier = label.into();
        self
    }

    /// Overrides the uplink recovery probe interval (builder style).
    pub fn probe_interval(mut self, interval: Duration) -> RelayNode {
        self.probe_interval = interval;
        self
    }

    /// The tier label (empty when unset).
    pub fn tier_label(&self) -> &str {
        &self.tier
    }

    /// The route policy's label.
    pub fn policy_name(&self) -> &'static str {
        self.core.policy_name()
    }

    /// Relay effectiveness counters (ablation A3).
    pub fn stats(&self) -> RelayStats {
        self.core.stats()
    }

    /// Aggregation factor: downstream subscriptions per upstream one.
    pub fn aggregation_factor(&self) -> f64 {
        self.core.aggregation_factor()
    }

    /// Live upstream subscriptions across all uplinks.
    pub fn upstream_subscription_count(&self) -> usize {
        self.uplinks.total_subs()
    }

    /// In-flight upstream fetches (the coalescing table's size).
    pub fn pending_fetch_count(&self) -> usize {
        self.core.pending_fetch_count()
    }

    /// Takes the relay out of service: closes every connection (peers see
    /// a CONNECTION_CLOSE, not an idle timeout) and drops all state. Used
    /// by the failover experiments to kill a tier mid-run.
    pub fn shutdown(&mut self, ctx: &mut Ctx<'_>) {
        self.stack.close_all(ctx, 0x0, "relay shutdown");
        self.sessions.clear();
        self.dead = true;
    }

    /// Whether [`RelayNode::shutdown`] was called.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Brings a [`RelayNode::shutdown`] relay back into service with empty
    /// session/subscription state (cumulative stats survive). Downstream
    /// peers re-attach via their own recovery probes; upstream
    /// subscriptions are re-opened as downstream demand returns.
    pub fn revive(&mut self) {
        self.dead = false;
        self.core.reset();
        self.uplinks.reset();
        self.sessions.clear();
        // A probe timer that fired while we were dead was swallowed by the
        // dead-check without clearing this flag; leaving it set would keep
        // arm_probe() a no-op forever after revival.
        self.probe_armed = false;
    }

    fn arm_probe(&mut self, ctx: &mut Ctx<'_>) {
        if !self.probe_armed && !self.probe_interval.is_zero() {
            ctx.set_timer(self.probe_interval, TOKEN_UPLINK_PROBE);
            self.probe_armed = true;
        }
    }

    /// Redials every uplink the core currently believes down; re-arms the
    /// probe while any remain down.
    fn probe_uplinks(&mut self, ctx: &mut Ctx<'_>) {
        self.probe_armed = false;
        let down: Vec<usize> = (0..self.uplinks.len())
            .filter(|&u| !self.core.health().is_up(u))
            .collect();
        if down.is_empty() {
            return;
        }
        for u in &down {
            self.uplinks.redial(ctx, &mut self.stack, *u);
        }
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
        if (0..self.uplinks.len()).any(|u| !self.core.health().is_up(u)) {
            self.arm_probe(ctx);
        }
    }

    fn run_actions(&mut self, ctx: &mut Ctx<'_>, actions: Vec<RelayAction>) {
        for a in actions {
            match a {
                RelayAction::SubscribeUpstream { track, uplink } => {
                    self.uplinks.subscribe(ctx, &mut self.stack, uplink, track);
                }
                RelayAction::AcceptDownstream {
                    session,
                    request_id,
                    largest,
                } => {
                    if let Some(&h) = self.sessions.get(&session) {
                        if let Some((sess, conn)) = self.stack.session_conn(h) {
                            sess.accept_subscribe(conn, request_id, largest);
                        }
                    }
                }
                RelayAction::Forward {
                    session,
                    request_id,
                    object,
                } => {
                    if let Some(&h) = self.sessions.get(&session) {
                        if let Some((sess, conn)) = self.stack.session_conn(h) {
                            sess.publish(conn, request_id, object);
                        }
                    }
                }
                RelayAction::ServeFetch {
                    session,
                    request_id,
                    largest,
                    objects,
                } => {
                    if let Some(&h) = self.sessions.get(&session) {
                        if let Some((sess, conn)) = self.stack.session_conn(h) {
                            // DNS tracks: only the newest version matters.
                            let newest: Vec<Object> = objects.into_iter().rev().take(1).collect();
                            sess.respond_fetch(conn, request_id, largest, newest);
                        }
                    }
                }
                RelayAction::FetchUpstream {
                    track,
                    uplink,
                    start_group,
                    end_group,
                } => {
                    let ok = self.uplinks.fetch(
                        ctx,
                        &mut self.stack,
                        uplink,
                        track.clone(),
                        start_group,
                        end_group,
                    );
                    if !ok {
                        // Could not even dial: fail the pending fetch so
                        // every coalesced waiter gets rejected.
                        let acts = self.core.on_upstream_fetch_failed(&track);
                        self.run_actions(ctx, acts);
                    }
                }
                RelayAction::RejectFetch {
                    session,
                    request_id,
                } => {
                    self.reject_downstream_fetch(session, request_id);
                }
                RelayAction::UnsubscribeUpstream { track, uplink } => {
                    self.uplinks.unsubscribe(&mut self.stack, uplink, &track);
                }
            }
        }
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
    }

    fn reject_downstream_fetch(&mut self, session: u64, request_id: u64) {
        if let Some(&dh) = self.sessions.get(&session) {
            if let Some((sess, conn)) = self.stack.session_conn(dh) {
                sess.reject_fetch(conn, request_id, 0x5, "upstream unavailable");
            }
        }
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<StackEvent>) {
        for ev in events {
            match ev {
                StackEvent::Accepted(h) => {
                    self.sessions.insert(h.0, h);
                }
                StackEvent::Session(h, sev) => {
                    let uplink = self.uplinks.classify(h);
                    match (uplink, sev) {
                        (Some(u), SessionEvent::Ready { .. }) => {
                            // A recovered uplink reclaims the tracks the
                            // policy homes on it (rebalancing).
                            let actions = self.core.on_uplink_up(u);
                            self.run_actions(ctx, actions);
                            self.uplinks.on_session_ready(ctx, &mut self.stack, u);
                            let evs = self.stack.flush(ctx);
                            self.handle_events(ctx, evs);
                        }
                        (Some(u), SessionEvent::SubscriptionObject { request_id, object }) => {
                            if let Some(track) = self.uplinks.track_for_sub(u, request_id).cloned()
                            {
                                let actions = self.core.on_upstream_object(&track, object);
                                self.run_actions(ctx, actions);
                            }
                        }
                        (
                            Some(u),
                            SessionEvent::FetchObjects {
                                request_id,
                                objects,
                            },
                        ) => {
                            if let Some(track) = self.uplinks.take_fetch(u, request_id) {
                                let actions = self.core.on_upstream_fetch_result(&track, objects);
                                self.run_actions(ctx, actions);
                            }
                        }
                        (Some(u), SessionEvent::FetchRejected { request_id, .. }) => {
                            if let Some(track) = self.uplinks.take_fetch(u, request_id) {
                                let actions = self.core.on_upstream_fetch_failed(&track);
                                self.run_actions(ctx, actions);
                            }
                        }
                        (None, SessionEvent::IncomingSubscribe { request_id, track }) => {
                            let actions = self.core.on_downstream_subscribe(h.0, request_id, track);
                            self.run_actions(ctx, actions);
                        }
                        (None, SessionEvent::IncomingFetch { request_id, kind }) => {
                            let track = match kind {
                                IncomingFetchKind::StandAlone { track, .. } => track,
                                IncomingFetchKind::Joining { track, .. } => track,
                            };
                            let actions =
                                self.core
                                    .on_downstream_fetch(h.0, request_id, track, 0, u64::MAX);
                            self.run_actions(ctx, actions);
                        }
                        (None, SessionEvent::PeerUnsubscribed { request_id }) => {
                            let actions = self.core.on_downstream_unsubscribe(h.0, request_id);
                            self.run_actions(ctx, actions);
                        }
                        _ => {}
                    }
                }
                StackEvent::Closed(h) => {
                    if let Some(u) = self.uplinks.classify(h) {
                        // Forget the uplink's connection state, then let
                        // the core re-route its tracks and re-issue (or
                        // reject) the in-flight fetches stranded on it.
                        self.uplinks.on_closed(u);
                        let actions = self.core.on_uplink_closed(u);
                        self.run_actions(ctx, actions);
                        // Keep probing until the uplink recovers.
                        self.arm_probe(ctx);
                    } else {
                        self.sessions.remove(&h.0);
                        let actions = self.core.on_session_closed(h.0);
                        self.run_actions(ctx, actions);
                    }
                }
                _ => {}
            }
        }
    }
}

impl Node for RelayNode {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Vec<u8>) {
        if self.dead {
            return;
        }
        if to_port == MOQT_PORT {
            let evs = self.stack.on_datagram(ctx, from, &payload);
            self.handle_events(ctx, evs);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.dead {
            return;
        }
        if token == TOKEN_QUIC {
            let evs = self.stack.on_timer(ctx);
            self.handle_events(ctx, evs);
        } else if token == TOKEN_UPLINK_PROBE {
            self.probe_uplinks(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}
