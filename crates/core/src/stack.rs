//! Glue: a QUIC endpoint plus its MoQT sessions living inside a simulator
//! node.
//!
//! Every DNS-over-MoQT role (authoritative server, recursive resolver,
//! stub, forwarder, relay) embeds a [`MoqtStack`]: it owns the
//! `moqdns_quic::Endpoint`, one `moqdns_moqt::Session` per connection, and
//! the plumbing between simulator events and protocol state machines —
//! datagram ingest, timer re-arming, transmit flushing, and event routing.

use crate::MOQT_PORT;
use moqdns_moqt::session::{Session, SessionConfig, SessionEvent, SessionStats};
use moqdns_moqt::MOQT_ALPN;
use moqdns_netsim::{Addr, Ctx, Payload, SimTime};
use moqdns_quic::{
    alpn_list, AlpnList, ConnHandle, ConnStateRow, Connection, Endpoint, Event as QuicEvent,
    TransportConfig,
};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// The MoQT ALPN offer/support list, built once per process: every
/// connect/accept clones the shared handle instead of allocating a
/// `Vec<Vec<u8>>` per call.
fn moqt_alpns() -> AlpnList {
    static ALPNS: OnceLock<AlpnList> = OnceLock::new();
    ALPNS.get_or_init(|| alpn_list(&[MOQT_ALPN])).clone()
}

/// Timer token the stack uses; nodes route this token's timers back into
/// [`MoqtStack::on_timer`].
pub const TOKEN_QUIC: u64 = 1 << 56;

/// An event surfaced to the owning node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackEvent {
    /// A MoQT session event on a connection.
    Session(ConnHandle, SessionEvent),
    /// A new incoming connection was accepted (server side).
    Accepted(ConnHandle),
    /// The QUIC connection finished its handshake.
    Connected(ConnHandle),
    /// The connection closed (any reason); its session is gone.
    Closed(ConnHandle),
}

/// A QUIC endpoint + MoQT sessions, drivable from a netsim node.
pub struct MoqtStack {
    /// The QUIC endpoint (exposed for direct inspection in tests).
    pub endpoint: Endpoint<Addr>,
    sessions: BTreeMap<ConnHandle, Session>,
    session_config: SessionConfig,
    armed_deadline: Option<SimTime>,
    /// Sessions touched since the last pump (verb calls, routed QUIC
    /// events): only these are polled for session events, so a relay
    /// with hundreds of downstream sessions doesn't scan them all on
    /// every datagram.
    touched: Vec<ConnHandle>,
    /// Hardening counters folded out of sessions as they are retired, so
    /// [`MoqtStack::session_stats_total`] survives session removal.
    retired_stats: SessionStats,
}

impl MoqtStack {
    /// Creates a stack that accepts incoming MoQT connections.
    pub fn server(transport: TransportConfig, seed: u64) -> MoqtStack {
        MoqtStack {
            endpoint: Endpoint::server(transport, moqt_alpns(), seed),
            sessions: BTreeMap::new(),
            session_config: SessionConfig::default(),
            armed_deadline: None,
            touched: Vec::new(),
            retired_stats: SessionStats::default(),
        }
    }

    /// Creates a client-only stack.
    pub fn client(transport: TransportConfig, seed: u64) -> MoqtStack {
        MoqtStack {
            endpoint: Endpoint::client(transport, seed),
            sessions: BTreeMap::new(),
            session_config: SessionConfig::default(),
            armed_deadline: None,
            touched: Vec::new(),
            retired_stats: SessionStats::default(),
        }
    }

    /// Opens a MoQT connection to `peer` and starts the session (the
    /// CLIENT_SETUP rides 0-RTT when a ticket is available and
    /// `use_ticket`).
    ///
    /// Returns `None` when the endpoint cannot produce a usable
    /// connection; no session entry is kept in that case (a session that
    /// never `start`ed would otherwise sit dead in the map forever).
    pub fn connect(&mut self, now: SimTime, peer: Addr, use_ticket: bool) -> Option<ConnHandle> {
        let h = self.endpoint.connect(now, peer, moqt_alpns(), use_ticket);
        let Some(conn) = self.endpoint.conn_mut(h) else {
            self.endpoint.abandon(h);
            return None;
        };
        let mut session = Session::client(self.session_config.clone());
        session.start(conn);
        self.sessions.insert(h, session);
        self.touched.push(h);
        Some(h)
    }

    /// Closes every live connection with `error_code`/`reason` (the
    /// CONNECTION_CLOSE goes out on the next flush). Used to simulate a
    /// node being taken down mid-run: peers observe a close instead of an
    /// hours-long idle timeout.
    pub fn close_all(&mut self, ctx: &mut Ctx<'_>, error_code: u64, reason: &str) {
        let handles: Vec<ConnHandle> = self.sessions.keys().copied().collect();
        for h in handles {
            if let Some(conn) = self.endpoint.conn_mut(h) {
                conn.close(error_code, reason);
            }
        }
        let _ = self.pump(ctx);
        for (_, s) in std::mem::take(&mut self.sessions) {
            self.retired_stats.add(s.stats());
        }
    }

    /// Enables request pipelining (the §5.2 "version negotiation in ALPN"
    /// optimization) for sessions created *after* this call.
    pub fn set_pipeline(&mut self, on: bool) {
        self.session_config.pipeline = on;
    }

    /// True if a 0-RTT ticket is stored for `peer`.
    pub fn has_ticket(&self, peer: Addr) -> bool {
        self.endpoint.has_ticket(peer, MOQT_ALPN)
    }

    /// Mutable session + connection access for issuing verbs. Marks the
    /// session touched so the next pump polls its events.
    pub fn session_conn(&mut self, h: ConnHandle) -> Option<(&mut Session, &mut Connection)> {
        let conn = self.endpoint.conn_mut(h)?;
        let session = self.sessions.get_mut(&h)?;
        self.touched.push(h);
        Some((session, conn))
    }

    /// The session for a handle.
    pub fn session(&self, h: ConnHandle) -> Option<&Session> {
        self.sessions.get(&h)
    }

    /// Number of live sessions (state-overhead accounting, §5.1).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Hardening counters summed over every session this stack ever
    /// hosted: live sessions plus those retired by close/abandon.
    pub fn session_stats_total(&self) -> SessionStats {
        let mut total = self.retired_stats;
        for s in self.sessions.values() {
            total.add(s.stats());
        }
        total
    }

    /// Total estimated session + connection state in bytes (E9).
    pub fn state_size_estimate(&self) -> usize {
        self.sessions
            .values()
            .map(Session::state_size_estimate)
            .sum::<usize>()
            + self.endpoint.state_size_estimate()
    }

    /// Where the state lives, connection by connection (diagnostics for
    /// the adversarial drills): summed session bytes plus one
    /// [`ConnStateRow`] per live connection.
    pub fn state_breakdown(&self) -> (usize, Vec<ConnStateRow>) {
        let sessions = self
            .sessions
            .values()
            .map(Session::state_size_estimate)
            .sum::<usize>();
        (sessions, self.endpoint.state_breakdown())
    }

    /// Silently discards a connection and its session (suspension model,
    /// §4.4). No packets are sent; the peer sees an idle timeout later.
    pub fn abandon(&mut self, h: ConnHandle) {
        self.endpoint.abandon(h);
        if let Some(s) = self.sessions.remove(&h) {
            self.retired_stats.add(s.stats());
        }
    }

    /// Feeds an incoming datagram; returns events for the node. The
    /// shared payload handle keeps the QUIC parse zero-copy.
    pub fn on_datagram(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: Addr,
        data: &Payload,
    ) -> Vec<StackEvent> {
        self.endpoint.handle_datagram(ctx.now(), from, data);
        self.pump(ctx)
    }

    /// Handles a timer tick (token [`TOKEN_QUIC`]).
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>) -> Vec<StackEvent> {
        self.armed_deadline = None;
        self.endpoint.handle_timeout(ctx.now());
        self.pump(ctx)
    }

    /// Flushes transmissions and re-arms timers after the node called
    /// session verbs. Returns any events produced along the way.
    pub fn flush(&mut self, ctx: &mut Ctx<'_>) -> Vec<StackEvent> {
        self.pump(ctx)
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) -> Vec<StackEvent> {
        let mut out = Vec::new();
        // Accept new connections.
        while let Some(h) = self.endpoint.poll_incoming() {
            self.sessions
                .insert(h, Session::server(self.session_config.clone()));
            self.touched.push(h);
            out.push(StackEvent::Accepted(h));
        }
        // Route QUIC events into sessions.
        while let Some((h, ev)) = self.endpoint.poll_event() {
            match &ev {
                QuicEvent::Connected { .. } => out.push(StackEvent::Connected(h)),
                QuicEvent::Closed { .. } => {
                    if let Some(s) = self.sessions.remove(&h) {
                        self.retired_stats.add(s.stats());
                    }
                    out.push(StackEvent::Closed(h));
                    continue;
                }
                _ => {}
            }
            if let (Some(session), Some(conn)) =
                (self.sessions.get_mut(&h), self.endpoint.conn_mut(h))
            {
                session.on_conn_event(conn, &ev);
                self.touched.push(h);
            }
        }
        // Collect session events — only from sessions touched since the
        // last pump (an untouched session cannot have produced any).
        // Sessions may touch each other's state only through the
        // endpoint, which would mark them via the event loop above.
        let mut touched = std::mem::take(&mut self.touched);
        touched.sort_unstable();
        touched.dedup();
        for h in touched {
            if let Some(session) = self.sessions.get_mut(&h) {
                while let Some(ev) = session.poll_event() {
                    out.push(StackEvent::Session(h, ev));
                }
            }
        }
        // Transmit everything pending.
        while let Some((peer, dg)) = self.endpoint.poll_transmit(ctx.now()) {
            ctx.send(MOQT_PORT, peer, dg);
        }
        // Re-arm the protocol timer.
        if let Some(deadline) = self.endpoint.poll_timeout() {
            let need_arm = match self.armed_deadline {
                Some(armed) => deadline < armed || armed <= ctx.now(),
                None => true,
            };
            if need_arm {
                let delay = deadline.saturating_duration_since(ctx.now());
                ctx.set_timer(delay.max(std::time::Duration::from_micros(1)), TOKEN_QUIC);
                self.armed_deadline = Some(deadline);
            }
        }
        self.endpoint.reap_closed();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqdns_moqt::track::FullTrackName;
    use moqdns_netsim::{LinkConfig, Node, Simulator};
    use std::any::Any;
    use std::time::Duration;

    /// Minimal node owning a stack, recording events.
    struct StackNode {
        stack: MoqtStack,
        events: Vec<StackEvent>,
    }

    impl StackNode {
        fn server(seed: u64) -> StackNode {
            StackNode {
                stack: MoqtStack::server(TransportConfig::default(), seed),
                events: Vec::new(),
            }
        }
        fn client(seed: u64) -> StackNode {
            StackNode {
                stack: MoqtStack::client(TransportConfig::default(), seed),
                events: Vec::new(),
            }
        }
    }

    impl Node for StackNode {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, data: Payload) {
            let evs = self.stack.on_datagram(ctx, from, &data);
            self.events.extend(evs);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            let evs = self.stack.on_timer(ctx);
            self.events.extend(evs);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    fn track() -> FullTrackName {
        FullTrackName::new(vec![vec![1]], b"t".to_vec()).unwrap()
    }

    #[test]
    fn end_to_end_subscribe_over_simulator() {
        let mut sim = Simulator::new(3);
        sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(20)));
        let server = sim.add_node("server", Box::new(StackNode::server(1)));
        let client = sim.add_node("client", Box::new(StackNode::client(2)));
        sim.run_until_idle();

        // Client connects and subscribes.
        let h = sim.with_node::<StackNode, _>(client, |n, ctx| {
            let h = n
                .stack
                .connect(ctx.now(), Addr::new(server, MOQT_PORT), false)
                .expect("connect");
            let evs = n.stack.flush(ctx);
            n.events.extend(evs);
            h
        });
        sim.run_until(SimTime::from_millis(200));

        let sub_id = sim.with_node::<StackNode, _>(client, |n, ctx| {
            assert!(n.stack.session(h).unwrap().is_ready(), "session ready");
            let (sess, conn) = n.stack.session_conn(h).unwrap();
            let id = sess.subscribe(conn, track());
            let evs = n.stack.flush(ctx);
            n.events.extend(evs);
            id
        });
        sim.run_until(SimTime::from_millis(400));

        // Server sees the subscribe; accept and publish.
        let (sh, req) = sim.with_node::<StackNode, _>(server, |n, _| {
            n.events
                .iter()
                .find_map(|e| match e {
                    StackEvent::Session(h, SessionEvent::IncomingSubscribe { request_id, .. }) => {
                        Some((*h, *request_id))
                    }
                    _ => None,
                })
                .expect("incoming subscribe")
        });
        sim.with_node::<StackNode, _>(server, |n, ctx| {
            let (sess, conn) = n.stack.session_conn(sh).unwrap();
            sess.accept_subscribe(conn, req, Some((1, 0)));
            sess.publish(
                conn,
                req,
                moqdns_moqt::data::Object {
                    group_id: 2,
                    object_id: 0,
                    payload: b"pushed".to_vec().into(),
                },
            );
            let evs = n.stack.flush(ctx);
            n.events.extend(evs);
        });
        sim.run_until(SimTime::from_millis(800));

        let got = sim.with_node::<StackNode, _>(client, |n, _| {
            n.events.iter().any(|e| {
                matches!(e,
                    StackEvent::Session(hh, SessionEvent::SubscriptionObject { request_id, object })
                    if *hh == h && *request_id == sub_id && object.payload == b"pushed")
            })
        });
        assert!(got, "pushed object delivered through the simulator");
    }

    #[test]
    fn zero_rtt_reconnect_through_stack() {
        let mut sim = Simulator::new(3);
        sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(20)));
        let server = sim.add_node("server", Box::new(StackNode::server(1)));
        let mut client_node = StackNode::client(2);
        // Pipelined mode (the §5.2 ALPN-negotiation future): SUBSCRIBE may
        // accompany CLIENT_SETUP in the 0-RTT flight.
        client_node.stack.set_pipeline(true);
        let client = sim.add_node("client", Box::new(client_node));
        sim.run_until_idle();
        let server_addr = Addr::new(server, MOQT_PORT);

        // First connection establishes + stores a ticket.
        sim.with_node::<StackNode, _>(client, |n, ctx| {
            n.stack
                .connect(ctx.now(), server_addr, true)
                .expect("connect");
            let evs = n.stack.flush(ctx);
            n.events.extend(evs);
        });
        sim.run_until(SimTime::from_millis(300));
        let has_ticket =
            sim.with_node::<StackNode, _>(client, |n, _| n.stack.has_ticket(server_addr));
        assert!(has_ticket);

        // Second connection: session setup + subscribe in the first flight.
        let t0 = sim.now();
        sim.with_node::<StackNode, _>(client, |n, ctx| {
            let h2 = n
                .stack
                .connect(ctx.now(), server_addr, true)
                .expect("connect");
            let (sess, conn) = n.stack.session_conn(h2).unwrap();
            sess.subscribe(conn, track());
            let evs = n.stack.flush(ctx);
            n.events.extend(evs);
        });
        sim.run_until(t0 + Duration::from_millis(25));
        // After one half RTT the server has already seen the SUBSCRIBE.
        let seen = sim.with_node::<StackNode, _>(server, |n, _| {
            n.events.iter().any(|e| {
                matches!(
                    e,
                    StackEvent::Session(_, SessionEvent::IncomingSubscribe { .. })
                )
            })
        });
        assert!(seen, "0-RTT carried CLIENT_SETUP + SUBSCRIBE in one flight");
    }

    #[test]
    fn state_size_accounting() {
        let mut stack = MoqtStack::client(TransportConfig::default(), 1);
        assert_eq!(stack.session_count(), 0);
        let base = stack.state_size_estimate();
        // Fabricate connections without a peer (no traffic flows).
        let mut sim = Simulator::new(1);
        let peer = sim.add_node("x", Box::new(StackNode::client(9)));
        stack
            .connect(SimTime::ZERO, Addr::new(peer, MOQT_PORT), false)
            .expect("connect");
        assert_eq!(stack.session_count(), 1);
        assert!(stack.state_size_estimate() > base);
    }
}
