//! The stub resolver (paper §4.1, §5.2).
//!
//! Either speaks traditional DNS-over-UDP to its recursive resolver
//! ([`StubMode::Classic`]) or DNS-over-MoQT ([`StubMode::Moqt`]): it
//! subscribes to every name it looks up and receives pushed updates
//! thereafter — "a bigger advantage can be achieved if the stub resolver
//! automatically receives updates for frequently used domains via MoQT. In
//! this case, the application does not have to make any lookup via the
//! network at all" (§5.2).
//!
//! Every lookup and every received update is recorded in [`Metrics`] for
//! the experiments; a [`TeardownPolicy`] governs how long subscriptions
//! are retained (§4.4).

use crate::mapping::{
    question_from_track, response_from_object, track_from_question, RequestFlags,
};
use crate::metrics::{AnswerSource, LookupSample, Metrics, UpdateSample};
use crate::stack::{MoqtStack, StackEvent, TOKEN_QUIC};
use crate::teardown::{SubscriptionTracker, TeardownPolicy};
use crate::{DNS_PORT, MOQT_PORT};
use moqdns_dns::message::{Message, Question, Rcode};
use moqdns_dns::rr::Record;
use moqdns_dns::transport::{UdpAction, UdpExchange};
use moqdns_moqt::session::SessionEvent;
use moqdns_moqt::track::FullTrackName;
use moqdns_netsim::{Addr, Ctx, Node, Payload, SimTime};
use moqdns_quic::{ConnHandle, TransportConfig};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Transport the stub uses toward its recursive resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StubMode {
    /// Traditional DNS over UDP.
    Classic,
    /// DNS over MoQT (subscribe + joining fetch).
    Moqt,
}

const K_UDP: u64 = 2 << 56;
const K_SWEEP: u64 = 4 << 56;
const K_REDIAL: u64 = 8 << 56;
const K_MASK: u64 = 0xFF << 56;

/// A pending classic exchange.
struct ClassicPending {
    exchange: UdpExchange,
    question: Question,
    started: SimTime,
}

/// A live MoQT subscription held by the stub.
struct StubSub {
    question: Question,
    /// Latest version received (stored for §4.4 reconnection fetches).
    last_group: u64,
}

/// The stub resolver node.
pub struct StubResolver {
    mode: StubMode,
    /// The recursive resolver's node address (port is derived per mode).
    server: Addr,
    stack: MoqtStack,
    conn: Option<ConnHandle>,
    /// Lookups queued while the MoQT session establishes.
    queued: Vec<(Question, SimTime)>,
    /// Classic in-flight exchanges keyed by transaction id.
    classic: BTreeMap<u16, ClassicPending>,
    next_id: u16,
    /// Our subscriptions by our subscribe request id.
    subs: BTreeMap<u64, StubSub>,
    /// fetch request id -> (question, started).
    fetches: BTreeMap<u64, (Question, SimTime)>,
    /// Latest answers per question (what the application would read).
    answers: BTreeMap<Question, Vec<Record>>,
    tracker: SubscriptionTracker<u64>,
    sweep_interval: Duration,
    /// Initial RTO for classic exchanges (raise on long-delay paths).
    udp_rto: Duration,
    /// When set, a lost MoQT connection re-dials this long after the
    /// close and re-subscribes everything that was live, instead of
    /// staying dark until the next application lookup. `None` (the
    /// default) keeps the historical lookup-driven-only reconnect.
    redial_delay: Option<Duration>,
    /// Questions to re-subscribe on the next redial (captured from the
    /// live subscriptions when the connection closed).
    redial_questions: BTreeSet<Question>,
    /// Times the stub re-dialed after a connection loss (only counted
    /// when [`StubResolver::redial_after`] is configured).
    pub redials: u64,
    /// Raw measurements.
    pub metrics: Metrics,
}

impl StubResolver {
    /// Creates a stub talking to `server` (a node address; ports derived).
    pub fn new(mode: StubMode, server: Addr, seed: u64) -> StubResolver {
        StubResolver::with_policy(mode, server, seed, TeardownPolicy::Never)
    }

    /// Creates a stub with an explicit subscription teardown policy.
    pub fn with_policy(
        mode: StubMode,
        server: Addr,
        seed: u64,
        policy: TeardownPolicy,
    ) -> StubResolver {
        let transport = TransportConfig::default()
            .idle_timeout(Duration::from_secs(3600))
            .keep_alive(Duration::from_secs(25));
        StubResolver::with_transport(mode, server, seed, policy, transport)
    }

    /// Creates a stub with an explicit QUIC transport config. The chaos
    /// drills use a short idle timeout so a SIGKILLed (silently dead)
    /// resolver is detected in seconds instead of the patient hour-long
    /// default, which only suits stable paths.
    pub fn with_transport(
        mode: StubMode,
        server: Addr,
        seed: u64,
        policy: TeardownPolicy,
        transport: TransportConfig,
    ) -> StubResolver {
        StubResolver {
            mode,
            server,
            stack: MoqtStack::client(transport, seed),
            conn: None,
            queued: Vec::new(),
            classic: BTreeMap::new(),
            next_id: 1,
            subs: BTreeMap::new(),
            fetches: BTreeMap::new(),
            answers: BTreeMap::new(),
            tracker: SubscriptionTracker::new(policy),
            sweep_interval: Duration::from_secs(60),
            udp_rto: Duration::from_secs(1),
            redial_delay: None,
            redial_questions: BTreeSet::new(),
            redials: 0,
            metrics: Metrics::default(),
        }
    }

    /// Makes the stub re-dial its resolver `delay` after a connection
    /// loss and re-subscribe everything that was live (retrying at that
    /// cadence until a session sticks). Pair with a short idle timeout
    /// via [`StubResolver::with_transport`] so a dead resolver is
    /// noticed fast — the crash/restart drills rely on both.
    pub fn redial_after(mut self, delay: Duration) -> StubResolver {
        self.redial_delay = Some(delay);
        self
    }

    /// Sets the classic retransmission timeout (deep-space paths).
    pub fn set_udp_rto(&mut self, rto: Duration) {
        self.udp_rto = rto;
    }

    /// Enables MoQT request pipelining (§5.2 ALPN optimization) for
    /// sessions created after this call.
    pub fn set_pipeline(&mut self, on: bool) {
        self.stack.set_pipeline(on);
    }

    /// Latest known answer for `question`, if any.
    pub fn answer(&self, question: &Question) -> Option<&[Record]> {
        self.answers.get(question).map(Vec::as_slice)
    }

    /// Number of live subscriptions (§5.1 state overhead).
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// Estimated protocol state bytes (E9).
    pub fn state_size_estimate(&self) -> usize {
        self.stack.state_size_estimate() + self.subs.len() * 96
    }

    /// Experiment hook: simulates a device suspension (§4.4) — the QUIC
    /// connection is silently dropped so the next lookup reconnects (and,
    /// with a stored ticket, attempts 0-RTT).
    pub fn debug_drop_connection(&mut self) {
        if let Some(h) = self.conn.take() {
            self.stack.abandon(h);
        }
    }

    /// Experiment hook: forgets local subscription/answer state so the
    /// next lookup must go to the network again.
    pub fn debug_forget_subscriptions(&mut self) {
        self.subs.clear();
        self.answers.clear();
        self.fetches.clear();
    }

    /// Issues a lookup for `question`. Call via `Simulator::with_node`.
    pub fn lookup(&mut self, ctx: &mut Ctx<'_>, question: Question) {
        match self.mode {
            StubMode::Classic => self.lookup_classic(ctx, question),
            StubMode::Moqt => self.lookup_moqt(ctx, question),
        }
    }

    fn lookup_classic(&mut self, ctx: &mut Ctx<'_>, question: Question) {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let query = Message::query(id, question.clone());
        let mut exchange = UdpExchange::with_policy(query, self.udp_rto, 3);
        if let UdpAction::Transmit { datagram, timeout } = exchange.start() {
            self.metrics.classic_queries_sent += 1;
            ctx.send(DNS_PORT, Addr::new(self.server.node, DNS_PORT), datagram);
            ctx.set_timer(timeout, K_UDP | id as u64);
        }
        self.classic.insert(
            id,
            ClassicPending {
                exchange,
                question,
                started: ctx.now(),
            },
        );
    }

    fn lookup_moqt(&mut self, ctx: &mut Ctx<'_>, question: Question) {
        // Already subscribed? The answer is local — zero network lookups,
        // the §5.2 endgame.
        if let Some((sub_id, _)) = self
            .subs
            .iter()
            .find(|(_, s)| s.question == question)
            .map(|(k, s)| (*k, s.last_group))
        {
            self.tracker.touch(&sub_id, ctx.now());
            if let Some(records) = self.answers.get(&question) {
                let _ = records;
                self.metrics.lookups.push(LookupSample {
                    question,
                    started: ctx.now(),
                    finished: ctx.now(),
                    source: AnswerSource::Cache,
                    ok: true,
                    version: Some(self.subs[&sub_id].last_group),
                });
                return;
            }
        }
        let started = ctx.now();
        if self.conn.is_none() || self.stack.session(self.conn.unwrap()).is_none() {
            let peer = Addr::new(self.server.node, MOQT_PORT);
            self.conn = self.stack.connect(ctx.now(), peer, true);
        }
        let Some(h) = self.conn else {
            // Connect failed: record the lookup as failed instead of
            // leaving it silently unaccounted.
            self.metrics.lookups.push(LookupSample {
                question,
                started,
                finished: ctx.now(),
                source: AnswerSource::Moqt,
                ok: false,
                version: None,
            });
            return;
        };
        // Always safe to issue immediately: in strict mode the session
        // holds the request until SERVER_SETUP; with a 0-RTT ticket and
        // pipelining it rides the first flight (§5.2).
        self.issue_subscribe(ctx, h, question, started);
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
    }

    fn issue_subscribe(
        &mut self,
        ctx: &mut Ctx<'_>,
        h: ConnHandle,
        question: Question,
        started: SimTime,
    ) {
        let track =
            track_from_question(&question, RequestFlags::recursive()).expect("valid dns track");
        let Some((session, conn)) = self.stack.session_conn(h) else {
            self.queued.push((question, started));
            return;
        };
        let (sub_id, fetch_id) = session.subscribe_with_joining_fetch(conn, track, 1);
        self.metrics.subscribes_sent += 1;
        self.metrics.fetches_sent += 1;
        self.subs.insert(
            sub_id,
            StubSub {
                question: question.clone(),
                last_group: 0,
            },
        );
        self.tracker.insert(sub_id, ctx.now());
        self.fetches.insert(fetch_id, (question, started));
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
    }

    /// Saturation hook: issues a standalone MoQT FETCH for `question`,
    /// costing one full network round-trip even when a live subscription
    /// already holds the answer locally (where [`StubResolver::lookup`]
    /// short-circuits, the §5.2 endgame). The reply lands in the ordinary
    /// lookup metrics as an [`AnswerSource::Moqt`] sample, so rate and
    /// latency accounting need no separate plumbing. Returns `false`
    /// (probe not issued) while the connection or session is still
    /// coming up.
    pub fn probe(&mut self, ctx: &mut Ctx<'_>, question: Question) -> bool {
        let started = ctx.now();
        let Some(h) = self.conn else {
            return false;
        };
        let track =
            track_from_question(&question, RequestFlags::recursive()).expect("valid dns track");
        // Fetch from the newest group this stub has seen, so the reply is
        // the latest object — never an answer-regressing old version.
        let from = self
            .subs
            .values()
            .find(|s| s.question == question)
            .map(|s| s.last_group)
            .unwrap_or(0);
        let Some((session, conn)) = self.stack.session_conn(h) else {
            return false;
        };
        let fetch_id = session.fetch(conn, track, from, u64::MAX);
        self.metrics.fetches_sent += 1;
        self.fetches.insert(fetch_id, (question, started));
        let evs = self.stack.flush(ctx);
        self.handle_events(ctx, evs);
        true
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<StackEvent>) {
        for ev in events {
            match ev {
                StackEvent::Session(_, SessionEvent::Ready { .. }) => {
                    let queued = std::mem::take(&mut self.queued);
                    if let Some(h) = self.conn {
                        for (q, started) in queued {
                            self.issue_subscribe(ctx, h, q, started);
                        }
                    }
                }
                StackEvent::Session(
                    _,
                    SessionEvent::FetchObjects {
                        request_id,
                        objects,
                    },
                ) => {
                    if let Some((question, started)) = self.fetches.remove(&request_id) {
                        let object = objects.first();
                        let (ok, version) = match object {
                            Some(o) => match response_from_object(o) {
                                Ok(msg) => {
                                    self.answers.insert(question.clone(), msg.answers.clone());
                                    (msg.header.rcode == Rcode::NoError, Some(o.group_id))
                                }
                                Err(_) => (false, None),
                            },
                            None => (false, None),
                        };
                        self.metrics.lookups.push(LookupSample {
                            question,
                            started,
                            finished: ctx.now(),
                            source: AnswerSource::Moqt,
                            ok,
                            version,
                        });
                    }
                }
                StackEvent::Session(_, SessionEvent::FetchRejected { request_id, .. }) => {
                    if let Some((question, started)) = self.fetches.remove(&request_id) {
                        self.metrics.lookups.push(LookupSample {
                            question,
                            started,
                            finished: ctx.now(),
                            source: AnswerSource::Moqt,
                            ok: false,
                            version: None,
                        });
                    }
                }
                StackEvent::Session(_, SessionEvent::SubscribeRejected { request_id, .. }) => {
                    // §4.5: the recursive cannot provide updates; the fetch
                    // still answers the lookup.
                    self.subs.remove(&request_id);
                    self.tracker.remove(&request_id);
                }
                StackEvent::Session(_, SessionEvent::SubscriptionObject { request_id, object }) => {
                    if let Some(sub) = self.subs.get_mut(&request_id) {
                        sub.last_group = object.group_id;
                        let question = sub.question.clone();
                        if let Ok(msg) = response_from_object(&object) {
                            self.answers.insert(question.clone(), msg.answers.clone());
                        }
                        self.metrics.objects_received += 1;
                        self.metrics.updates.push(UpdateSample {
                            question,
                            version: object.group_id,
                            received: ctx.now(),
                        });
                    }
                }
                StackEvent::Session(_, SessionEvent::SubscriptionEnded { request_id, .. }) => {
                    self.subs.remove(&request_id);
                    self.tracker.remove(&request_id);
                }
                StackEvent::Closed(h) => {
                    // §4.4: after a connection loss, subscriptions are gone;
                    // the next lookup re-establishes with fetch-from-last. A
                    // stale handle closing (an abandoned earlier attempt)
                    // must not clobber the live connection's state.
                    if self.conn != Some(h) {
                        continue;
                    }
                    self.conn = None;
                    if let Some(delay) = self.redial_delay {
                        for s in self.subs.values() {
                            self.redial_questions.insert(s.question.clone());
                        }
                        ctx.set_timer(delay, K_REDIAL);
                    }
                    self.subs.clear();
                }
                _ => {}
            }
        }
    }

    fn on_udp_timer(&mut self, ctx: &mut Ctx<'_>, id: u16) {
        let Some(p) = self.classic.get_mut(&id) else {
            return;
        };
        match p.exchange.on_timeout() {
            UdpAction::Transmit { datagram, timeout } => {
                self.metrics.classic_queries_sent += 1;
                ctx.send(DNS_PORT, Addr::new(self.server.node, DNS_PORT), datagram);
                ctx.set_timer(timeout, K_UDP | id as u64);
            }
            UdpAction::Failed => {
                let p = self.classic.remove(&id).unwrap();
                self.metrics.lookups.push(LookupSample {
                    question: p.question,
                    started: p.started,
                    finished: ctx.now(),
                    source: AnswerSource::ClassicUdp,
                    ok: false,
                    version: None,
                });
            }
            _ => {}
        }
    }

    fn on_udp_response(&mut self, ctx: &mut Ctx<'_>, data: &[u8]) {
        let Ok(msg) = Message::decode(data) else {
            return;
        };
        let id = msg.header.id;
        let Some(p) = self.classic.get_mut(&id) else {
            return;
        };
        if let UdpAction::Complete(resp) = p.exchange.on_datagram(data) {
            let p = self.classic.remove(&id).unwrap();
            self.metrics.classic_responses_received += 1;
            self.answers
                .insert(p.question.clone(), resp.answers.clone());
            self.metrics.lookups.push(LookupSample {
                question: p.question,
                started: p.started,
                finished: ctx.now(),
                source: AnswerSource::ClassicUdp,
                ok: resp.header.rcode == Rcode::NoError,
                version: None,
            });
        }
    }

    fn on_sweep(&mut self, ctx: &mut Ctx<'_>) {
        let victims = self.tracker.sweep(ctx.now());
        if let Some(h) = self.conn {
            for sub_id in victims {
                if self.subs.remove(&sub_id).is_some() {
                    if let Some((session, conn)) = self.stack.session_conn(h) {
                        session.unsubscribe(conn, sub_id);
                    }
                }
            }
            let evs = self.stack.flush(ctx);
            self.handle_events(ctx, evs);
        }
        if self.tracker.policy() != TeardownPolicy::Never {
            ctx.set_timer(self.sweep_interval, K_SWEEP);
        }
    }

    fn on_redial(&mut self, ctx: &mut Ctx<'_>) {
        let Some(delay) = self.redial_delay else {
            return;
        };
        if let Some(h) = self.conn.take() {
            if self.stack.session(h).is_some() {
                self.conn = Some(h);
                return; // already reconnected (e.g. a fresh lookup)
            }
            // A dead handle with no session: drop it silently so its
            // handshake stops retransmitting into the void.
            self.stack.abandon(h);
        }
        self.redials += 1;
        let peer = Addr::new(self.server.node, MOQT_PORT);
        self.conn = self.stack.connect(ctx.now(), peer, true);
        let Some(h) = self.conn else {
            ctx.set_timer(delay, K_REDIAL);
            return;
        };
        // Re-subscribe with joining fetches: each brings the track
        // current immediately, so even a round published while we were
        // dark is recovered without waiting for the next push. If this
        // dial also stalls (resolver still down), its own idle timeout
        // raises `Closed`, which recaptures the questions and re-arms.
        let questions: Vec<Question> = std::mem::take(&mut self.redial_questions)
            .into_iter()
            .collect();
        let started = ctx.now();
        for q in questions {
            self.issue_subscribe(ctx, h, q, started);
        }
    }

    /// The track of an active subscription (diagnostics).
    pub fn subscription_tracks(&self) -> Vec<FullTrackName> {
        self.subs
            .values()
            .map(|s| {
                track_from_question(&s.question, RequestFlags::recursive()).expect("valid track")
            })
            .collect()
    }

    /// Questions of active subscriptions.
    pub fn subscribed_questions(&self) -> Vec<Question> {
        self.subs.values().map(|s| s.question.clone()).collect()
    }
}

impl Node for StubResolver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.tracker.policy() != TeardownPolicy::Never {
            ctx.set_timer(self.sweep_interval, K_SWEEP);
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, to_port: u16, payload: Payload) {
        match to_port {
            DNS_PORT => self.on_udp_response(ctx, &payload),
            MOQT_PORT => {
                let evs = self.stack.on_datagram(ctx, from, &payload);
                self.handle_events(ctx, evs);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token & K_MASK {
            TOKEN_QUIC => {
                let evs = self.stack.on_timer(ctx);
                self.handle_events(ctx, evs);
            }
            K_UDP => self.on_udp_timer(ctx, (token & 0xFFFF) as u16),
            K_SWEEP => self.on_sweep(ctx),
            K_REDIAL => self.on_redial(ctx),
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

// Re-export used by lib.rs docs; avoids an unused-import warning for
// question_from_track which forwarder-style callers use.
#[allow(unused_imports)]
use question_from_track as _question_from_track;
