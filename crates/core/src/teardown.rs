//! Subscription teardown policies (paper §4.4).
//!
//! "The timescale at which resolvers can drop unused subscriptions depends
//! on a trade-off between the acceptable overhead of managing the MoQT
//! session and subscription state, and the risk of having to re-establish
//! a new session and subscription if the record is requested again. …
//! which could also be dynamically adapted based on the history of how
//! frequently a domain had to be resolved in the past."
//!
//! [`TeardownPolicy`] captures the three natural points in that space;
//! [`SubscriptionTracker`] applies a policy to a set of live subscriptions
//! and decides which to drop at each sweep.

use moqdns_netsim::SimTime;
use std::collections::BTreeMap;
use std::hash::Hash;
use std::time::Duration;

/// When to drop idle subscriptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TeardownPolicy {
    /// Keep every subscription forever (maximum state, zero re-setup).
    Never,
    /// Drop a subscription unused for this long.
    IdleTimeout(Duration),
    /// Keep at most `n` subscriptions; evict least-recently-used.
    LruCap(usize),
    /// Frequency-adaptive: keep a subscription while its observed lookup
    /// rate exceeds `min_rate_per_hour`, measured over a sliding window;
    /// rarely-used domains fall back to fetch-on-demand.
    Adaptive {
        /// Minimum lookups per hour to justify keeping the subscription.
        min_rate_per_hour: f64,
        /// Sliding window for the rate estimate.
        window: Duration,
    },
}

/// Per-subscription usage record.
#[derive(Debug, Clone)]
struct Usage {
    last_used: SimTime,
    /// Lookup timestamps within the adaptive window.
    hits: Vec<SimTime>,
    created: SimTime,
}

/// Applies a [`TeardownPolicy`] over keyed subscriptions.
#[derive(Debug)]
pub struct SubscriptionTracker<K> {
    policy: TeardownPolicy,
    usage: BTreeMap<K, Usage>,
}

impl<K: Clone + Eq + Hash + Ord> SubscriptionTracker<K> {
    /// Creates a tracker with the given policy.
    pub fn new(policy: TeardownPolicy) -> SubscriptionTracker<K> {
        SubscriptionTracker {
            policy,
            usage: BTreeMap::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> TeardownPolicy {
        self.policy
    }

    /// Number of tracked subscriptions.
    pub fn len(&self) -> usize {
        self.usage.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.usage.is_empty()
    }

    /// Registers a new subscription at `now`.
    pub fn insert(&mut self, key: K, now: SimTime) {
        self.usage.insert(
            key,
            Usage {
                last_used: now,
                hits: vec![now],
                created: now,
            },
        );
    }

    /// Records a lookup served by subscription `key`.
    pub fn touch(&mut self, key: &K, now: SimTime) {
        if let Some(u) = self.usage.get_mut(key) {
            u.last_used = now;
            u.hits.push(now);
            // Bound history: the adaptive window never needs more.
            if u.hits.len() > 4096 {
                u.hits.drain(..2048);
            }
        }
    }

    /// Removes a subscription explicitly (e.g. publisher sent
    /// SUBSCRIBE_DONE).
    pub fn remove(&mut self, key: &K) {
        self.usage.remove(key);
    }

    /// True if `key` is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.usage.contains_key(key)
    }

    /// Runs a sweep at `now`; returns the keys whose subscriptions should
    /// be torn down (they are removed from the tracker).
    pub fn sweep(&mut self, now: SimTime) -> Vec<K> {
        let victims: Vec<K> = match self.policy {
            TeardownPolicy::Never => Vec::new(),
            TeardownPolicy::IdleTimeout(idle) => self
                .usage
                .iter()
                .filter(|(_, u)| now.saturating_duration_since(u.last_used) >= idle)
                .map(|(k, _)| k.clone())
                .collect(),
            TeardownPolicy::LruCap(cap) => {
                if self.usage.len() <= cap {
                    Vec::new()
                } else {
                    let mut by_age: Vec<(K, SimTime)> = self
                        .usage
                        .iter()
                        .map(|(k, u)| (k.clone(), u.last_used))
                        .collect();
                    by_age.sort_by_key(|(_, t)| *t);
                    by_age
                        .into_iter()
                        .take(self.usage.len() - cap)
                        .map(|(k, _)| k)
                        .collect()
                }
            }
            TeardownPolicy::Adaptive {
                min_rate_per_hour,
                window,
            } => self
                .usage
                .iter()
                .filter(|(_, u)| {
                    // Grace period: a subscription younger than the window
                    // is judged on its age so new domains are not evicted
                    // before they can accumulate history.
                    let span = now
                        .saturating_duration_since(u.created)
                        .min(window)
                        .as_secs_f64()
                        .max(1.0);
                    let cutoff = SimTime::from_nanos(
                        now.as_nanos().saturating_sub(window.as_nanos() as u64),
                    );
                    let recent = u.hits.iter().filter(|t| **t >= cutoff).count();
                    let rate_per_hour = recent as f64 / span * 3600.0;
                    rate_per_hour < min_rate_per_hour
                })
                .map(|(k, _)| k.clone())
                .collect(),
        };
        for k in &victims {
            self.usage.remove(k);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn never_keeps_everything() {
        let mut tr: SubscriptionTracker<u32> = SubscriptionTracker::new(TeardownPolicy::Never);
        for k in 0..100 {
            tr.insert(k, t(0));
        }
        assert!(tr.sweep(t(1_000_000)).is_empty());
        assert_eq!(tr.len(), 100);
    }

    #[test]
    fn idle_timeout_drops_only_stale() {
        let mut tr: SubscriptionTracker<u32> =
            SubscriptionTracker::new(TeardownPolicy::IdleTimeout(Duration::from_secs(60)));
        tr.insert(1, t(0));
        tr.insert(2, t(0));
        tr.touch(&2, t(50));
        let victims = tr.sweep(t(70));
        assert_eq!(victims, vec![1]);
        assert!(tr.contains(&2));
        // 2 goes stale later.
        let victims = tr.sweep(t(111));
        assert_eq!(victims, vec![2]);
        assert!(tr.is_empty());
    }

    #[test]
    fn lru_cap_evicts_least_recent() {
        let mut tr: SubscriptionTracker<u32> = SubscriptionTracker::new(TeardownPolicy::LruCap(2));
        tr.insert(1, t(0));
        tr.insert(2, t(1));
        tr.insert(3, t(2));
        tr.touch(&1, t(10)); // 1 is now most recent
        let victims = tr.sweep(t(11));
        assert_eq!(victims, vec![2]);
        assert_eq!(tr.len(), 2);
        assert!(tr.contains(&1) && tr.contains(&3));
    }

    #[test]
    fn adaptive_keeps_hot_domains() {
        let policy = TeardownPolicy::Adaptive {
            min_rate_per_hour: 10.0,
            window: Duration::from_secs(3600),
        };
        let mut tr: SubscriptionTracker<&'static str> = SubscriptionTracker::new(policy);
        tr.insert("hot", t(0));
        tr.insert("cold", t(0));
        // 60 lookups of "hot" over the hour; one for "cold".
        for i in 0..60 {
            tr.touch(&"hot", t(i * 60));
        }
        let victims = tr.sweep(t(3600));
        assert_eq!(victims, vec!["cold"]);
        assert!(tr.contains(&"hot"));
    }

    #[test]
    fn adaptive_grace_for_new_subscriptions() {
        let policy = TeardownPolicy::Adaptive {
            min_rate_per_hour: 10.0,
            window: Duration::from_secs(3600),
        };
        let mut tr: SubscriptionTracker<u32> = SubscriptionTracker::new(policy);
        // Inserted 2 minutes ago with 1 hit: rate over its short life is
        // 1 per 120 s = 30/hour > 10/hour → kept.
        tr.insert(1, t(0));
        assert!(tr.sweep(t(120)).is_empty());
    }

    #[test]
    fn explicit_remove() {
        let mut tr: SubscriptionTracker<u32> = SubscriptionTracker::new(TeardownPolicy::Never);
        tr.insert(1, t(0));
        tr.remove(&1);
        assert!(tr.is_empty());
    }

    #[test]
    fn touch_unknown_is_noop() {
        let mut tr: SubscriptionTracker<u32> = SubscriptionTracker::new(TeardownPolicy::Never);
        tr.touch(&9, t(0));
        assert!(tr.is_empty());
    }
}
