//! Integration: relay fetch coalescing and uplink recovery rebalancing
//! (paper §3 — relays aggregate *all* downstream demand, fetches
//! included).
//!
//! * A joining-fetch stampede — N stubs subscribing to the same track at
//!   the same instant through a 2-tier relay chain — must produce exactly
//!   ONE upstream fetch per relay tier (the pending-fetch table coalesces
//!   the rest and fans the single result out to every waiter).
//! * A killed-and-revived uplink must get its hash shard back: edges
//!   ring-walk tracks away when it dies and *rebalance* them home when
//!   the recovery probe re-attaches, with updates flowing throughout.

use moqdns_core::auth::AuthServer;
use moqdns_core::mapping::{track_from_question, RequestFlags};
use moqdns_core::relay_node::RelayNode;
use moqdns_core::stack::{MoqtStack, StackEvent};
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::name::Name;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_moqt::relay::{track_hash, HashShard};
use moqdns_moqt::session::SessionEvent;
use moqdns_netsim::topo::TopoBuilder;
use moqdns_netsim::{Addr, Ctx, LinkConfig, Node, NodeId, Payload, Simulator};
use moqdns_quic::TransportConfig;
use std::any::Any;
use std::net::Ipv4Addr;
use std::time::Duration;

fn record_name(i: usize) -> Name {
    format!("r{i}.coalesce.example").parse().unwrap()
}

fn question(i: usize) -> Question {
    Question::new(record_name(i), RecordType::A)
}

/// Minimal subscribing leaf: joins `questions` with joining fetches at
/// start, counts pushes and answered fetches.
struct Sub {
    stack: MoqtStack,
    server: Addr,
    questions: Vec<Question>,
    updates: u64,
    fetched: u64,
}

impl Sub {
    fn new(server: Addr, questions: Vec<Question>, seed: u64) -> Sub {
        Sub {
            stack: MoqtStack::client(
                TransportConfig::default()
                    .idle_timeout(Duration::from_secs(3600))
                    .keep_alive(Duration::from_secs(25)),
                seed,
            ),
            server,
            questions,
            updates: 0,
            fetched: 0,
        }
    }

    fn collect(&mut self, evs: Vec<StackEvent>) {
        for e in evs {
            match e {
                StackEvent::Session(_, SessionEvent::SubscriptionObject { .. }) => {
                    self.updates += 1;
                }
                StackEvent::Session(_, SessionEvent::FetchObjects { objects, .. })
                    if !objects.is_empty() =>
                {
                    self.fetched += 1;
                }
                _ => {}
            }
        }
    }
}

impl Node for Sub {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let Some(h) = self.stack.connect(ctx.now(), self.server, false) else {
            return;
        };
        for q in self.questions.clone() {
            let track = track_from_question(&q, RequestFlags::iterative()).unwrap();
            if let Some((sess, conn)) = self.stack.session_conn(h) {
                sess.subscribe_with_joining_fetch(conn, track, 1);
            }
        }
        let evs = self.stack.flush(ctx);
        self.collect(evs);
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, d: Payload) {
        let evs = self.stack.on_datagram(ctx, from, &d);
        self.collect(evs);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let evs = self.stack.on_timer(ctx);
        self.collect(evs);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

fn zone_with(tracks: usize) -> Zone {
    let mut zone = Zone::with_default_soa("coalesce.example".parse().unwrap());
    for i in 0..tracks {
        zone.add_record(Record::new(
            record_name(i),
            60,
            RData::A(Ipv4Addr::new(192, 0, 2, i as u8 + 1)),
        ));
    }
    zone
}

/// N stubs join the same track simultaneously through a 2-tier relay
/// chain (auth → hop1 → hop2): exactly one upstream fetch per tier.
#[test]
fn stampede_coalesces_to_one_fetch_per_tier() {
    const N_STUBS: usize = 12;
    let mut sim = Simulator::new(31);
    let link = LinkConfig::with_delay(Duration::from_millis(10));
    sim.set_default_link(link);
    let zone = zone_with(1);

    let topo = TopoBuilder::chain("auth", 2, link)
        .tier("stub", N_STUBS, 1, link)
        .build(&mut sim, |sim, ctx| match ctx.tier_name {
            "auth" => sim.add_node(
                ctx.name.clone(),
                Box::new(AuthServer::new(
                    Authority::single(zone.clone()),
                    TransportConfig::default()
                        .idle_timeout(Duration::from_secs(3600))
                        .keep_alive(Duration::from_secs(25)),
                    11,
                )),
            ),
            // Both hops share seed 40 deliberately: equal seeds make the
            // two relays generate identical client cid sequences, which
            // used to let hop1's dial to auth *overwrite* its accepted
            // downstream connection from hop2 (handle = cid). This test
            // doubles as the regression test for that endpoint fix.
            "hop1" | "hop2" => sim.add_node(
                ctx.name.clone(),
                Box::new(
                    RelayNode::new(
                        Addr::new(ctx.parents[0], MOQT_PORT),
                        0,
                        40 + ctx.index as u64,
                    )
                    .tier(ctx.tier_name),
                ),
            ),
            _ => sim.add_node(
                ctx.name.clone(),
                Box::new(Sub::new(
                    Addr::new(ctx.parents[0], MOQT_PORT),
                    vec![question(0)],
                    100 + ctx.index as u64,
                )),
            ),
        });

    sim.run_until(sim.now() + Duration::from_secs(5));

    // Every stub's joining fetch was answered…
    let stubs: Vec<NodeId> = topo.tier_named("stub").to_vec();
    for &s in &stubs {
        assert_eq!(sim.node_ref::<Sub>(s).fetched, 1, "joining fetch served");
    }

    // …yet each relay tier escalated exactly ONE upstream fetch: the
    // stampede of 12 concurrent fetches collapsed at the first tier, and
    // the single hop2→hop1 fetch trivially stayed single at the next.
    let hop2 = sim.node_ref::<RelayNode>(topo.tier_named("hop2")[0]);
    assert_eq!(hop2.stats().fetch_cache_misses, N_STUBS as u64);
    assert_eq!(hop2.stats().fetch_coalesced, N_STUBS as u64 - 1);
    assert_eq!(hop2.stats().upstream_fetches, 1, "one fetch left hop2");
    assert_eq!(hop2.stats().fetch_waiters_served, N_STUBS as u64);
    assert_eq!(hop2.pending_fetch_count(), 0, "table drained");

    let hop1 = sim.node_ref::<RelayNode>(topo.tier_named("hop1")[0]);
    assert_eq!(hop1.stats().fetch_cache_misses, 1);
    assert_eq!(hop1.stats().upstream_fetches, 1, "one fetch reached auth");
    assert_eq!(hop1.stats().fetch_waiters_served, 1);

    // The coalesced result must not break live distribution: an update
    // still reaches every stub exactly once.
    let auth = topo.tier_named("auth")[0];
    sim.with_node::<AuthServer, _>(auth, |a, ctx| {
        a.update_zone(ctx, |authority| {
            let name = record_name(0);
            if let Some(z) = authority.find_zone_mut(&name) {
                z.set_records(
                    &name,
                    RecordType::A,
                    vec![Record::new(
                        name.clone(),
                        60,
                        RData::A(Ipv4Addr::new(198, 51, 100, 7)),
                    )],
                );
            }
        });
    });
    sim.run_until(sim.now() + Duration::from_secs(5));
    for &s in &stubs {
        assert_eq!(sim.node_ref::<Sub>(s).updates, 1);
    }
}

/// A leaf that issues one *standalone* fetch for an explicit group range
/// (no subscription), for the range-reuse drill below.
struct RangeFetcher {
    stack: MoqtStack,
    server: Addr,
    range: (u64, u64),
    /// Objects returned for the fetch (None until answered).
    got: Option<Vec<u64>>,
}

impl RangeFetcher {
    fn new(server: Addr, range: (u64, u64), seed: u64) -> RangeFetcher {
        RangeFetcher {
            stack: MoqtStack::client(
                TransportConfig::default()
                    .idle_timeout(Duration::from_secs(3600))
                    .keep_alive(Duration::from_secs(25)),
                seed,
            ),
            server,
            range,
            got: None,
        }
    }

    fn collect(&mut self, evs: Vec<StackEvent>) {
        for e in evs {
            if let StackEvent::Session(_, SessionEvent::FetchObjects { objects, .. }) = e {
                self.got = Some(objects.iter().map(|o| o.group_id).collect());
            }
        }
    }
}

impl Node for RangeFetcher {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let Some(h) = self.stack.connect(ctx.now(), self.server, false) else {
            return;
        };
        let track = track_from_question(&question(0), RequestFlags::iterative()).unwrap();
        if let Some((sess, conn)) = self.stack.session_conn(h) {
            sess.fetch(conn, track, self.range.0, self.range.1);
        }
        let evs = self.stack.flush(ctx);
        self.collect(evs);
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, d: Payload) {
        let evs = self.stack.on_datagram(ctx, from, &d);
        self.collect(evs);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let evs = self.stack.on_timer(ctx);
        self.collect(evs);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

/// Fetch-result range reuse: a whole-track joining fetch opens the one
/// upstream fetch; a concurrent standalone fetch for a group-range
/// *subset* must be served from that in-flight result — `upstream_fetches`
/// stays 1 under mixed whole-track + subset waiters, and the subset
/// waiter receives only the groups it asked for.
#[test]
fn subset_fetch_reuses_inflight_whole_track_fetch() {
    let mut sim = Simulator::new(37);
    let link = LinkConfig::with_delay(Duration::from_millis(10));
    sim.set_default_link(link);
    let zone = zone_with(1);

    // auth → one relay → {whole-track subscriber, subset fetcher}.
    let topo =
        TopoBuilder::chain("auth", 1, link).build(&mut sim, |sim, ctx| match ctx.tier_name {
            "auth" => sim.add_node(
                ctx.name.clone(),
                Box::new(AuthServer::new(
                    Authority::single(zone.clone()),
                    TransportConfig::default()
                        .idle_timeout(Duration::from_secs(3600))
                        .keep_alive(Duration::from_secs(25)),
                    11,
                )),
            ),
            _ => sim.add_node(
                ctx.name.clone(),
                Box::new(
                    RelayNode::new(Addr::new(ctx.parents[0], MOQT_PORT), 0, 40).tier(ctx.tier_name),
                ),
            ),
        });
    let relay = topo.tier_named("hop1")[0];
    // Both leaves start at t=0: their fetches race into the relay's cold
    // cache within the same RTT window.
    let whole = sim.add_node(
        "whole-track",
        Box::new(Sub::new(
            Addr::new(relay, MOQT_PORT),
            vec![question(0)],
            100,
        )),
    );
    // The zone currently holds version 1 of the record; ask for exactly
    // the group range covering it (a strict subset of the whole track).
    let subset = sim.add_node(
        "subset",
        Box::new(RangeFetcher::new(Addr::new(relay, MOQT_PORT), (0, 2), 101)),
    );
    sim.set_link(whole, relay, link);
    sim.set_link(subset, relay, link);
    sim.run_until(sim.now() + Duration::from_secs(5));

    // Both waiters served...
    assert_eq!(
        sim.node_ref::<Sub>(whole).fetched,
        1,
        "joining fetch served"
    );
    let got = sim
        .node_ref::<RangeFetcher>(subset)
        .got
        .clone()
        .expect("subset fetch answered");
    assert!(!got.is_empty(), "subset waiter got its groups");
    assert!(
        got.iter().all(|&g| g <= 2),
        "subset waiter only got requested groups: {got:?}"
    );
    // ...from ONE upstream fetch: the subset request coalesced into the
    // in-flight whole-track fetch instead of opening a second one.
    let r = sim.node_ref::<RelayNode>(relay);
    assert_eq!(r.stats().fetch_cache_misses, 2, "both fetches missed cold");
    assert_eq!(r.stats().upstream_fetches, 1, "one upstream fetch total");
    assert_eq!(
        r.stats().fetch_coalesced,
        1,
        "subset joined the waiter list"
    );
    assert_eq!(r.stats().fetch_waiters_served, 2);
    assert_eq!(r.pending_fetch_count(), 0, "table drained");
}

/// A hash-shard edge whose uplink dies and comes back: tracks ring-walk
/// away (reroutes), the recovery probe re-attaches, and the shard moves
/// home again (rebalances) — updates delivered in every phase.
#[test]
fn revived_uplink_reclaims_shard_through_probe() {
    const TRACKS: usize = 4;
    let mut sim = Simulator::new(33);
    let link = LinkConfig::with_delay(Duration::from_millis(10));
    sim.set_default_link(link);
    let zone = zone_with(TRACKS);
    let questions: Vec<Question> = (0..TRACKS).map(question).collect();
    let qs = questions.clone();

    // auth → 2 cores → 1 hash-shard edge → 2 stubs.
    let topo = TopoBuilder::new()
        .tier("auth", 1, 0, link)
        .tier("core", 2, 1, link)
        .tier("edge", 1, 2, link)
        .tier("stub", 2, 1, link)
        .build(&mut sim, |sim, ctx| match ctx.tier_name {
            "auth" => sim.add_node(
                ctx.name.clone(),
                Box::new(AuthServer::new(
                    Authority::single(zone.clone()),
                    TransportConfig::default()
                        .idle_timeout(Duration::from_secs(3600))
                        .keep_alive(Duration::from_secs(25)),
                    11,
                )),
            ),
            "core" => sim.add_node(
                ctx.name.clone(),
                Box::new(
                    RelayNode::new(
                        Addr::new(ctx.parents[0], MOQT_PORT),
                        0,
                        40 + ctx.index as u64,
                    )
                    .tier("core"),
                ),
            ),
            "edge" => {
                let parents: Vec<Addr> = ctx
                    .parents
                    .iter()
                    .map(|&p| Addr::new(p, MOQT_PORT))
                    .collect();
                sim.add_node(
                    ctx.name.clone(),
                    Box::new(
                        RelayNode::with_policy(parents, Box::new(HashShard), 0, 60)
                            .probe_interval(Duration::from_secs(1))
                            .tier("edge"),
                    ),
                )
            }
            _ => sim.add_node(
                ctx.name.clone(),
                Box::new(Sub::new(
                    Addr::new(ctx.parents[0], MOQT_PORT),
                    qs.clone(),
                    100 + ctx.index as u64,
                )),
            ),
        });
    sim.run_until(sim.now() + Duration::from_secs(5));

    let cores = topo.tier_named("core").to_vec();
    let edge = topo.tier_named("edge")[0];
    let stubs = topo.tier_named("stub").to_vec();
    let auth = topo.tier_named("auth")[0];

    // Shard arithmetic: which uplink is home per track. (The edge's
    // uplink order equals `cores` order — one edge, rotation starts at 0.)
    let home = |i: usize| {
        let t = track_from_question(&questions[i], RequestFlags::iterative()).unwrap();
        (track_hash(&t) % 2) as usize
    };
    let victim = home(0);
    let victim_shard = (0..TRACKS).filter(|&i| home(i) == victim).count() as u64;

    let update_all = |sim: &mut Simulator, octet: u8| {
        for i in 0..TRACKS {
            let name = record_name(i);
            sim.with_node::<AuthServer, _>(auth, |a, ctx| {
                a.update_zone(ctx, |authority| {
                    if let Some(z) = authority.find_zone_mut(&name) {
                        z.set_records(
                            &name,
                            RecordType::A,
                            vec![Record::new(
                                name.clone(),
                                60,
                                RData::A(Ipv4Addr::new(198, 51, 100, octet)),
                            )],
                        );
                    }
                });
            });
        }
        sim.run_until(sim.now() + Duration::from_secs(5));
    };
    let delivered =
        |sim: &Simulator| -> u64 { stubs.iter().map(|&s| sim.node_ref::<Sub>(s).updates).sum() };

    // Phase 1: healthy mesh.
    update_all(&mut sim, 50);
    assert_eq!(delivered(&sim), (TRACKS * stubs.len()) as u64);

    // Kill the victim core: the edge ring-walks its shard to the other.
    sim.with_node::<RelayNode, _>(cores[victim], |r, ctx| r.shutdown(ctx));
    sim.run_until(sim.now() + Duration::from_secs(3));
    {
        let e = sim.node_ref::<RelayNode>(edge);
        assert_eq!(e.stats().reroutes, victim_shard);
        assert_eq!(e.stats().rebalances, 0);
    }
    let before = delivered(&sim);
    update_all(&mut sim, 51);
    assert_eq!(
        delivered(&sim) - before,
        (TRACKS * stubs.len()) as u64,
        "zero post-kill loss"
    );

    // Revive: the edge's 1 s probe re-dials, the Ready event marks the
    // uplink healthy, and the shard rebalances home.
    sim.with_node::<RelayNode, _>(cores[victim], |r, _| r.revive());
    sim.run_until(sim.now() + Duration::from_secs(10));
    {
        let e = sim.node_ref::<RelayNode>(edge);
        assert_eq!(e.stats().rebalances, victim_shard, "shard reclaimed");
        assert_eq!(e.upstream_subscription_count(), TRACKS);
    }
    assert_eq!(
        sim.node_ref::<RelayNode>(cores[victim])
            .upstream_subscription_count() as u64,
        victim_shard,
        "revived core re-aggregates its shard upstream"
    );
    let before = delivered(&sim);
    update_all(&mut sim, 52);
    assert_eq!(
        delivered(&sim) - before,
        (TRACKS * stubs.len()) as u64,
        "zero post-recovery loss"
    );
}

/// A relay facing a long uplink outage must redial on a *bounded,
/// counted* schedule: capped exponential backoff (base, 2×, 4×, then
/// flat at [`moqdns_core::relay_node::PROBE_MAX_BACKOFF`]× + jitter)
/// instead of a fixed-rate storm, with every attempt visible in
/// `RelayStats::redials` — and it must still reclaim the uplink promptly
/// after revival, after which the counter stops moving.
#[test]
fn redial_storm_is_counted_and_bounded_by_backoff() {
    const TRACKS: usize = 4;
    let mut sim = Simulator::new(44);
    let link = LinkConfig::with_delay(Duration::from_millis(10));
    sim.set_default_link(link);
    let zone = zone_with(TRACKS);
    let questions: Vec<Question> = (0..TRACKS).map(question).collect();
    let qs = questions.clone();

    // A straight chain: auth → core → edge (1 s probe base) → 2 stubs.
    let topo = TopoBuilder::new()
        .tier("auth", 1, 0, link)
        .tier("core", 1, 1, link)
        .tier("edge", 1, 1, link)
        .tier("stub", 2, 1, link)
        .build(&mut sim, |sim, ctx| match ctx.tier_name {
            "auth" => sim.add_node(
                ctx.name.clone(),
                Box::new(AuthServer::new(
                    Authority::single(zone.clone()),
                    TransportConfig::default()
                        .idle_timeout(Duration::from_secs(3600))
                        .keep_alive(Duration::from_secs(25)),
                    11,
                )),
            ),
            "core" | "edge" => {
                let r = RelayNode::new(
                    Addr::new(ctx.parents[0], MOQT_PORT),
                    0,
                    40 + ctx.index as u64,
                )
                .tier(ctx.tier_name);
                let r = if ctx.tier_name == "edge" {
                    r.probe_interval(Duration::from_secs(1))
                } else {
                    r
                };
                sim.add_node(ctx.name.clone(), Box::new(r))
            }
            _ => sim.add_node(
                ctx.name.clone(),
                Box::new(Sub::new(
                    Addr::new(ctx.parents[0], MOQT_PORT),
                    qs.clone(),
                    100 + ctx.index as u64,
                )),
            ),
        });
    sim.run_until(sim.now() + Duration::from_secs(5));

    let auth = topo.tier_named("auth")[0];
    let core = topo.tier_named("core")[0];
    let edge = topo.tier_named("edge")[0];
    let stubs = topo.tier_named("stub").to_vec();

    let update_all = |sim: &mut Simulator, octet: u8| {
        for i in 0..TRACKS {
            let name = record_name(i);
            sim.with_node::<AuthServer, _>(auth, |a, ctx| {
                a.update_zone(ctx, |authority| {
                    if let Some(z) = authority.find_zone_mut(&name) {
                        z.set_records(
                            &name,
                            RecordType::A,
                            vec![Record::new(
                                name.clone(),
                                60,
                                RData::A(Ipv4Addr::new(198, 51, 100, octet)),
                            )],
                        );
                    }
                });
            });
        }
        sim.run_until(sim.now() + Duration::from_secs(5));
    };
    let delivered =
        |sim: &Simulator| -> u64 { stubs.iter().map(|&s| sim.node_ref::<Sub>(s).updates).sum() };
    let edge_redials = |sim: &Simulator| sim.node_ref::<RelayNode>(edge).stats().redials;

    // Healthy baseline: full delivery, no redials anywhere.
    update_all(&mut sim, 50);
    assert_eq!(delivered(&sim), (TRACKS * stubs.len()) as u64);
    assert_eq!(edge_redials(&sim), 0);

    // Kill the core and hold the outage for 30 s. The edge's probe
    // schedule from the close is ~1, +2, +4, +8, +8, +8 … (jittered), so
    // a 30 s outage costs a handful of redials — a fixed 1 s cadence
    // would burn ~30.
    sim.with_node::<RelayNode, _>(core, |r, ctx| r.shutdown(ctx));
    sim.run_until(sim.now() + Duration::from_secs(30));
    let storm = edge_redials(&sim);
    assert!(
        (3..=8).contains(&storm),
        "capped backoff should cost 3..=8 redials over 30 s, got {storm}"
    );
    assert_eq!(
        sim.node_ref::<RelayNode>(edge).stats().failed_dials,
        0,
        "dials into a dark peer hang on the handshake, they don't error"
    );

    // Revive: the next (capped) probe lands within ~9 s and reclaims the
    // uplink; the counter stops moving once healthy.
    sim.with_node::<RelayNode, _>(core, |r, _| r.revive());
    sim.run_until(sim.now() + Duration::from_secs(15));
    assert_eq!(
        sim.node_ref::<RelayNode>(edge)
            .upstream_subscription_count(),
        TRACKS,
        "uplink reclaimed and every track resubscribed"
    );
    let after_recovery = edge_redials(&sim);
    assert!(
        after_recovery <= storm + 2,
        "recovery costs at most the in-flight probe plus one: {storm} -> {after_recovery}"
    );
    let before = delivered(&sim);
    update_all(&mut sim, 51);
    assert_eq!(
        delivered(&sim) - before,
        (TRACKS * stubs.len()) as u64,
        "zero post-recovery loss"
    );
    assert_eq!(
        edge_redials(&sim),
        after_recovery,
        "a healthy uplink never redials"
    );
}
