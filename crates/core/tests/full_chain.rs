//! Integration: the full DNS-over-MoQT hierarchy in one simulator —
//! stub resolver → recursive resolver → root/TLD/authoritative servers —
//! exercising the paper's Fig 2 lookup sequence, update push, fallback,
//! and the classic baseline.

use moqdns_core::auth::AuthServer;
use moqdns_core::recursive::{RecursiveConfig, RecursiveResolver, UpstreamMode};
use moqdns_core::stub::{StubMode, StubResolver};
use moqdns_core::{node_ip, DNS_PORT};
use moqdns_dns::message::Question;
use moqdns_dns::name::Name;
use moqdns_dns::rdata::RData;
use moqdns_dns::resolver::RootHint;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_netsim::{Addr, LinkConfig, NodeId, Simulator};
use moqdns_quic::TransportConfig;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Duration;

fn n(s: &str) -> Name {
    s.parse().unwrap()
}

fn a(name: &str, ttl: u32, ip: [u8; 4]) -> Record {
    Record::new(n(name), ttl, RData::A(Ipv4Addr::from(ip)))
}

/// A three-level hierarchy plus a recursive resolver and a stub.
struct World {
    sim: Simulator,
    root: NodeId,
    tld: NodeId,
    auth: NodeId,
    recursive: NodeId,
    stub: NodeId,
}

/// Builds the world. Node ids are allocated in order, so the zones can
/// reference each server's synthetic `10.x.y.z` address via glue records.
fn build(mode: UpstreamMode, stub_mode: StubMode, seed: u64) -> World {
    let mut sim = Simulator::new(seed);
    sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(10)));

    // Ids are dense: root=0, tld=1, auth=2, recursive=3, stub=4.
    let root_id = NodeId::from_index(0);
    let tld_id = NodeId::from_index(1);
    let auth_id = NodeId::from_index(2);

    let mut root_zone = Zone::with_default_soa(Name::root());
    root_zone.add_record(Record::new(n("com"), 86_400, RData::NS(n("ns.tld"))));
    root_zone.add_record(Record::new(n("ns.tld"), 86_400, RData::A(node_ip(tld_id))));

    let mut tld_zone = Zone::with_default_soa(n("com"));
    tld_zone.add_record(Record::new(
        n("example.com"),
        86_400,
        RData::NS(n("ns1.example.com")),
    ));
    tld_zone.add_record(Record::new(
        n("ns1.example.com"),
        86_400,
        RData::A(node_ip(auth_id)),
    ));

    let mut ex_zone = Zone::with_default_soa(n("example.com"));
    ex_zone.add_record(a("www.example.com", 300, [192, 0, 2, 1]));

    let root = sim.add_node(
        "root",
        Box::new(AuthServer::new(
            Authority::single(root_zone),
            TransportConfig::default(),
            11,
        )),
    );
    let tld = sim.add_node(
        "tld",
        Box::new(AuthServer::new(
            Authority::single(tld_zone),
            TransportConfig::default(),
            12,
        )),
    );
    let auth = sim.add_node(
        "auth",
        Box::new(AuthServer::new(
            Authority::single(ex_zone),
            TransportConfig::default(),
            13,
        )),
    );
    assert_eq!(root, root_id);
    assert_eq!(tld, tld_id);
    assert_eq!(auth, auth_id);

    let roots = vec![RootHint {
        name: n("a.root-servers.net"),
        addr: IpAddr::V4(node_ip(root)),
    }];
    let recursive = sim.add_node(
        "recursive",
        Box::new(RecursiveResolver::new(RecursiveConfig::new(
            mode, roots, 21,
        ))),
    );
    let stub = sim.add_node(
        "stub",
        Box::new(StubResolver::new(stub_mode, Addr::new(recursive, 0), 31)),
    );
    sim.run_until_idle();
    World {
        sim,
        root,
        tld,
        auth,
        recursive,
        stub,
    }
}

fn question() -> Question {
    Question::new(n("www.example.com"), RecordType::A)
}

fn lookup_and_settle(w: &mut World, horizon_ms: u64) {
    w.sim.with_node::<StubResolver, _>(w.stub, |s, ctx| {
        s.lookup(ctx, question());
    });
    let deadline = w.sim.now() + Duration::from_millis(horizon_ms);
    w.sim.run_until(deadline);
}

#[test]
fn classic_end_to_end_lookup() {
    let mut w = build(UpstreamMode::Classic, StubMode::Classic, 1);
    lookup_and_settle(&mut w, 2000);
    let stub = w.sim.node_ref::<StubResolver>(w.stub);
    assert_eq!(stub.metrics.lookups.len(), 1);
    let l = &stub.metrics.lookups[0];
    assert!(l.ok, "lookup succeeded");
    let answers = stub.answer(&question()).expect("answer stored");
    assert_eq!(answers[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
    // stub->recursive 1 RTT + recursive does root, TLD, auth = 3 RTT.
    // All links are 10 ms one-way, so total = 4 RTT = 80 ms.
    assert_eq!(l.latency(), Duration::from_millis(80));
}

#[test]
fn moqt_end_to_end_lookup_with_subscription() {
    let mut w = build(UpstreamMode::Moqt, StubMode::Moqt, 2);
    lookup_and_settle(&mut w, 5000);
    let stub = w.sim.node_ref::<StubResolver>(w.stub);
    assert_eq!(stub.metrics.lookups.len(), 1, "one lookup recorded");
    let l = &stub.metrics.lookups[0];
    assert!(l.ok, "MoQT lookup succeeded");
    let answers = stub.answer(&question()).expect("answer stored");
    assert_eq!(answers[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
    assert_eq!(stub.subscription_count(), 1, "stub holds a subscription");

    // The recursive holds upstream subscriptions for each lookup step.
    let rec = w.sim.node_ref::<RecursiveResolver>(w.recursive);
    assert!(
        rec.upstream_subscription_count() >= 1,
        "recursive subscribed upstream"
    );
    assert_eq!(rec.downstream_subscriber_count(), 1);
}

#[test]
fn update_is_pushed_all_the_way_to_the_stub() {
    let mut w = build(UpstreamMode::Moqt, StubMode::Moqt, 3);
    lookup_and_settle(&mut w, 5000);

    // Change the record at the authoritative server.
    let change_time = w.sim.now();
    w.sim.with_node::<AuthServer, _>(w.auth, |a, ctx| {
        a.update_zone(ctx, |auth| {
            auth.find_zone_mut(&n("www.example.com"))
                .unwrap()
                .set_records(
                    &n("www.example.com"),
                    RecordType::A,
                    vec![Record::new(
                        n("www.example.com"),
                        300,
                        RData::A(Ipv4Addr::new(192, 0, 2, 200)),
                    )],
                );
        });
    });
    let deadline = w.sim.now() + Duration::from_secs(2);
    w.sim.run_until(deadline);

    let stub = w.sim.node_ref::<StubResolver>(w.stub);
    assert!(
        !stub.metrics.updates.is_empty(),
        "update pushed to the stub without any lookup"
    );
    let answers = stub.answer(&question()).expect("answer present");
    assert_eq!(
        answers[0].rdata,
        RData::A(Ipv4Addr::new(192, 0, 2, 200)),
        "stub holds the NEW record version"
    );
    // The push arrived within a handful of link delays — far below any TTL.
    let arrival = stub.metrics.updates.last().unwrap().received;
    assert!(
        arrival - change_time < Duration::from_millis(200),
        "push latency {:?}",
        arrival - change_time
    );
}

#[test]
fn second_lookup_is_answered_locally() {
    let mut w = build(UpstreamMode::Moqt, StubMode::Moqt, 4);
    lookup_and_settle(&mut w, 5000);
    lookup_and_settle(&mut w, 1000);
    let stub = w.sim.node_ref::<StubResolver>(w.stub);
    assert_eq!(stub.metrics.lookups.len(), 2);
    let second = &stub.metrics.lookups[1];
    assert_eq!(
        second.latency(),
        Duration::ZERO,
        "subscribed record answered with zero network lookups (§5.2)"
    );
}

#[test]
fn happy_eyeballs_resolves() {
    let mut w = build(UpstreamMode::HappyEyeballs, StubMode::Classic, 5);
    lookup_and_settle(&mut w, 5000);
    let stub = w.sim.node_ref::<StubResolver>(w.stub);
    assert_eq!(stub.metrics.lookups.len(), 1);
    assert!(stub.metrics.lookups[0].ok);
}

#[test]
fn classic_stub_against_moqt_recursive() {
    // Mixed deployment: stub stays classic, recursive uses MoQT upstream.
    let mut w = build(UpstreamMode::Moqt, StubMode::Classic, 6);
    lookup_and_settle(&mut w, 5000);
    let stub = w.sim.node_ref::<StubResolver>(w.stub);
    assert!(stub.metrics.lookups[0].ok);
    let answers = stub.answer(&question()).unwrap();
    assert_eq!(answers[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
}

#[test]
fn cached_second_classic_lookup_is_fast() {
    let mut w = build(UpstreamMode::Classic, StubMode::Classic, 7);
    lookup_and_settle(&mut w, 2000);
    lookup_and_settle(&mut w, 2000);
    let stub = w.sim.node_ref::<StubResolver>(w.stub);
    assert_eq!(stub.metrics.lookups.len(), 2);
    // Second lookup: 1 RTT to the recursive (cache hit there).
    assert_eq!(stub.metrics.lookups[1].latency(), Duration::from_millis(20));
    let rec = w.sim.node_ref::<RecursiveResolver>(w.recursive);
    assert!(rec.cache().stats().hits >= 1);
}

#[test]
fn deterministic_across_identical_seeds() {
    let run = |seed| {
        let mut w = build(UpstreamMode::Moqt, StubMode::Moqt, seed);
        lookup_and_settle(&mut w, 5000);
        let stub = w.sim.node_ref::<StubResolver>(w.stub);
        stub.metrics.lookups[0].latency()
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn traffic_flows_where_expected() {
    let mut w = build(UpstreamMode::Moqt, StubMode::Moqt, 8);
    lookup_and_settle(&mut w, 5000);
    let stats = w.sim.stats();
    // Stub talked only to the recursive.
    assert!(stats.between(w.stub, w.recursive).datagrams > 0);
    assert_eq!(stats.between(w.stub, w.auth).datagrams, 0);
    // The recursive talked to all three servers.
    for server in [w.root, w.tld, w.auth] {
        assert!(stats.between(w.recursive, server).datagrams > 0);
    }
}

#[test]
fn classic_query_to_auth_direct_still_works() {
    // The auth servers answer plain UDP queries too (incremental deploy).
    let mut w = build(UpstreamMode::Classic, StubMode::Classic, 9);
    let q = moqdns_dns::message::Message::query(77, question());
    w.sim.with_node::<StubResolver, _>(w.stub, |_, ctx| {
        ctx.send(5353, Addr::new(NodeId::from_index(2), DNS_PORT), q.encode());
    });
    w.sim.run_until_idle();
    assert!(w.sim.stats().between(w.auth, w.stub).delivered > 0);
}
