//! Integration: simulated multi-relay distribution trees (paper §3 +
//! §5.3).
//!
//! A 3-tier tree — authoritative server → tier-1 relays → edge relays →
//! stub subscribers — built declaratively with `netsim::topo`, checking:
//!
//! * the §3 aggregation invariant: each update crosses every
//!   auth→tier1 and tier1→edge link exactly once while every stub still
//!   receives every update;
//! * failover: killing a tier-1 relay mid-run re-routes its edge relays
//!   to the surviving tier-1 without losing subsequent updates;
//! * upstream unsubscribe hygiene: when a relay's last downstream
//!   subscriber leaves, the relay drops its own upstream subscription;
//! * determinism of track-hash routing (property test).

use moqdns_core::auth::AuthServer;
use moqdns_core::mapping::{track_from_question, RequestFlags};
use moqdns_core::relay_node::RelayNode;
use moqdns_core::stack::{MoqtStack, StackEvent};
use moqdns_core::MOQT_PORT;
use moqdns_dns::message::Question;
use moqdns_dns::name::Name;
use moqdns_dns::rdata::RData;
use moqdns_dns::rr::{Record, RecordType};
use moqdns_dns::server::Authority;
use moqdns_dns::zone::Zone;
use moqdns_moqt::relay::{Failover, HashShard, RoutePolicy, UplinkHealth};
use moqdns_moqt::session::SessionEvent;
use moqdns_moqt::track::FullTrackName;
use moqdns_netsim::topo::TopoBuilder;
use moqdns_netsim::{Addr, Ctx, LinkConfig, Node, NodeId, Payload, Simulator, Topology};
use moqdns_quic::TransportConfig;
use proptest::prelude::*;
use std::any::Any;
use std::net::Ipv4Addr;
use std::time::Duration;

fn record_name() -> Name {
    "www.tree.example".parse().unwrap()
}

fn question() -> Question {
    Question::new(record_name(), RecordType::A)
}

/// Minimal subscribing leaf: one question, joining fetch, counts pushes.
struct Sub {
    stack: MoqtStack,
    server: Addr,
    updates: u64,
    fetched: bool,
}

impl Sub {
    fn new(server: Addr, seed: u64) -> Sub {
        Sub {
            stack: MoqtStack::client(
                TransportConfig::default()
                    .idle_timeout(Duration::from_secs(3600))
                    .keep_alive(Duration::from_secs(25)),
                seed,
            ),
            server,
            updates: 0,
            fetched: false,
        }
    }

    fn collect(&mut self, evs: Vec<StackEvent>) {
        for e in evs {
            match e {
                StackEvent::Session(_, SessionEvent::SubscriptionObject { .. }) => {
                    self.updates += 1;
                }
                StackEvent::Session(_, SessionEvent::FetchObjects { objects, .. }) => {
                    self.fetched = !objects.is_empty();
                }
                _ => {}
            }
        }
    }
}

impl Node for Sub {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let Some(h) = self.stack.connect(ctx.now(), self.server, false) else {
            return;
        };
        let track = track_from_question(&question(), RequestFlags::iterative()).unwrap();
        if let Some((sess, conn)) = self.stack.session_conn(h) {
            sess.subscribe_with_joining_fetch(conn, track, 1);
        }
        let evs = self.stack.flush(ctx);
        self.collect(evs);
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, d: Payload) {
        let evs = self.stack.on_datagram(ctx, from, &d);
        self.collect(evs);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let evs = self.stack.on_timer(ctx);
        self.collect(evs);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

struct Tree {
    sim: Simulator,
    topo: Topology,
    auth: NodeId,
    tier1: Vec<NodeId>,
    edges: Vec<NodeId>,
    stubs: Vec<NodeId>,
}

/// 1 auth, 2 tier-1 relays (static parent → auth), 4 edge relays
/// (failover across both tier-1s), `stubs_per_edge` stubs per edge.
fn build_tree(stubs_per_edge: usize, seed: u64) -> Tree {
    let mut sim = Simulator::new(seed);
    let link = LinkConfig::with_delay(Duration::from_millis(10));
    sim.set_default_link(link);

    let mut zone = Zone::with_default_soa("tree.example".parse().unwrap());
    zone.add_record(Record::new(
        record_name(),
        60,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));

    let topo = TopoBuilder::new()
        .tier("auth", 1, 0, link)
        .tier("tier1", 2, 1, link)
        .tier("edge", 4, 2, link)
        .tier("stub", 4 * stubs_per_edge, 1, link)
        .build(&mut sim, |sim, ctx| match ctx.tier_name {
            "auth" => sim.add_node(
                ctx.name.clone(),
                Box::new(AuthServer::new(
                    Authority::single(zone.clone()),
                    TransportConfig::default()
                        .idle_timeout(Duration::from_secs(3600))
                        .keep_alive(Duration::from_secs(25)),
                    11,
                )),
            ),
            "tier1" => sim.add_node(
                ctx.name.clone(),
                Box::new(
                    RelayNode::new(
                        Addr::new(ctx.parents[0], MOQT_PORT),
                        0,
                        40 + ctx.index as u64,
                    )
                    .tier("tier1"),
                ),
            ),
            "edge" => {
                let parents: Vec<Addr> = ctx
                    .parents
                    .iter()
                    .map(|&p| Addr::new(p, MOQT_PORT))
                    .collect();
                sim.add_node(
                    ctx.name.clone(),
                    Box::new(
                        RelayNode::with_policy(
                            parents,
                            Box::new(Failover),
                            0,
                            60 + ctx.index as u64,
                        )
                        .tier("edge"),
                    ),
                )
            }
            _ => sim.add_node(
                ctx.name.clone(),
                Box::new(Sub::new(
                    Addr::new(ctx.parents[0], MOQT_PORT),
                    100 + ctx.index as u64,
                )),
            ),
        });

    let tree = Tree {
        auth: topo.tier_named("auth")[0],
        tier1: topo.tier_named("tier1").to_vec(),
        edges: topo.tier_named("edge").to_vec(),
        stubs: topo.tier_named("stub").to_vec(),
        topo,
        sim,
    };
    tree
}

fn settle(tree: &mut Tree) {
    let deadline = tree.sim.now() + Duration::from_secs(5);
    tree.sim.run_until(deadline);
}

fn update_record(tree: &mut Tree, octet: u8) {
    let auth = tree.auth;
    tree.sim.with_node::<AuthServer, _>(auth, |a, ctx| {
        a.update_zone(ctx, |authority| {
            let name = record_name();
            if let Some(z) = authority.find_zone_mut(&name) {
                z.set_records(
                    &name,
                    RecordType::A,
                    vec![Record::new(
                        name.clone(),
                        60,
                        RData::A(Ipv4Addr::new(198, 51, 100, octet)),
                    )],
                );
            }
        });
    });
}

fn delivered(tree: &Tree) -> u64 {
    tree.stubs
        .iter()
        .map(|&s| tree.sim.node_ref::<Sub>(s).updates)
        .sum()
}

/// The acceptance topology: 1 auth, 2 tier-1, 4 edge, 64 stubs. Every
/// auth→relay and relay→relay link must see exactly one copy of each
/// update while all 64 stubs receive every update.
#[test]
fn aggregation_one_copy_per_link() {
    let mut tree = build_tree(16, 5);
    assert_eq!(tree.stubs.len(), 64);
    settle(&mut tree);

    // All joining fetches answered through two relay tiers.
    for &s in &tree.stubs {
        assert!(tree.sim.node_ref::<Sub>(s).fetched, "joining fetch served");
    }

    tree.sim.stats_mut().reset();
    const UPDATES: u64 = 3;
    for i in 0..UPDATES {
        update_record(&mut tree, 50 + i as u8);
        let deadline = tree.sim.now() + Duration::from_secs(2);
        tree.sim.run_until(deadline);
    }
    settle(&mut tree);

    // Complete delivery: every stub saw every update.
    for &s in &tree.stubs {
        assert_eq!(tree.sim.node_ref::<Sub>(s).updates, UPDATES);
    }
    assert_eq!(delivered(&tree), UPDATES * 64);

    // One copy per upstream link: the auth pushed each update once per
    // tier-1 relay, and each tier-1 forwarded once per attached edge —
    // exactly one datagram per update on every such link, no
    // multiplication by the 64 subscribers below.
    let upstream_links: Vec<(NodeId, NodeId)> = tree
        .topo
        .primary_edges()
        .filter(|(_, child)| tree.tier1.contains(child) || tree.edges.contains(child))
        .collect();
    assert_eq!(upstream_links.len(), 6);
    for (parent, child) in upstream_links {
        let s = tree.sim.stats().between(parent, child);
        assert_eq!(
            s.delivered,
            UPDATES,
            "{} -> {}: exactly one copy of each update",
            tree.sim.node_name(parent),
            tree.sim.node_name(child)
        );
    }

    // The relay layer agrees: one upstream subscription per relay, and
    // per-tier forward counts match tree arithmetic.
    for &id in tree.tier1.iter().chain(&tree.edges) {
        let r = tree.sim.node_ref::<RelayNode>(id);
        assert_eq!(r.upstream_subscription_count(), 1);
    }
    for &id in &tree.tier1 {
        let r = tree.sim.node_ref::<RelayNode>(id);
        assert_eq!(r.stats().objects_forwarded, UPDATES * 2, "2 edges each");
    }
    for &id in &tree.edges {
        let r = tree.sim.node_ref::<RelayNode>(id);
        assert_eq!(r.stats().objects_forwarded, UPDATES * 16, "16 stubs each");
    }
}

/// Killing one tier-1 relay mid-run: its edge relays fail over to the
/// surviving tier-1 and stubs keep receiving updates.
#[test]
fn failover_survives_tier1_kill() {
    let mut tree = build_tree(2, 6);
    settle(&mut tree);

    update_record(&mut tree, 77);
    settle(&mut tree);
    let after_phase1 = delivered(&tree);
    assert_eq!(after_phase1, 8, "all 8 stubs got the pre-kill update");

    // Take tier1[0] down; edges 0 and 2 (its children) must re-route.
    let victim = tree.tier1[0];
    tree.sim.with_node::<RelayNode, _>(victim, |r, ctx| {
        r.shutdown(ctx);
    });
    settle(&mut tree);

    update_record(&mut tree, 78);
    let deadline = tree.sim.now() + Duration::from_secs(10);
    tree.sim.run_until(deadline);

    assert_eq!(
        delivered(&tree) - after_phase1,
        8,
        "all stubs converged on the surviving path"
    );
    let reroutes: u64 = tree
        .edges
        .iter()
        .map(|&e| tree.sim.node_ref::<RelayNode>(e).stats().reroutes)
        .sum();
    assert_eq!(reroutes, 2, "edge0 and edge2 re-routed their track");
    // The surviving tier-1 now carries the whole tree.
    let survivor = tree.sim.node_ref::<RelayNode>(tree.tier1[1]);
    assert_eq!(survivor.upstream_subscription_count(), 1);
    assert!(tree.sim.node_ref::<RelayNode>(victim).is_dead());
}

/// Upstream unsubscribe hygiene (§3): when the last downstream subscriber
/// of a track unsubscribes, the relay drops its upstream subscription —
/// observable at the authoritative server.
#[test]
fn relay_drops_upstream_sub_when_last_downstream_leaves() {
    let mut sim = Simulator::new(9);
    sim.set_default_link(LinkConfig::with_delay(Duration::from_millis(10)));
    let mut zone = Zone::with_default_soa("tree.example".parse().unwrap());
    zone.add_record(Record::new(
        record_name(),
        60,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    let auth = sim.add_node(
        "auth",
        Box::new(AuthServer::new(
            Authority::single(zone),
            TransportConfig::default(),
            1,
        )),
    );
    let relay = sim.add_node(
        "relay",
        Box::new(RelayNode::new(Addr::new(auth, MOQT_PORT), 0, 2)),
    );

    /// Driveable client: subscribes/unsubscribes on demand.
    struct Client {
        stack: MoqtStack,
    }
    impl Node for Client {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, from: Addr, _to: u16, d: Payload) {
            let _ = self.stack.on_datagram(ctx, from, &d);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            let _ = self.stack.on_timer(ctx);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }
    let client = sim.add_node(
        "client",
        Box::new(Client {
            stack: MoqtStack::client(TransportConfig::default(), 3),
        }),
    );
    sim.run_until(sim.now() + Duration::from_millis(100));

    let relay_addr = Addr::new(relay, MOQT_PORT);
    let (h, sub_id) = sim.with_node::<Client, _>(client, |c, ctx| {
        let h = c.stack.connect(ctx.now(), relay_addr, false).unwrap();
        let track = track_from_question(&question(), RequestFlags::iterative()).unwrap();
        let (sess, conn) = c.stack.session_conn(h).unwrap();
        let id = sess.subscribe(conn, track);
        let _ = c.stack.flush(ctx);
        (h, id)
    });
    sim.run_until(sim.now() + Duration::from_secs(2));

    // One downstream sub at the relay, one aggregated upstream sub at the
    // authoritative server.
    assert_eq!(
        sim.node_ref::<RelayNode>(relay)
            .upstream_subscription_count(),
        1
    );
    assert_eq!(sim.node_ref::<AuthServer>(auth).subscription_count(), 1);

    // The last (only) downstream subscriber leaves…
    sim.with_node::<Client, _>(client, |c, ctx| {
        let (sess, conn) = c.stack.session_conn(h).unwrap();
        sess.unsubscribe(conn, sub_id);
        let _ = c.stack.flush(ctx);
    });
    sim.run_until(sim.now() + Duration::from_secs(2));

    // …and the relay's upstream subscription is gone, all the way up.
    assert_eq!(
        sim.node_ref::<RelayNode>(relay)
            .upstream_subscription_count(),
        0,
        "relay dropped its aggregated upstream subscription"
    );
    assert_eq!(
        sim.node_ref::<AuthServer>(auth).subscription_count(),
        0,
        "authoritative server no longer carries the relay's subscription"
    );
}

/// Whole-session teardown has the same hygiene as explicit unsubscribe.
#[test]
fn relay_drops_upstream_sub_when_downstream_session_dies() {
    let mut tree = build_tree(1, 12);
    settle(&mut tree);
    for &e in &tree.edges {
        assert_eq!(
            tree.sim
                .node_ref::<RelayNode>(e)
                .upstream_subscription_count(),
            1
        );
    }
    // Abandon every stub's connection (silent death; the edge sees the
    // peer vanish only via QUIC teardown, here forced with close_all).
    for &s in tree.stubs.clone().iter() {
        tree.sim.with_node::<Sub, _>(s, |n, ctx| {
            n.stack.close_all(ctx, 0x0, "stub gone");
        });
    }
    let deadline = tree.sim.now() + Duration::from_secs(5);
    tree.sim.run_until(deadline);
    for &e in &tree.edges {
        assert_eq!(
            tree.sim
                .node_ref::<RelayNode>(e)
                .upstream_subscription_count(),
            0,
            "edge relay dropped upstream subs after losing all stubs"
        );
    }
}

proptest! {
    /// Track-hash routing is a pure function of (track, shard count,
    /// health): fresh policy instances agree, regardless of any
    /// simulation seed or construction order.
    #[test]
    fn prop_hash_routing_deterministic(
        ns in proptest::collection::vec(any::<u8>(), 1..16),
        name in proptest::collection::vec(any::<u8>(), 0..16),
        k in 1u64..8,
    ) {
        let track = FullTrackName::new(vec![ns], name).unwrap();
        let k = k as usize;
        let h1 = UplinkHealth::new(k);
        let h2 = UplinkHealth::new(k);
        let r1 = HashShard.route(&track, &h1);
        let r2 = HashShard.route(&track, &h2);
        prop_assert_eq!(r1, r2);
        let u = r1.unwrap();
        prop_assert!(u < k);
        // Stable under repetition.
        for _ in 0..3 {
            prop_assert_eq!(HashShard.route(&track, &h1), Some(u));
        }
    }
}
