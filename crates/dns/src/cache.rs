//! A TTL-driven record cache (positive and negative entries).
//!
//! This models the caching behaviour the paper's §2 analysis targets: "a
//! record is requested from the next layer within the hierarchy only on
//! cache misses, i.e., when the TTL has expired" — so in the worst case a
//! record is as stale as the stacked TTLs along the lookup path. The
//! pub/sub variant exists to beat exactly this.
//!
//! Time is supplied by the caller as a [`SimTime`]-compatible nanosecond
//! instant so the cache works both in simulation and against a real clock.

use crate::message::Rcode;
use crate::name::Name;
use crate::rr::{Record, RecordType};
use moqdns_netsim::SimTime;
use std::collections::HashMap;
use std::time::Duration;

/// Key of a cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: Name,
    rtype: RecordType,
}

/// A cached entry: either records or a negative result.
#[derive(Debug, Clone)]
enum Entry {
    Positive {
        records: Vec<Record>,
        inserted: SimTime,
        expires: SimTime,
    },
    Negative {
        rcode: Rcode,
        inserted: SimTime,
        expires: SimTime,
    },
}

impl Entry {
    fn expires(&self) -> SimTime {
        match self {
            Entry::Positive { expires, .. } | Entry::Negative { expires, .. } => *expires,
        }
    }
    fn inserted(&self) -> SimTime {
        match self {
            Entry::Positive { inserted, .. } | Entry::Negative { inserted, .. } => *inserted,
        }
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheHit {
    /// Valid records, with TTLs decremented by the time already spent in
    /// this cache (what a resolver must serve downstream).
    Records(Vec<Record>),
    /// A cached negative answer (NXDOMAIN or NODATA as NoError).
    Negative(Rcode),
}

/// Counters for cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing or only expired entries.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// A TTL cache for DNS record sets.
pub struct Cache {
    entries: HashMap<Key, Entry>,
    max_entries: usize,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache holding at most `max_entries` record sets.
    pub fn new(max_entries: usize) -> Cache {
        Cache {
            entries: HashMap::new(),
            max_entries: max_entries.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Number of live + expired entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn key(name: &Name, rtype: RecordType) -> Key {
        Key {
            name: name.to_lowercase(),
            rtype,
        }
    }

    /// Inserts a positive record set. The entry's lifetime is the minimum
    /// TTL among `records`.
    pub fn insert(&mut self, now: SimTime, name: &Name, rtype: RecordType, records: Vec<Record>) {
        if records.is_empty() {
            return;
        }
        let min_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        let expires = now + Duration::from_secs(min_ttl as u64);
        self.make_room(now);
        self.entries.insert(
            Self::key(name, rtype),
            Entry::Positive {
                records,
                inserted: now,
                expires,
            },
        );
    }

    /// Inserts a negative answer (RFC 2308) with lifetime `ttl` seconds.
    pub fn insert_negative(
        &mut self,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
        rcode: Rcode,
        ttl: u32,
    ) {
        let expires = now + Duration::from_secs(ttl as u64);
        self.make_room(now);
        self.entries.insert(
            Self::key(name, rtype),
            Entry::Negative {
                rcode,
                inserted: now,
                expires,
            },
        );
    }

    /// Looks up (name, type); returns a hit only if unexpired at `now`.
    /// Positive hits have their TTLs reduced by the time spent cached.
    pub fn get(&mut self, now: SimTime, name: &Name, rtype: RecordType) -> Option<CacheHit> {
        let key = Self::key(name, rtype);
        let hit = match self.entries.get(&key) {
            Some(e) if e.expires() > now => match e {
                Entry::Positive {
                    records, inserted, ..
                } => {
                    let elapsed = (now - *inserted).as_secs() as u32;
                    let adjusted = records
                        .iter()
                        .map(|r| {
                            let mut r = r.clone();
                            r.ttl = r.ttl.saturating_sub(elapsed);
                            r
                        })
                        .collect();
                    Some(CacheHit::Records(adjusted))
                }
                Entry::Negative { rcode, .. } => Some(CacheHit::Negative(*rcode)),
            },
            _ => None,
        };
        if hit.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.entries.remove(&key); // drop expired entry, if any
        }
        hit
    }

    /// Looks up without mutating stats or evicting (for introspection).
    pub fn peek(&self, now: SimTime, name: &Name, rtype: RecordType) -> Option<&[Record]> {
        match self.entries.get(&Self::key(name, rtype)) {
            Some(Entry::Positive {
                records, expires, ..
            }) if *expires > now => Some(records),
            _ => None,
        }
    }

    /// Time at which the entry for (name, type) expires, if present.
    pub fn expiry(&self, name: &Name, rtype: RecordType) -> Option<SimTime> {
        self.entries
            .get(&Self::key(name, rtype))
            .map(|e| e.expires())
    }

    /// Removes the entry for (name, type) regardless of expiry.
    pub fn remove(&mut self, name: &Name, rtype: RecordType) {
        self.entries.remove(&Self::key(name, rtype));
    }

    /// Drops every expired entry.
    pub fn purge_expired(&mut self, now: SimTime) {
        self.entries.retain(|_, e| e.expires() > now);
    }

    /// Clears the whole cache.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Evicts to keep size under the cap: expired entries first, then the
    /// oldest by insertion time.
    fn make_room(&mut self, now: SimTime) {
        if self.entries.len() < self.max_entries {
            return;
        }
        let before = self.entries.len();
        self.purge_expired(now);
        let mut evicted = (before - self.entries.len()) as u64;
        while self.entries.len() >= self.max_entries {
            if let Some(key) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.inserted())
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&key);
                evicted += 1;
            } else {
                break;
            }
        }
        self.stats.evictions += evicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RData;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(name: &str, ttl: u32) -> Record {
        Record::new(n(name), ttl, RData::A(Ipv4Addr::new(192, 0, 2, 1)))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn hit_before_expiry_miss_after() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("x.com"), RecordType::A, vec![a("x.com", 300)]);
        assert!(c.get(t(299), &n("x.com"), RecordType::A).is_some());
        assert!(c.get(t(300), &n("x.com"), RecordType::A).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn ttl_decrements_with_age() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("x.com"), RecordType::A, vec![a("x.com", 300)]);
        match c.get(t(100), &n("x.com"), RecordType::A) {
            Some(CacheHit::Records(rs)) => assert_eq!(rs[0].ttl, 200),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn min_ttl_governs_record_set() {
        let mut c = Cache::new(16);
        c.insert(
            t(0),
            &n("x.com"),
            RecordType::A,
            vec![a("x.com", 60), a("x.com", 300)],
        );
        assert!(c.get(t(59), &n("x.com"), RecordType::A).is_some());
        assert!(c.get(t(61), &n("x.com"), RecordType::A).is_none());
    }

    #[test]
    fn negative_caching() {
        let mut c = Cache::new(16);
        c.insert_negative(t(0), &n("gone.com"), RecordType::A, Rcode::NxDomain, 300);
        assert_eq!(
            c.get(t(10), &n("gone.com"), RecordType::A),
            Some(CacheHit::Negative(Rcode::NxDomain))
        );
        assert!(c.get(t(301), &n("gone.com"), RecordType::A).is_none());
    }

    #[test]
    fn case_insensitive_keys() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("X.CoM"), RecordType::A, vec![a("x.com", 300)]);
        assert!(c.get(t(1), &n("x.com"), RecordType::A).is_some());
    }

    #[test]
    fn eviction_prefers_expired_then_oldest() {
        let mut c = Cache::new(2);
        c.insert(t(0), &n("a.com"), RecordType::A, vec![a("a.com", 10)]);
        c.insert(t(1), &n("b.com"), RecordType::A, vec![a("b.com", 1000)]);
        // a.com expired at t=10; inserting at t=20 evicts it, not b.com.
        c.insert(t(20), &n("c.com"), RecordType::A, vec![a("c.com", 1000)]);
        assert!(c.peek(t(21), &n("b.com"), RecordType::A).is_some());
        assert!(c.peek(t(21), &n("c.com"), RecordType::A).is_some());
        assert!(c.peek(t(21), &n("a.com"), RecordType::A).is_none());
        assert_eq!(c.len(), 2);

        // All live: evicts the oldest (b.com, inserted at t=1).
        c.insert(t(30), &n("d.com"), RecordType::A, vec![a("d.com", 1000)]);
        assert!(c.peek(t(31), &n("b.com"), RecordType::A).is_none());
        assert!(c.stats().evictions >= 2);
    }

    #[test]
    fn expiry_and_remove() {
        let mut c = Cache::new(16);
        c.insert(t(5), &n("x.com"), RecordType::A, vec![a("x.com", 100)]);
        assert_eq!(c.expiry(&n("x.com"), RecordType::A), Some(t(105)));
        c.remove(&n("x.com"), RecordType::A);
        assert!(c.expiry(&n("x.com"), RecordType::A).is_none());
    }

    #[test]
    fn purge_expired_removes_only_dead() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("a.com"), RecordType::A, vec![a("a.com", 10)]);
        c.insert(t(0), &n("b.com"), RecordType::A, vec![a("b.com", 100)]);
        c.purge_expired(t(50));
        assert_eq!(c.len(), 1);
        assert!(c.peek(t(50), &n("b.com"), RecordType::A).is_some());
    }

    #[test]
    fn types_are_separate_keys() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("x.com"), RecordType::A, vec![a("x.com", 100)]);
        assert!(c.get(t(1), &n("x.com"), RecordType::AAAA).is_none());
    }

    #[test]
    fn empty_insert_is_ignored() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("x.com"), RecordType::A, vec![]);
        assert!(c.is_empty());
    }
}
