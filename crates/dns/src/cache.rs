//! A TTL-driven record cache (positive and negative entries).
//!
//! This models the caching behaviour the paper's §2 analysis targets: "a
//! record is requested from the next layer within the hierarchy only on
//! cache misses, i.e., when the TTL has expired" — so in the worst case a
//! record is as stale as the stacked TTLs along the lookup path. The
//! pub/sub variant exists to beat exactly this.
//!
//! Time is supplied by the caller as a [`SimTime`]-compatible nanosecond
//! instant so the cache works both in simulation and against a real clock.
//!
//! ## Structure
//!
//! The cache is **sharded**: keys hash onto [`SHARD_COUNT`] independent
//! shards, each holding
//!
//! * a `HashMap` from key to a slot in a slab,
//! * an **intrusive LRU list** threaded through the slab slots (O(1)
//!   touch/evict, no separate allocation per entry), and
//! * a **`BinaryHeap` expiry index** of `(expires, generation, slot)`
//!   entries with lazy invalidation, so expired entries are found in
//!   O(log n) instead of scanning the whole map.
//!
//! Insert at capacity is O(log n): pop expired entries off the heaps, or
//! failing that evict the globally least-recently-used entry (the minimum
//! over the shards' LRU tails — a constant number of candidates). The old
//! implementation did a full-map `min_by_key` scan with key cloning per
//! eviction; see `BENCH_PR1.json` for the before/after numbers.
//! Statistics are kept per shard and rolled up into [`CacheStats`].

use crate::message::Rcode;
use crate::name::Name;
use crate::rr::{Record, RecordType};
use moqdns_netsim::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::time::Duration;

/// Number of shards (power of two). Small enough that scanning one LRU
/// candidate per shard during eviction is trivial; large enough to keep
/// per-shard structures shallow at millions of entries.
pub const SHARD_COUNT: usize = 8;

/// Sentinel for "no slot" in the intrusive LRU links.
const NIL: usize = usize::MAX;

/// Key of a cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: Name,
    rtype: RecordType,
}

/// A cached entry: either records or a negative result.
#[derive(Debug, Clone)]
enum Entry {
    Positive {
        records: Vec<Record>,
        inserted: SimTime,
        expires: SimTime,
    },
    Negative {
        rcode: Rcode,
        expires: SimTime,
    },
}

impl Entry {
    fn expires(&self) -> SimTime {
        match self {
            Entry::Positive { expires, .. } | Entry::Negative { expires, .. } => *expires,
        }
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheHit {
    /// Valid records, with TTLs decremented by the time already spent in
    /// this cache (what a resolver must serve downstream).
    Records(Vec<Record>),
    /// A cached negative answer (NXDOMAIN or NODATA as NoError).
    Negative(Rcode),
}

/// Counters for cache effectiveness. Kept per shard internally and rolled
/// up by [`Cache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing or only expired entries.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// A slab slot: the entry plus intrusive LRU links and heap bookkeeping.
#[derive(Debug)]
struct Slot {
    key: Key,
    entry: Entry,
    /// Bumped on every (re)write; stale heap handles fail to match.
    generation: u64,
    /// Global recency stamp (monotonic across shards) for LRU ordering.
    touched: u64,
    prev: usize,
    next: usize,
    occupied: bool,
}

/// One independent shard.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<Key, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// LRU list: head = least recently used, tail = most recently used.
    lru_head: usize,
    lru_tail: usize,
    /// Min-heap of (expires, generation, slot) with lazy invalidation.
    expiry: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    stats: CacheStats,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            lru_head: NIL,
            lru_tail: NIL,
            ..Shard::default()
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.lru_head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.lru_tail = prev,
            n => self.slots[n].prev = prev,
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    /// Links `idx` at the tail (most recently used).
    fn link_tail(&mut self, idx: usize) {
        self.slots[idx].prev = self.lru_tail;
        self.slots[idx].next = NIL;
        match self.lru_tail {
            // An empty list gains its head here; a non-empty list's head
            // is untouched.
            NIL => self.lru_head = idx,
            t => self.slots[t].next = idx,
        }
        self.lru_tail = idx;
    }

    fn touch(&mut self, idx: usize, stamp: u64) {
        self.slots[idx].touched = stamp;
        if self.lru_tail != idx {
            self.unlink(idx);
            self.link_tail(idx);
        }
    }

    /// Removes the slot for `key`, if present.
    fn remove(&mut self, key: &Key) {
        let Some(idx) = self.map.remove(key) else {
            return;
        };
        self.unlink(idx);
        let slot = &mut self.slots[idx];
        slot.occupied = false;
        slot.generation += 1; // invalidate heap handles
        self.free.push(idx);
    }

    fn remove_slot(&mut self, idx: usize) {
        let key = self.slots[idx].key.clone();
        self.map.remove(&key);
        self.unlink(idx);
        self.slots[idx].occupied = false;
        self.slots[idx].generation += 1;
        self.free.push(idx);
    }

    /// Rebuilds the expiry heap from live slots when stale handles
    /// dominate. Without this, a cache running below capacity (where
    /// `make_room` never pops) would accumulate one stale handle per
    /// re-insert forever. Amortized O(1) per insert.
    fn maybe_compact_expiry(&mut self) {
        if self.expiry.len() < 64 || self.expiry.len() < 2 * self.map.len() {
            return;
        }
        self.expiry = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.occupied)
            .map(|(i, s)| Reverse((s.entry.expires(), s.generation, i)))
            .collect();
    }

    /// Inserts or replaces `key`'s entry; O(log n) for the heap push.
    fn insert(&mut self, key: Key, entry: Entry, stamp: u64) {
        self.maybe_compact_expiry();
        let expires = entry.expires();
        match self.map.get(&key).copied() {
            Some(idx) => {
                let slot = &mut self.slots[idx];
                slot.entry = entry;
                slot.generation += 1;
                let generation = slot.generation;
                self.expiry.push(Reverse((expires, generation, idx)));
                self.touch(idx, stamp);
            }
            None => {
                let idx = match self.free.pop() {
                    Some(i) => {
                        let slot = &mut self.slots[i];
                        slot.key = key.clone();
                        slot.entry = entry;
                        slot.generation += 1;
                        slot.touched = stamp;
                        slot.occupied = true;
                        i
                    }
                    None => {
                        self.slots.push(Slot {
                            key: key.clone(),
                            entry,
                            generation: 0,
                            touched: stamp,
                            prev: NIL,
                            next: NIL,
                            occupied: true,
                        });
                        self.slots.len() - 1
                    }
                };
                self.map.insert(key, idx);
                self.link_tail(idx);
                let generation = self.slots[idx].generation;
                self.expiry.push(Reverse((expires, generation, idx)));
            }
        }
    }

    /// Earliest *valid* expiry in this shard, discarding stale heap
    /// entries on the way (amortized O(log n)).
    fn earliest_expiry(&mut self) -> Option<SimTime> {
        while let Some(Reverse((expires, generation, idx))) = self.expiry.peek().copied() {
            let live = self
                .slots
                .get(idx)
                .is_some_and(|s| s.occupied && s.generation == generation);
            if live {
                return Some(expires);
            }
            self.expiry.pop();
        }
        None
    }

    /// Pops and removes the earliest-expiring entry if it expires at or
    /// before `now`. Returns whether something was removed.
    fn pop_expired(&mut self, now: SimTime) -> bool {
        match self.earliest_expiry() {
            Some(expires) if expires <= now => {
                let Reverse((_, _, idx)) = self.expiry.pop().unwrap();
                self.remove_slot(idx);
                true
            }
            _ => false,
        }
    }
}

/// A TTL cache for DNS record sets: sharded, heap-indexed expiry,
/// intrusive LRU eviction.
pub struct Cache {
    shards: Vec<Shard>,
    hasher: BuildHasherDefault<DefaultHasher>,
    max_entries: usize,
    /// Global recency counter (shared across shards so LRU eviction can
    /// compare tails between shards).
    clock: u64,
}

impl Cache {
    /// Creates a cache holding at most `max_entries` record sets.
    pub fn new(max_entries: usize) -> Cache {
        Cache {
            shards: (0..SHARD_COUNT).map(|_| Shard::new()).collect(),
            hasher: BuildHasherDefault::default(),
            max_entries: max_entries.max(1),
            clock: 0,
        }
    }

    /// Number of live + expired entries currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters, rolled up across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.add(&s.stats);
        }
        total
    }

    /// Per-shard statistics (diagnostics; index = shard).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Per-shard entry counts (diagnostics; index = shard).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::len).collect()
    }

    fn key(name: &Name, rtype: RecordType) -> Key {
        Key {
            name: name.to_lowercase(),
            rtype,
        }
    }

    fn shard_of(&self, key: &Key) -> usize {
        (self.hasher.hash_one(key) as usize) & (SHARD_COUNT - 1)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Inserts a positive record set. The entry's lifetime is the minimum
    /// TTL among `records`.
    pub fn insert(&mut self, now: SimTime, name: &Name, rtype: RecordType, records: Vec<Record>) {
        if records.is_empty() {
            return;
        }
        let min_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        let expires = now + Duration::from_secs(min_ttl as u64);
        self.insert_entry(
            now,
            Self::key(name, rtype),
            Entry::Positive {
                records,
                inserted: now,
                expires,
            },
        );
    }

    /// Inserts a negative answer (RFC 2308) with lifetime `ttl` seconds.
    pub fn insert_negative(
        &mut self,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
        rcode: Rcode,
        ttl: u32,
    ) {
        let expires = now + Duration::from_secs(ttl as u64);
        self.insert_entry(
            now,
            Self::key(name, rtype),
            Entry::Negative { rcode, expires },
        );
    }

    fn insert_entry(&mut self, now: SimTime, key: Key, entry: Entry) {
        let shard = self.shard_of(&key);
        // Replacing an existing key never grows the cache.
        if !self.shards[shard].map.contains_key(&key) {
            self.make_room(now);
        }
        let stamp = self.tick();
        self.shards[shard].insert(key, entry, stamp);
    }

    /// Looks up (name, type); returns a hit only if unexpired at `now`.
    /// Positive hits have their TTLs reduced by the time spent cached. A
    /// hit refreshes the entry's LRU position.
    pub fn get(&mut self, now: SimTime, name: &Name, rtype: RecordType) -> Option<CacheHit> {
        let key = Self::key(name, rtype);
        let shard_idx = self.shard_of(&key);
        let stamp = self.tick();
        let shard = &mut self.shards[shard_idx];
        let hit = match shard.map.get(&key).copied() {
            Some(idx) if shard.slots[idx].entry.expires() > now => {
                let hit = match &shard.slots[idx].entry {
                    Entry::Positive {
                        records, inserted, ..
                    } => {
                        let elapsed = (now - *inserted).as_secs() as u32;
                        let adjusted = records
                            .iter()
                            .map(|r| {
                                let mut r = r.clone();
                                r.ttl = r.ttl.saturating_sub(elapsed);
                                r
                            })
                            .collect();
                        CacheHit::Records(adjusted)
                    }
                    Entry::Negative { rcode, .. } => CacheHit::Negative(*rcode),
                };
                shard.touch(idx, stamp);
                Some(hit)
            }
            _ => None,
        };
        if hit.is_some() {
            shard.stats.hits += 1;
        } else {
            shard.stats.misses += 1;
            shard.remove(&key); // drop expired entry, if any
        }
        hit
    }

    /// Looks up without mutating stats, LRU order, or expired entries
    /// (for introspection).
    pub fn peek(&self, now: SimTime, name: &Name, rtype: RecordType) -> Option<&[Record]> {
        let key = Self::key(name, rtype);
        let shard = &self.shards[self.shard_of(&key)];
        match shard.map.get(&key).map(|&i| &shard.slots[i].entry) {
            Some(Entry::Positive {
                records, expires, ..
            }) if *expires > now => Some(records),
            _ => None,
        }
    }

    /// Time at which the entry for (name, type) expires, if present.
    pub fn expiry(&self, name: &Name, rtype: RecordType) -> Option<SimTime> {
        let key = Self::key(name, rtype);
        let shard = &self.shards[self.shard_of(&key)];
        shard.map.get(&key).map(|&i| shard.slots[i].entry.expires())
    }

    /// Removes the entry for (name, type) regardless of expiry.
    pub fn remove(&mut self, name: &Name, rtype: RecordType) {
        let key = Self::key(name, rtype);
        let shard = self.shard_of(&key);
        self.shards[shard].remove(&key);
    }

    /// Drops every expired entry — amortized O(k log n) for k dead
    /// entries, driven by the expiry heaps instead of a full scan.
    pub fn purge_expired(&mut self, now: SimTime) {
        for shard in &mut self.shards {
            while shard.pop_expired(now) {}
        }
    }

    /// Clears the whole cache (statistics are retained).
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            let stats = shard.stats;
            *shard = Shard::new();
            shard.stats = stats;
        }
    }

    /// Evicts to keep size under the cap: expired entries first (found via
    /// the expiry heaps), then the globally least-recently-used entry
    /// (minimum over the shards' LRU tail candidates).
    fn make_room(&mut self, now: SimTime) {
        while self.len() >= self.max_entries {
            // Cheapest victim: anything already expired, O(log n).
            let expired_shard = (0..SHARD_COUNT)
                .find(|&i| self.shards[i].earliest_expiry().is_some_and(|e| e <= now));
            let victim_shard = match expired_shard {
                Some(i) => {
                    self.shards[i].pop_expired(now);
                    i
                }
                None => {
                    // All live: evict the globally least-recently-used
                    // entry. Each shard's LRU head is its oldest; compare
                    // the SHARD_COUNT candidates.
                    let Some(i) = (0..SHARD_COUNT)
                        .filter(|&i| self.shards[i].lru_head != NIL)
                        .min_by_key(|&i| {
                            let s = &self.shards[i];
                            s.slots[s.lru_head].touched
                        })
                    else {
                        return;
                    };
                    let head = self.shards[i].lru_head;
                    self.shards[i].remove_slot(head);
                    i
                }
            };
            self.shards[victim_shard].stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RData;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(name: &str, ttl: u32) -> Record {
        Record::new(n(name), ttl, RData::A(Ipv4Addr::new(192, 0, 2, 1)))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn hit_before_expiry_miss_after() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("x.com"), RecordType::A, vec![a("x.com", 300)]);
        assert!(c.get(t(299), &n("x.com"), RecordType::A).is_some());
        assert!(c.get(t(300), &n("x.com"), RecordType::A).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn ttl_decrements_with_age() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("x.com"), RecordType::A, vec![a("x.com", 300)]);
        match c.get(t(100), &n("x.com"), RecordType::A) {
            Some(CacheHit::Records(rs)) => assert_eq!(rs[0].ttl, 200),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn min_ttl_governs_record_set() {
        let mut c = Cache::new(16);
        c.insert(
            t(0),
            &n("x.com"),
            RecordType::A,
            vec![a("x.com", 60), a("x.com", 300)],
        );
        assert!(c.get(t(59), &n("x.com"), RecordType::A).is_some());
        assert!(c.get(t(61), &n("x.com"), RecordType::A).is_none());
    }

    #[test]
    fn negative_caching() {
        let mut c = Cache::new(16);
        c.insert_negative(t(0), &n("gone.com"), RecordType::A, Rcode::NxDomain, 300);
        assert_eq!(
            c.get(t(10), &n("gone.com"), RecordType::A),
            Some(CacheHit::Negative(Rcode::NxDomain))
        );
        assert!(c.get(t(301), &n("gone.com"), RecordType::A).is_none());
    }

    #[test]
    fn case_insensitive_keys() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("X.CoM"), RecordType::A, vec![a("x.com", 300)]);
        assert!(c.get(t(1), &n("x.com"), RecordType::A).is_some());
    }

    #[test]
    fn eviction_prefers_expired_then_oldest() {
        let mut c = Cache::new(2);
        c.insert(t(0), &n("a.com"), RecordType::A, vec![a("a.com", 10)]);
        c.insert(t(1), &n("b.com"), RecordType::A, vec![a("b.com", 1000)]);
        // a.com expired at t=10; inserting at t=20 evicts it, not b.com.
        c.insert(t(20), &n("c.com"), RecordType::A, vec![a("c.com", 1000)]);
        assert!(c.peek(t(21), &n("b.com"), RecordType::A).is_some());
        assert!(c.peek(t(21), &n("c.com"), RecordType::A).is_some());
        assert!(c.peek(t(21), &n("a.com"), RecordType::A).is_none());
        assert_eq!(c.len(), 2);

        // All live: evicts the least recently used (b.com, untouched
        // since its insert at t=1).
        c.insert(t(30), &n("d.com"), RecordType::A, vec![a("d.com", 1000)]);
        assert!(c.peek(t(31), &n("b.com"), RecordType::A).is_none());
        assert!(c.stats().evictions >= 2);
    }

    #[test]
    fn get_refreshes_lru_position() {
        let mut c = Cache::new(2);
        c.insert(t(0), &n("a.com"), RecordType::A, vec![a("a.com", 1000)]);
        c.insert(t(1), &n("b.com"), RecordType::A, vec![a("b.com", 1000)]);
        // Touch a.com: b.com becomes the LRU victim despite being newer.
        assert!(c.get(t(2), &n("a.com"), RecordType::A).is_some());
        c.insert(t(3), &n("c.com"), RecordType::A, vec![a("c.com", 1000)]);
        assert!(c.peek(t(4), &n("a.com"), RecordType::A).is_some());
        assert!(c.peek(t(4), &n("b.com"), RecordType::A).is_none());
        assert!(c.peek(t(4), &n("c.com"), RecordType::A).is_some());
    }

    #[test]
    fn eviction_order_follows_expiry_index() {
        // With a full cache of all-expired entries, make_room must drain
        // them in expiry order via the heap, never touching live ones.
        let mut c = Cache::new(4);
        c.insert(t(0), &n("e1.com"), RecordType::A, vec![a("e1.com", 5)]);
        c.insert(t(0), &n("e2.com"), RecordType::A, vec![a("e2.com", 10)]);
        c.insert(t(0), &n("e3.com"), RecordType::A, vec![a("e3.com", 15)]);
        c.insert(
            t(0),
            &n("live.com"),
            RecordType::A,
            vec![a("live.com", 10_000)],
        );
        // At t=20 all of e1..e3 are dead. Two inserts replace two of them.
        c.insert(t(20), &n("n1.com"), RecordType::A, vec![a("n1.com", 1000)]);
        c.insert(t(20), &n("n2.com"), RecordType::A, vec![a("n2.com", 1000)]);
        assert!(c.peek(t(21), &n("live.com"), RecordType::A).is_some());
        assert!(c.peek(t(21), &n("n1.com"), RecordType::A).is_some());
        assert!(c.peek(t(21), &n("n2.com"), RecordType::A).is_some());
        assert_eq!(c.len(), 4);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn expiry_heap_stays_bounded_below_capacity() {
        // Regression: a cache that never reaches capacity must not grow
        // its expiry heaps forever as hot keys are re-inserted.
        let mut c = Cache::new(100_000);
        for round in 0..10_000u64 {
            let name = n(&format!("hot-{}.example.com", round % 16));
            c.insert(t(round), &name, RecordType::A, vec![a("x.com", 3600)]);
        }
        assert_eq!(c.len(), 16);
        let heap_total: usize = c.shards.iter().map(|s| s.expiry.len()).sum();
        assert!(
            heap_total <= 2 * 16 + SHARD_COUNT * 64,
            "expiry heap leaked: {heap_total} handles for 16 live entries"
        );
    }

    #[test]
    fn reinsert_does_not_leak_heap_slots() {
        // Re-inserting the same key must invalidate the old heap handle;
        // purging afterwards must not remove the refreshed entry.
        let mut c = Cache::new(16);
        for round in 0..100u64 {
            c.insert(t(round), &n("x.com"), RecordType::A, vec![a("x.com", 3600)]);
        }
        assert_eq!(c.len(), 1);
        c.purge_expired(t(200));
        assert_eq!(c.len(), 1, "live refreshed entry must survive purge");
        assert!(c.peek(t(200), &n("x.com"), RecordType::A).is_some());
    }

    #[test]
    fn expiry_and_remove() {
        let mut c = Cache::new(16);
        c.insert(t(5), &n("x.com"), RecordType::A, vec![a("x.com", 100)]);
        assert_eq!(c.expiry(&n("x.com"), RecordType::A), Some(t(105)));
        c.remove(&n("x.com"), RecordType::A);
        assert!(c.expiry(&n("x.com"), RecordType::A).is_none());
    }

    #[test]
    fn purge_expired_removes_only_dead() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("a.com"), RecordType::A, vec![a("a.com", 10)]);
        c.insert(t(0), &n("b.com"), RecordType::A, vec![a("b.com", 100)]);
        c.purge_expired(t(50));
        assert_eq!(c.len(), 1);
        assert!(c.peek(t(50), &n("b.com"), RecordType::A).is_some());
    }

    #[test]
    fn types_are_separate_keys() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("x.com"), RecordType::A, vec![a("x.com", 100)]);
        assert!(c.get(t(1), &n("x.com"), RecordType::AAAA).is_none());
    }

    #[test]
    fn empty_insert_is_ignored() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("x.com"), RecordType::A, vec![]);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_is_respected_at_scale() {
        let mut c = Cache::new(64);
        for i in 0..1000 {
            c.insert(
                t(i),
                &n(&format!("host-{i}.example.com")),
                RecordType::A,
                vec![a("x.com", 10_000)],
            );
        }
        assert_eq!(c.len(), 64);
        assert_eq!(c.stats().evictions, 1000 - 64);
        // The survivors are exactly the most recently inserted ones.
        for i in 1000 - 64..1000 {
            assert!(
                c.peek(t(1000), &n(&format!("host-{i}.example.com")), RecordType::A)
                    .is_some(),
                "host-{i} should have survived"
            );
        }
    }

    #[test]
    fn shard_stats_roll_up() {
        let mut c = Cache::new(1024);
        for i in 0..256 {
            let name = n(&format!("d{i}.example.org"));
            c.insert(t(0), &name, RecordType::A, vec![a("x.com", 100)]);
            assert!(c.get(t(1), &name, RecordType::A).is_some());
        }
        let rolled = c.stats();
        let per_shard = c.shard_stats();
        assert_eq!(rolled.hits, 256);
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), rolled.hits);
        // The keys must actually spread over shards.
        let populated = c.shard_lens().iter().filter(|&&l| l > 0).count();
        assert!(
            populated > 1,
            "sharding must distribute keys: {:?}",
            c.shard_lens()
        );
    }

    #[test]
    fn clear_retains_stats() {
        let mut c = Cache::new(16);
        c.insert(t(0), &n("x.com"), RecordType::A, vec![a("x.com", 100)]);
        c.get(t(1), &n("x.com"), RecordType::A);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        // Reusable after clear.
        c.insert(t(2), &n("y.com"), RecordType::A, vec![a("y.com", 100)]);
        assert!(c.get(t(3), &n("y.com"), RecordType::A).is_some());
    }
}
