//! # moqdns-dns
//!
//! A from-scratch DNS implementation: the substrate the paper's prototype
//! took from `miekg/dns`, rebuilt in Rust.
//!
//! Contents:
//!
//! * [`name`] — domain names: labels, RFC 1035 length limits,
//!   case-insensitive comparison, wire form;
//! * [`rr`] / [`rdata`] — record types and typed RDATA for
//!   A, AAAA, NS, CNAME, SOA, PTR, MX, TXT, SRV, OPT, SVCB and HTTPS
//!   (RFC 9460), plus an opaque escape hatch;
//! * [`message`] — the RFC 1035 §4 message codec with name compression;
//! * [`zone`] — authoritative zones with the strictly monotonic **version
//!   number** that DNS-over-MoQT uses as the MoQT group ID (paper §4.2);
//! * [`server`] — authoritative answer logic (answers, referrals with glue,
//!   CNAME chasing, NXDOMAIN/NODATA with SOA);
//! * [`cache`] — a TTL cache with positive and negative entries;
//! * [`resolver`] — the sans-io iterative resolution state machine
//!   (root → TLD → authoritative);
//! * [`transport`] — classic DNS-over-UDP client/server state machines with
//!   retransmission, runnable over `moqdns-netsim` or real sockets.
//!
//! Everything is sans-io: no sockets, no clocks; callers feed in datagrams,
//! timeouts and the current time.

pub mod cache;
pub mod message;
pub mod name;
pub mod rdata;
pub mod resolver;
pub mod rr;
pub mod server;
pub mod transport;
pub mod zone;

pub use cache::Cache;
pub use message::{Header, Message, Opcode, Question, Rcode};
pub use name::Name;
pub use rdata::RData;
pub use rr::{RClass, Record, RecordType};
pub use zone::Zone;
