//! DNS messages (RFC 1035 §4): header, question, answer/authority/additional
//! sections, with name compression on encode and decompression on decode.

use crate::name::Name;
use crate::rdata::RData;
use crate::rr::{RClass, Record, RecordType};
use moqdns_wire::{Reader, WireError, WireResult, Writer};
use std::collections::HashMap;
use std::fmt;

/// DNS opcodes (we model QUERY; others are carried opaquely).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status.
    Status,
    /// Zone change notification (RFC 1996).
    Notify,
    /// Dynamic update (RFC 2136).
    Update,
    /// Any other 4-bit value.
    Unknown(u8),
}

impl Opcode {
    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(v) => v & 0xF,
        }
    }

    /// Parses the 4-bit wire value.
    pub fn from_u8(v: u8) -> Opcode {
        match v & 0xF {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }
}

/// DNS response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (authoritative).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused by policy.
    Refused,
    /// Any other 4-bit value.
    Unknown(u8),
}

impl Rcode {
    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(v) => v & 0xF,
        }
    }

    /// Parses the 4-bit wire value.
    pub fn from_u8(v: u8) -> Rcode {
        match v & 0xF {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Unknown(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Unknown(v) => write!(f, "RCODE{v}"),
        }
    }
}

/// The 12-byte DNS header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction id.
    pub id: u16,
    /// Query (false) or response (true).
    pub qr: bool,
    /// Operation.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated (response did not fit; retry over a stream transport).
    pub tc: bool,
    /// Recursion desired. Part of the MoQT namespace byte (paper Fig 3).
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Authenticated data (DNSSEC).
    pub ad: bool,
    /// Checking disabled (DNSSEC). Part of the MoQT namespace byte (Fig 3).
    pub cd: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    fn flags_to_u16(self) -> u16 {
        (self.qr as u16) << 15
            | (self.opcode.to_u8() as u16) << 11
            | (self.aa as u16) << 10
            | (self.tc as u16) << 9
            | (self.rd as u16) << 8
            | (self.ra as u16) << 7
            // bit 6 is Z, must be zero
            | (self.ad as u16) << 5
            | (self.cd as u16) << 4
            | self.rcode.to_u8() as u16
    }

    fn flags_from_u16(id: u16, flags: u16) -> Header {
        Header {
            id,
            qr: flags & (1 << 15) != 0,
            opcode: Opcode::from_u8((flags >> 11) as u8 & 0xF),
            aa: flags & (1 << 10) != 0,
            tc: flags & (1 << 9) != 0,
            rd: flags & (1 << 8) != 0,
            ra: flags & (1 << 7) != 0,
            ad: flags & (1 << 5) != 0,
            cd: flags & (1 << 4) != 0,
            rcode: Rcode::from_u8(flags as u8 & 0xF),
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Question {
    /// Queried name — becomes the MoQT track name in DNS-over-MoQT.
    pub qname: Name,
    /// Queried type — 2 bytes of the MoQT namespace tuple.
    pub qtype: RecordType,
    /// Queried class — 2 bytes of the MoQT namespace tuple.
    pub qclass: RClass,
}

impl Question {
    /// Convenience constructor for IN-class questions.
    pub fn new(qname: Name, qtype: RecordType) -> Question {
        Question {
            qname,
            qtype,
            qclass: RClass::IN,
        }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.qname, self.qclass, self.qtype)
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// Header with id, flags and rcode (section counts are derived).
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (NS for referrals, SOA for negative answers).
    pub authorities: Vec<Record>,
    /// Additional section (glue, EDNS OPT).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Builds a recursive-desired query for `question` with transaction `id`.
    pub fn query(id: u16, question: Question) -> Message {
        Message {
            header: Header {
                id,
                rd: true,
                ..Header::default()
            },
            questions: vec![question],
            ..Message::default()
        }
    }

    /// Starts a response consuming `query`: moves the question section
    /// instead of cloning it. Prefer this whenever the query is owned
    /// (just decoded or just built); use [`Message::response_to`] only
    /// when the query must stay borrowed.
    pub fn response(query: Message) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                qr: true,
                opcode: query.header.opcode,
                rd: query.header.rd,
                cd: query.header.cd,
                ..Header::default()
            },
            questions: query.questions,
            ..Message::default()
        }
    }

    /// Starts a response to a borrowed `query`: copies id, question,
    /// opcode, RD/CD. (The question clone is unavoidable here; owned
    /// callers should use [`Message::response`].)
    pub fn response_to(query: &Message) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                qr: true,
                opcode: query.header.opcode,
                rd: query.header.rd,
                cd: query.header.cd,
                ..Header::default()
            },
            questions: query.questions.clone(),
            ..Message::default()
        }
    }

    /// The first (and in practice only) question.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Encodes to wire format with name compression.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        self.encode_into(&mut w);
        w.into_vec()
    }

    /// Encodes onto `w` (which must be positioned at a message start —
    /// compression offsets are relative to it). Hot paths pass a recycled
    /// writer (see [`moqdns_wire::BufPool`]) to skip per-message
    /// allocation.
    pub fn encode_into(&self, w: &mut Writer) {
        let mut compressor = Compressor::default();
        w.put_u16(self.header.id);
        w.put_u16(self.header.flags_to_u16());
        w.put_u16(self.questions.len() as u16);
        w.put_u16(self.answers.len() as u16);
        w.put_u16(self.authorities.len() as u16);
        w.put_u16(self.additionals.len() as u16);
        for q in &self.questions {
            compressor.encode_name(w, &q.qname);
            w.put_u16(q.qtype.to_u16());
            w.put_u16(q.qclass.to_u16());
        }
        for r in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            compressor.encode_name(w, &r.name);
            w.put_u16(r.rtype().to_u16());
            w.put_u16(r.class.to_u16());
            w.put_u32(r.ttl);
            // RDATA with a placeholder length patched afterwards. Owner
            // names are compressed; names inside RDATA are written
            // uncompressed (always legal, and required for SVCB).
            let len_pos = w.len();
            w.put_u16(0);
            let before = w.len();
            r.rdata.encode(w);
            let rdlen = w.len() - before;
            w.patch_u16(len_pos, rdlen as u16);
        }
    }

    /// Decodes a message from `buf`. The entire buffer must be consumed.
    pub fn decode(buf: &[u8]) -> WireResult<Message> {
        let mut r = Reader::new(buf);
        let id = r.get_u16()?;
        let flags = r.get_u16()?;
        let header = Header::flags_from_u16(id, flags);
        let qd = r.get_u16()? as usize;
        let an = r.get_u16()? as usize;
        let ns = r.get_u16()? as usize;
        let ar = r.get_u16()? as usize;

        // Sanity bound: each question needs ≥5 bytes, each record ≥11.
        let min_needed = qd * 5 + (an + ns + ar) * 11;
        if min_needed > r.remaining() {
            return Err(WireError::Invalid {
                what: "section counts exceed buffer",
            });
        }

        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let qname = Name::decode(&mut r)?;
            let qtype = RecordType::from_u16(r.get_u16()?);
            let qclass = RClass::from_u16(r.get_u16()?);
            questions.push(Question {
                qname,
                qtype,
                qclass,
            });
        }

        let decode_records = |r: &mut Reader<'_>, n: usize| -> WireResult<Vec<Record>> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let name = Name::decode(r)?;
                let rtype = RecordType::from_u16(r.get_u16()?);
                let class = RClass::from_u16(r.get_u16()?);
                let ttl = r.get_u32()?;
                let rdlen = r.get_u16()? as usize;
                if rdlen > r.remaining() {
                    return Err(WireError::UnexpectedEnd {
                        needed: rdlen - r.remaining(),
                    });
                }
                let rdata = RData::decode(rtype, r, rdlen)?;
                out.push(Record {
                    name,
                    class,
                    ttl,
                    rdata,
                });
            }
            Ok(out)
        };

        let answers = decode_records(&mut r, an)?;
        let authorities = decode_records(&mut r, ns)?;
        let additionals = decode_records(&mut r, ar)?;
        r.expect_end()?;

        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    /// Encoded size in bytes (encodes internally; used by traffic models).
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

/// Name compressor: remembers the offset of every name suffix already
/// written and emits pointers to them (RFC 1035 §4.1.4).
#[derive(Default)]
struct Compressor {
    // Key: lowercased dotted suffix; value: offset in the message.
    seen: HashMap<String, u16>,
}

impl Compressor {
    fn encode_name(&mut self, w: &mut Writer, name: &Name) {
        let labels: Vec<&[u8]> = name.labels().collect();
        for i in 0..labels.len() {
            let suffix_key = Self::suffix_key(&labels[i..]);
            if let Some(&off) = self.seen.get(&suffix_key) {
                w.put_u16(0xC000 | off);
                return;
            }
            // Pointers can only address the first 16 KiB - 2 bits of offset.
            if w.len() <= 0x3FFF {
                self.seen.insert(suffix_key, w.len() as u16);
            }
            w.put_u8(labels[i].len() as u8);
            w.put_slice(labels[i]);
        }
        w.put_u8(0);
    }

    fn suffix_key(labels: &[&[u8]]) -> String {
        let mut s = String::new();
        for l in labels {
            for b in l.iter() {
                s.push(b.to_ascii_lowercase() as char);
            }
            s.push('.');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::Soa;
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn sample_response() -> Message {
        let q = Question::new(n("www.example.com"), RecordType::A);
        let mut m = Message::query(0x1234, q.clone());
        m.header.qr = true;
        m.header.aa = true;
        m.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        m.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 2)),
        ));
        m.authorities.push(Record::new(
            n("example.com"),
            3600,
            RData::NS(n("ns1.example.com")),
        ));
        m.additionals.push(Record::new(
            n("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        m
    }

    #[test]
    fn roundtrip_full_message() {
        let m = sample_response();
        let wire = m.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let m = sample_response();
        let wire = m.encode();
        // Four mentions of (www.)example.com; with compression the message
        // must be much smaller than the naive encoding.
        let naive: usize = 12
            + m.questions
                .iter()
                .map(|q| q.qname.wire_len() + 4)
                .sum::<usize>()
            + m.answers
                .iter()
                .chain(&m.authorities)
                .chain(&m.additionals)
                .map(|r| r.name.wire_len() + 10 + 16)
                .sum::<usize>();
        assert!(wire.len() < naive, "{} !< {}", wire.len(), naive);
        // Spot-check: the second answer's owner name is a 2-byte pointer.
        let count_c0 = wire.windows(1).filter(|w| w[0] & 0xC0 == 0xC0).count();
        assert!(count_c0 >= 3, "expected pointers, found {count_c0}");
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut m = Message::query(1, Question::new(n("WWW.EXAMPLE.COM"), RecordType::A));
        m.answers.push(Record::new(
            n("www.example.com"),
            60,
            RData::A(Ipv4Addr::new(1, 1, 1, 1)),
        ));
        let wire = m.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back.answers[0].name, n("www.example.com"));
        // The answer owner must be a pointer (2 bytes) to the question name.
        // Question starts at offset 12; answer owner right after qname+4.
        let qname_len = n("www.example.com").wire_len();
        let ans_owner_off = 12 + qname_len + 4;
        assert_eq!(wire[ans_owner_off] & 0xC0, 0xC0);
    }

    #[test]
    fn header_flags_roundtrip_all_set() {
        let h = Header {
            id: 0xBEEF,
            qr: true,
            opcode: Opcode::Update,
            aa: true,
            tc: true,
            rd: true,
            ra: true,
            ad: true,
            cd: true,
            rcode: Rcode::Refused,
        };
        let m = Message {
            header: h,
            ..Message::default()
        };
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(back.header, h);
    }

    #[test]
    fn soa_negative_answer_roundtrip() {
        let q = Question::new(n("nope.example.com"), RecordType::A);
        let mut m = Message::response_to(&Message::query(7, q));
        m.header.rcode = Rcode::NxDomain;
        m.authorities.push(Record::new(
            n("example.com"),
            300,
            RData::SOA(Soa {
                mname: n("ns1.example.com"),
                rname: n("hostmaster.example.com"),
                serial: 1,
                refresh: 2,
                retry: 3,
                expire: 4,
                minimum: 300,
            }),
        ));
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn response_to_copies_identity() {
        let q = Message::query(42, Question::new(n("a.b"), RecordType::AAAA));
        let r = Message::response_to(&q);
        assert_eq!(r.header.id, 42);
        assert!(r.header.qr);
        assert!(r.header.rd);
        assert_eq!(r.questions, q.questions);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut wire = Message::query(1, Question::new(n("x.y"), RecordType::A)).encode();
        wire.push(0);
        assert!(matches!(
            Message::decode(&wire),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn decode_rejects_absurd_counts() {
        // Header claiming 65535 answers with an empty body.
        let mut w = Writer::new();
        w.put_u16(1); // id
        w.put_u16(0); // flags
        w.put_u16(0);
        w.put_u16(0xFFFF);
        w.put_u16(0);
        w.put_u16(0);
        assert!(Message::decode(&w.into_vec()).is_err());
    }

    #[test]
    fn decode_rejects_rdlen_overrun() {
        let q = Question::new(n("x.y"), RecordType::A);
        let mut m = Message::query(1, q);
        m.header.qr = true;
        m.answers.push(Record::new(
            n("x.y"),
            60,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        let mut wire = m.encode();
        // Corrupt the RDLENGTH (last 6 bytes are len(2)+addr(4)).
        let len = wire.len();
        wire[len - 6..len - 4].copy_from_slice(&100u16.to_be_bytes());
        assert!(Message::decode(&wire).is_err());
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(Message::decode(&[0, 1, 2]).is_err());
        assert!(Message::decode(&[]).is_err());
    }

    #[test]
    fn empty_message_roundtrip() {
        let m = Message::default();
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
        assert_eq!(m.wire_size(), 12);
    }

    proptest! {
        #[test]
        fn prop_decode_arbitrary_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Message::decode(&bytes);
        }

        #[test]
        fn prop_query_roundtrip(
            id in any::<u16>(),
            s in "[a-z]{1,10}(\\.[a-z]{1,10}){0,3}",
            t in 0u16..70,
        ) {
            let q = Question {
                qname: s.parse().unwrap(),
                qtype: RecordType::from_u16(t),
                qclass: RClass::IN,
            };
            let m = Message::query(id, q);
            prop_assert_eq!(Message::decode(&m.encode()).unwrap(), m);
        }

        #[test]
        fn prop_compression_roundtrip(
            apex in "[a-z]{1,8}\\.[a-z]{2,3}",
            hosts in proptest::collection::vec("[a-z0-9]{1,10}", 1..6),
            ttl in 1u32..86_400,
        ) {
            // Random shared-suffix names force the compressor to emit
            // pointers; decompression must reconstruct every name exactly.
            let qname: Name = format!("{}.{}", hosts[0], apex).parse().unwrap();
            let mut m = Message::query(1, Question::new(qname, RecordType::A));
            m.header.qr = true;
            for h in &hosts {
                let name: Name = format!("{h}.{apex}").parse().unwrap();
                m.answers.push(Record::new(name, ttl, RData::A(Ipv4Addr::new(192, 0, 2, 7))));
            }
            let apex_name: Name = apex.parse().unwrap();
            m.authorities.push(Record::new(
                apex_name,
                ttl,
                RData::NS(format!("ns1.{apex}").parse().unwrap()),
            ));
            let wire = m.encode();
            prop_assert_eq!(Message::decode(&wire).unwrap(), m);
        }

        #[test]
        fn prop_encode_into_matches_encode(
            s in "[a-z]{1,10}(\\.[a-z]{1,10}){0,3}",
            n_extra in 0usize..4,
        ) {
            // The reusable-writer path must be byte-identical to encode(),
            // including when the writer is recycled between messages.
            let mut m = Message::query(3, Question::new(s.parse().unwrap(), RecordType::A));
            for _ in 0..n_extra {
                m.answers.push(Record::new(
                    s.parse().unwrap(),
                    60,
                    RData::A(Ipv4Addr::new(203, 0, 113, 9)),
                ));
            }
            let mut w = Writer::reuse(vec![0xFF; 512]);
            m.encode_into(&mut w);
            prop_assert_eq!(w.as_slice(), &m.encode()[..]);
        }
    }
}
