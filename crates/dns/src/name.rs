//! Domain names (RFC 1035 §3.1).
//!
//! A [`Name`] is a sequence of labels. Limits enforced: each label is 1–63
//! bytes, and the wire form of the whole name (labels plus length octets
//! plus the root terminator) is at most 255 bytes. Comparison and hashing
//! are ASCII case-insensitive, as required for DNS names; the original
//! spelling is preserved for display.

use moqdns_wire::{Reader, WireError, WireResult, Writer};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

/// Maximum length of one label in bytes.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name's wire form in bytes.
pub const MAX_NAME_LEN: usize = 255;
/// Maximum pointer jumps followed while decompressing (loop guard).
const MAX_POINTER_JUMPS: usize = 32;

/// A fully-qualified domain name.
///
/// ```
/// use moqdns_dns::Name;
/// let n: Name = "www.Example.COM".parse().unwrap();
/// assert_eq!(n.to_string(), "www.Example.COM.");
/// assert_eq!(n, "WWW.example.com.".parse().unwrap()); // case-insensitive
/// assert_eq!(n.num_labels(), 3);
/// assert!(n.is_subdomain_of(&"example.com".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Eq, Default)]
pub struct Name {
    /// Labels, leftmost first. Empty = the root.
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Name {
        Name { labels: Vec::new() }
    }

    /// Builds a name from raw label byte strings.
    pub fn from_labels<I, L>(labels: I) -> Result<Name, NameError>
    where
        I: IntoIterator<Item = L>,
        L: Into<Vec<u8>>,
    {
        let labels: Vec<Vec<u8>> = labels.into_iter().map(Into::into).collect();
        let name = Name { labels };
        name.validate()?;
        Ok(name)
    }

    fn validate(&self) -> Result<(), NameError> {
        for l in &self.labels {
            if l.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(l.len()));
            }
        }
        if self.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(self.wire_len()));
        }
        Ok(())
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels (0 for the root).
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// The labels, leftmost first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_slice())
    }

    /// Length of the uncompressed wire form (length octets + labels + root).
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// The name with the leftmost label removed; `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.is_root() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Creates `child.self` by prepending a label.
    pub fn prepend(&self, label: impl Into<Vec<u8>>) -> Result<Name, NameError> {
        let mut labels = vec![label.into()];
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// True if `self` equals `ancestor` or is beneath it.
    ///
    /// Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        if ancestor.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - ancestor.labels.len();
        self.labels[offset..]
            .iter()
            .zip(&ancestor.labels)
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// ASCII-lowercased copy (canonical form for keys).
    pub fn to_lowercase(&self) -> Name {
        Name {
            labels: self.labels.iter().map(|l| l.to_ascii_lowercase()).collect(),
        }
    }

    /// Encodes the uncompressed wire form.
    pub fn encode(&self, w: &mut Writer) {
        for l in &self.labels {
            w.put_u8(l.len() as u8);
            w.put_slice(l);
        }
        w.put_u8(0);
    }

    /// The uncompressed wire form as a byte vector.
    ///
    /// This is exactly what DNS-over-MoQT uses as the MoQT **track name**
    /// (paper §4.3, Fig 3).
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.wire_len());
        self.encode(&mut w);
        w.into_vec()
    }

    /// Decodes a name, following compression pointers (RFC 1035 §4.1.4).
    ///
    /// The reader must be positioned inside the full message buffer so that
    /// pointers (absolute offsets) can be resolved; pointers must point
    /// strictly backwards, and at most `MAX_POINTER_JUMPS` (32) are followed.
    pub fn decode(r: &mut Reader<'_>) -> WireResult<Name> {
        let mut labels = Vec::new();
        let mut jumps = 0usize;
        // After the first pointer jump we stop advancing the real cursor.
        let mut saved_pos: Option<usize> = None;
        let mut wire_len = 1usize; // root terminator
        let mut min_ptr = r.position(); // pointers must go strictly backwards

        loop {
            let len = r.get_u8()?;
            match len {
                0 => break,
                1..=63 => {
                    let l = r.get_vec(len as usize)?;
                    wire_len += 1 + l.len();
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::Invalid {
                            what: "name too long",
                        });
                    }
                    labels.push(l);
                }
                _ if len & 0b1100_0000 == 0b1100_0000 => {
                    let lo = r.get_u8()?;
                    let target = ((len as usize & 0b0011_1111) << 8) | lo as usize;
                    if target >= min_ptr {
                        return Err(WireError::Invalid {
                            what: "forward or self compression pointer",
                        });
                    }
                    jumps += 1;
                    if jumps > MAX_POINTER_JUMPS {
                        return Err(WireError::Invalid {
                            what: "compression pointer loop",
                        });
                    }
                    if saved_pos.is_none() {
                        saved_pos = Some(r.position());
                    }
                    min_ptr = target;
                    r.seek(target)?;
                }
                _ => {
                    return Err(WireError::Invalid {
                        what: "label type (only 00/11 defined)",
                    })
                }
            }
        }
        if let Some(p) = saved_pos {
            r.seek(p)?;
        }
        Ok(Name { labels })
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(&other.labels)
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.labels.len());
        for l in &self.labels {
            for b in l {
                state.write_u8(b.to_ascii_lowercase());
            }
            state.write_u8(0xFF); // label separator
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering (RFC 4034 §6.1): compare by label from the
    /// rightmost (closest to root), case-insensitively.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.labels.iter().rev();
        let b = other.labels.iter().rev();
        for (la, lb) in a.zip(b) {
            let la = la.to_ascii_lowercase();
            let lb = lb.to_ascii_lowercase();
            match la.cmp(&lb) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        self.labels.len().cmp(&other.labels.len())
    }
}

impl FromStr for Name {
    type Err = NameError;

    /// Parses dotted notation; a trailing dot is optional. The empty string
    /// and `"."` are the root.
    fn from_str(s: &str) -> Result<Name, NameError> {
        if s.is_empty() || s == "." {
            return Ok(Name::root());
        }
        let s = s.strip_suffix('.').unwrap_or(s);
        let labels: Vec<Vec<u8>> = s.split('.').map(|l| l.as_bytes().to_vec()).collect();
        Name::from_labels(labels)
    }
}

impl fmt::Display for Name {
    /// Dotted notation with a trailing dot (FQDN form); the root prints `.`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for l in &self.labels {
            for &b in l {
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{b:03}")?;
                }
            }
            write!(f, ".")?;
        }
        Ok(())
    }
}

/// Errors constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (e.g. `a..b`).
    EmptyLabel,
    /// A label exceeded 63 bytes.
    LabelTooLong(usize),
    /// The whole name exceeded 255 wire bytes.
    NameTooLong(usize),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(n) => write!(f, "label too long ({n} > {MAX_LABEL_LEN})"),
            NameError::NameTooLong(n) => write!(f, "name too long ({n} > {MAX_NAME_LEN})"),
        }
    }
}

impl std::error::Error for NameError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("example.com").to_string(), "example.com.");
        assert_eq!(n("example.com.").to_string(), "example.com.");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("").to_string(), ".");
        assert_eq!(n("a.b.c").num_labels(), 3);
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        use std::collections::HashSet;
        assert_eq!(n("Example.COM"), n("example.com"));
        let mut set = HashSet::new();
        set.insert(n("Example.COM"));
        assert!(set.contains(&n("eXaMpLe.CoM")));
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!("a..b".parse::<Name>(), Err(NameError::EmptyLabel));
        let long = "x".repeat(64);
        assert!(matches!(
            long.parse::<Name>(),
            Err(NameError::LabelTooLong(64))
        ));
        // 255-byte wire limit: 4 labels of 63 = 4*64 + 1 = 257 > 255.
        let l63 = "y".repeat(63);
        let too_long = format!("{l63}.{l63}.{l63}.{l63}");
        assert!(matches!(
            too_long.parse::<Name>(),
            Err(NameError::NameTooLong(_))
        ));
        // 3 labels of 63 + 1 label of 61 = 3*64 + 62 + 1 = 255: exactly legal.
        let l61 = "z".repeat(61);
        let ok = format!("{l63}.{l63}.{l63}.{l61}");
        assert_eq!(ok.parse::<Name>().unwrap().wire_len(), 255);
    }

    #[test]
    fn wire_roundtrip_simple() {
        let name = n("www.example.com");
        let wire = name.to_wire();
        assert_eq!(wire, b"\x03www\x07example\x03com\x00");
        let mut r = Reader::new(&wire);
        assert_eq!(Name::decode(&mut r).unwrap(), name);
        assert!(r.is_empty());
    }

    #[test]
    fn root_wire_form() {
        assert_eq!(Name::root().to_wire(), vec![0]);
        assert_eq!(Name::root().wire_len(), 1);
    }

    #[test]
    fn decode_with_compression_pointer() {
        // Buffer: at 0: "example.com." ; at 13: "www" + pointer to 0.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"\x07example\x03com\x00"); // 13 bytes
        buf.extend_from_slice(b"\x03www");
        buf.extend_from_slice(&[0xC0, 0x00]); // pointer to offset 0
        let mut r = Reader::new(&buf);
        r.seek(13).unwrap();
        let got = Name::decode(&mut r).unwrap();
        assert_eq!(got, n("www.example.com"));
        // Cursor continues after the pointer, not at the target.
        assert!(r.is_empty());
    }

    #[test]
    fn decode_rejects_pointer_loops() {
        // Pointer at offset 2 pointing to itself via offset 0.
        let buf = [0xC0u8, 0x02, 0xC0, 0x00];
        let mut r = Reader::new(&buf);
        r.seek(2).unwrap();
        // 2 -> 0 -> 2 would loop; forward/self pointers are rejected.
        assert!(Name::decode(&mut r).is_err());
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        let buf = [0xC0u8, 0x02, 0x00];
        let mut r = Reader::new(&buf);
        assert!(Name::decode(&mut r).is_err());
    }

    #[test]
    fn decode_rejects_reserved_label_types() {
        let buf = [0b1000_0001u8, 0x00];
        let mut r = Reader::new(&buf);
        assert!(Name::decode(&mut r).is_err());
    }

    #[test]
    fn subdomain_relationships() {
        assert!(n("www.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&Name::root()));
        assert!(!n("example.com").is_subdomain_of(&n("www.example.com")));
        assert!(!n("anexample.com").is_subdomain_of(&n("example.com")));
        assert!(n("WWW.EXAMPLE.COM").is_subdomain_of(&n("example.com")));
    }

    #[test]
    fn parent_chain() {
        let name = n("a.b.c");
        let p1 = name.parent().unwrap();
        assert_eq!(p1, n("b.c"));
        let p2 = p1.parent().unwrap().parent().unwrap();
        assert!(p2.is_root());
        assert!(p2.parent().is_none());
    }

    #[test]
    fn prepend_builds_children() {
        let base = n("example.com");
        assert_eq!(base.prepend("www").unwrap(), n("www.example.com"));
        assert!(base.prepend(vec![b'x'; 64]).is_err());
    }

    #[test]
    fn canonical_ordering() {
        // RFC 4034 §6.1 example ordering.
        let mut names = vec![
            n("example.com"),
            n("a.example.com"),
            n("yljkjljk.a.example.com"),
            n("z.a.example.com"),
            n("zabc.a.example.com"),
            n("z.example.com"),
        ];
        let sorted = names.clone();
        names.reverse();
        names.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn display_escapes_non_printable() {
        let name = Name::from_labels([&b"a\x00b"[..]]).unwrap();
        assert_eq!(name.to_string(), "a\\000b.");
    }

    proptest! {
        #[test]
        fn prop_wire_roundtrip(labels in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..=20), 0..6)
        ) {
            if let Ok(name) = Name::from_labels(labels) {
                let wire = name.to_wire();
                let mut r = Reader::new(&wire);
                let back = Name::decode(&mut r).unwrap();
                prop_assert_eq!(back, name);
                prop_assert!(r.is_empty());
            }
        }

        #[test]
        fn prop_parse_display_roundtrip(s in "[a-z0-9]{1,10}(\\.[a-z0-9]{1,10}){0,4}") {
            let name: Name = s.parse().unwrap();
            let redisplayed: Name = name.to_string().parse().unwrap();
            prop_assert_eq!(name, redisplayed);
        }

        #[test]
        fn prop_decode_arbitrary_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut r = Reader::new(&bytes);
            let _ = Name::decode(&mut r);
        }
    }
}
