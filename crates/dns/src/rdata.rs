//! Typed RDATA for the record types the system models.
//!
//! Encoding writes names in RDATA uncompressed (always legal); decoding
//! accepts compression pointers anywhere a name appears, since real
//! responses compress NS/CNAME/SOA targets.

use crate::name::Name;
use crate::rr::RecordType;
use moqdns_wire::{Reader, WireError, WireResult, Writer};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Typed record data. The variant determines the record's TYPE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    AAAA(Ipv6Addr),
    /// Authoritative nameserver for the owner.
    NS(Name),
    /// Alias target.
    CNAME(Name),
    /// Start of authority.
    SOA(Soa),
    /// Reverse-mapping pointer.
    PTR(Name),
    /// Mail exchange: preference and exchange host.
    MX {
        /// Lower is preferred.
        preference: u16,
        /// Mail server name.
        exchange: Name,
    },
    /// One or more character strings.
    TXT(Vec<Vec<u8>>),
    /// Service locator.
    SRV {
        /// Lower is tried first.
        priority: u16,
        /// Relative weight among equal priorities.
        weight: u16,
        /// Service port.
        port: u16,
        /// Target host.
        target: Name,
    },
    /// Service binding (RFC 9460), SVCB form.
    SVCB(ServiceBinding),
    /// Service binding (RFC 9460), HTTPS form — measured in Fig 1a.
    HTTPS(ServiceBinding),
    /// EDNS(0) pseudo-record payload (opaque options).
    OPT(Vec<u8>),
    /// Escape hatch for unmodeled types: raw RDATA bytes.
    Unknown {
        /// The wire TYPE value.
        rtype: u16,
        /// Raw RDATA.
        data: Vec<u8>,
    },
}

/// SOA RDATA fields (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soa {
    /// Primary nameserver.
    pub mname: Name,
    /// Responsible mailbox (encoded as a name).
    pub rname: Name,
    /// Zone serial. DNS-over-MoQT ties this to the zone version number
    /// that becomes the MoQT group ID (paper §4.2).
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry, seconds.
    pub expire: u32,
    /// Minimum/negative-caching TTL, seconds (RFC 2308).
    pub minimum: u32,
}

/// SVCB/HTTPS RDATA (RFC 9460): priority, target, and service parameters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceBinding {
    /// 0 = AliasMode, >0 = ServiceMode priority.
    pub priority: u16,
    /// Target name (`.` means the owner itself).
    pub target: Name,
    /// Service parameters, sorted by key on the wire.
    pub params: Vec<SvcParam>,
}

/// A single SVCB service parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcParam {
    /// `alpn` (key 1): protocol identifiers. The paper notes HTTPS records
    /// signal ALPN support within DNS.
    Alpn(Vec<Vec<u8>>),
    /// `port` (key 3).
    Port(u16),
    /// `ipv4hint` (key 4).
    Ipv4Hint(Vec<Ipv4Addr>),
    /// `ipv6hint` (key 6).
    Ipv6Hint(Vec<Ipv6Addr>),
    /// Any other key, raw.
    Unknown(u16, Vec<u8>),
}

impl SvcParam {
    /// The parameter's wire key.
    pub fn key(&self) -> u16 {
        match self {
            SvcParam::Alpn(_) => 1,
            SvcParam::Port(_) => 3,
            SvcParam::Ipv4Hint(_) => 4,
            SvcParam::Ipv6Hint(_) => 6,
            SvcParam::Unknown(k, _) => *k,
        }
    }

    fn encode_value(&self, w: &mut Writer) {
        match self {
            SvcParam::Alpn(ids) => {
                for id in ids {
                    w.put_u8(id.len() as u8);
                    w.put_slice(id);
                }
            }
            SvcParam::Port(p) => w.put_u16(*p),
            SvcParam::Ipv4Hint(addrs) => {
                for a in addrs {
                    w.put_slice(&a.octets());
                }
            }
            SvcParam::Ipv6Hint(addrs) => {
                for a in addrs {
                    w.put_slice(&a.octets());
                }
            }
            SvcParam::Unknown(_, data) => w.put_slice(data),
        }
    }

    fn decode(key: u16, data: &[u8]) -> WireResult<SvcParam> {
        let mut r = Reader::new(data);
        let p = match key {
            1 => {
                let mut ids = Vec::new();
                while !r.is_empty() {
                    let len = r.get_u8()? as usize;
                    ids.push(r.get_vec(len)?);
                }
                SvcParam::Alpn(ids)
            }
            3 => {
                let p = r.get_u16()?;
                r.expect_end()?;
                SvcParam::Port(p)
            }
            4 => {
                if !data.len().is_multiple_of(4) {
                    return Err(WireError::Invalid {
                        what: "ipv4hint length",
                    });
                }
                let mut addrs = Vec::new();
                while !r.is_empty() {
                    let b = r.get_bytes(4)?;
                    addrs.push(Ipv4Addr::new(b[0], b[1], b[2], b[3]));
                }
                SvcParam::Ipv4Hint(addrs)
            }
            6 => {
                if !data.len().is_multiple_of(16) {
                    return Err(WireError::Invalid {
                        what: "ipv6hint length",
                    });
                }
                let mut addrs = Vec::new();
                while !r.is_empty() {
                    let b = r.get_bytes(16)?;
                    let mut o = [0u8; 16];
                    o.copy_from_slice(b);
                    addrs.push(Ipv6Addr::from(o));
                }
                SvcParam::Ipv6Hint(addrs)
            }
            k => SvcParam::Unknown(k, data.to_vec()),
        };
        Ok(p)
    }
}

impl ServiceBinding {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.priority);
        self.target.encode(w);
        // Params must be sorted by key on the wire (RFC 9460 §2.2).
        let mut params: Vec<&SvcParam> = self.params.iter().collect();
        params.sort_by_key(|p| p.key());
        for p in params {
            w.put_u16(p.key());
            let mut vw = Writer::new();
            p.encode_value(&mut vw);
            let v = vw.into_vec();
            w.put_u16(v.len() as u16);
            w.put_slice(&v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> WireResult<ServiceBinding> {
        let priority = r.get_u16()?;
        let target = Name::decode(r)?;
        let mut params = Vec::new();
        let mut last_key: Option<u16> = None;
        while !r.is_empty() {
            let key = r.get_u16()?;
            if let Some(lk) = last_key {
                if key <= lk {
                    return Err(WireError::Invalid {
                        what: "svc params not strictly ascending",
                    });
                }
            }
            last_key = Some(key);
            let len = r.get_u16()? as usize;
            let data = r.get_bytes(len)?;
            params.push(SvcParam::decode(key, data)?);
        }
        Ok(ServiceBinding {
            priority,
            target,
            params,
        })
    }
}

impl RData {
    /// The record TYPE implied by this variant.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::AAAA(_) => RecordType::AAAA,
            RData::NS(_) => RecordType::NS,
            RData::CNAME(_) => RecordType::CNAME,
            RData::SOA(_) => RecordType::SOA,
            RData::PTR(_) => RecordType::PTR,
            RData::MX { .. } => RecordType::MX,
            RData::TXT(_) => RecordType::TXT,
            RData::SRV { .. } => RecordType::SRV,
            RData::SVCB(_) => RecordType::SVCB,
            RData::HTTPS(_) => RecordType::HTTPS,
            RData::OPT(_) => RecordType::OPT,
            RData::Unknown { rtype, .. } => RecordType::from_u16(*rtype),
        }
    }

    /// Encodes the RDATA (without the length prefix; the message codec
    /// writes that).
    pub fn encode(&self, w: &mut Writer) {
        match self {
            RData::A(a) => w.put_slice(&a.octets()),
            RData::AAAA(a) => w.put_slice(&a.octets()),
            RData::NS(n) | RData::CNAME(n) | RData::PTR(n) => n.encode(w),
            RData::SOA(soa) => {
                soa.mname.encode(w);
                soa.rname.encode(w);
                w.put_u32(soa.serial);
                w.put_u32(soa.refresh);
                w.put_u32(soa.retry);
                w.put_u32(soa.expire);
                w.put_u32(soa.minimum);
            }
            RData::MX {
                preference,
                exchange,
            } => {
                w.put_u16(*preference);
                exchange.encode(w);
            }
            RData::TXT(strings) => {
                for s in strings {
                    w.put_u8(s.len() as u8);
                    w.put_slice(s);
                }
            }
            RData::SRV {
                priority,
                weight,
                port,
                target,
            } => {
                w.put_u16(*priority);
                w.put_u16(*weight);
                w.put_u16(*port);
                target.encode(w);
            }
            RData::SVCB(sb) | RData::HTTPS(sb) => sb.encode(w),
            RData::OPT(data) => w.put_slice(data),
            RData::Unknown { data, .. } => w.put_slice(data),
        }
    }

    /// Decodes RDATA of type `rtype`. `r` must be scoped to exactly the
    /// RDLENGTH bytes, but positioned within the full message so that
    /// compression pointers resolve (the message codec arranges this).
    pub fn decode(rtype: RecordType, r: &mut Reader<'_>, rdlen: usize) -> WireResult<RData> {
        let end = r.position() + rdlen;
        let check_end = |r: &Reader<'_>| -> WireResult<()> {
            if r.position() != end {
                Err(WireError::Invalid {
                    what: "rdata length mismatch",
                })
            } else {
                Ok(())
            }
        };
        let rd = match rtype {
            RecordType::A => {
                let b = r.get_bytes(4)?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RecordType::AAAA => {
                let b = r.get_bytes(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                RData::AAAA(Ipv6Addr::from(o))
            }
            RecordType::NS => RData::NS(Name::decode(r)?),
            RecordType::CNAME => RData::CNAME(Name::decode(r)?),
            RecordType::PTR => RData::PTR(Name::decode(r)?),
            RecordType::SOA => RData::SOA(Soa {
                mname: Name::decode(r)?,
                rname: Name::decode(r)?,
                serial: r.get_u32()?,
                refresh: r.get_u32()?,
                retry: r.get_u32()?,
                expire: r.get_u32()?,
                minimum: r.get_u32()?,
            }),
            RecordType::MX => RData::MX {
                preference: r.get_u16()?,
                exchange: Name::decode(r)?,
            },
            RecordType::TXT => {
                let mut strings = Vec::new();
                while r.position() < end {
                    let len = r.get_u8()? as usize;
                    strings.push(r.get_vec(len)?);
                }
                RData::TXT(strings)
            }
            RecordType::SRV => RData::SRV {
                priority: r.get_u16()?,
                weight: r.get_u16()?,
                port: r.get_u16()?,
                target: Name::decode(r)?,
            },
            RecordType::SVCB | RecordType::HTTPS => {
                // Scope the param loop to the RDATA slice. SVCB target names
                // must not be compressed (RFC 9460 §2.2), so a sub-slice
                // reader is safe here.
                let bytes_left = end - r.position();
                let slice = r.get_bytes(bytes_left)?;
                let mut sub = Reader::new(slice);
                let sb = ServiceBinding::decode(&mut sub)?;
                sub.expect_end()?;
                if rtype == RecordType::SVCB {
                    RData::SVCB(sb)
                } else {
                    RData::HTTPS(sb)
                }
            }
            RecordType::OPT => RData::OPT(r.get_vec(rdlen)?),
            RecordType::Unknown(v) => RData::Unknown {
                rtype: v,
                data: r.get_vec(rdlen)?,
            },
        };
        check_end(r)?;
        Ok(rd)
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::AAAA(a) => write!(f, "{a}"),
            RData::NS(n) => write!(f, "{n}"),
            RData::CNAME(n) => write!(f, "{n}"),
            RData::PTR(n) => write!(f, "{n}"),
            RData::SOA(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::MX {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RData::TXT(strings) => {
                for (i, s) in strings.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "\"{}\"", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RData::SRV {
                priority,
                weight,
                port,
                target,
            } => write!(f, "{priority} {weight} {port} {target}"),
            RData::SVCB(sb) | RData::HTTPS(sb) => {
                write!(f, "{} {}", sb.priority, sb.target)?;
                for p in &sb.params {
                    match p {
                        SvcParam::Alpn(ids) => {
                            let joined: Vec<String> = ids
                                .iter()
                                .map(|i| String::from_utf8_lossy(i).into_owned())
                                .collect();
                            write!(f, " alpn={}", joined.join(","))?;
                        }
                        SvcParam::Port(p) => write!(f, " port={p}")?,
                        SvcParam::Ipv4Hint(a) => {
                            let joined: Vec<String> = a.iter().map(|x| x.to_string()).collect();
                            write!(f, " ipv4hint={}", joined.join(","))?;
                        }
                        SvcParam::Ipv6Hint(a) => {
                            let joined: Vec<String> = a.iter().map(|x| x.to_string()).collect();
                            write!(f, " ipv6hint={}", joined.join(","))?;
                        }
                        SvcParam::Unknown(k, v) => write!(f, " key{k}={}b", v.len())?,
                    }
                }
                Ok(())
            }
            RData::OPT(d) => write!(f, "OPT({}b)", d.len()),
            RData::Unknown { rtype, data } => write!(f, "\\# {} ({} bytes)", rtype, data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(rd: &RData) -> RData {
        let mut w = Writer::new();
        rd.encode(&mut w);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let back = RData::decode(rd.rtype(), &mut r, buf.len()).unwrap();
        assert!(r.is_empty());
        back
    }

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn a_roundtrip() {
        let rd = RData::A(Ipv4Addr::new(192, 0, 2, 7));
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn aaaa_roundtrip() {
        let rd = RData::AAAA("2001:db8::1".parse().unwrap());
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn name_bearing_types_roundtrip() {
        for rd in [
            RData::NS(n("ns1.example.com")),
            RData::CNAME(n("target.example.net")),
            RData::PTR(n("host.example.org")),
        ] {
            assert_eq!(roundtrip(&rd), rd);
        }
    }

    #[test]
    fn soa_roundtrip() {
        let rd = RData::SOA(Soa {
            mname: n("ns1.example.com"),
            rname: n("hostmaster.example.com"),
            serial: 20_250_624,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        });
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn mx_txt_srv_roundtrip() {
        for rd in [
            RData::MX {
                preference: 10,
                exchange: n("mail.example.com"),
            },
            RData::TXT(vec![b"v=spf1 -all".to_vec(), b"second".to_vec()]),
            RData::SRV {
                priority: 0,
                weight: 5,
                port: 443,
                target: n("svc.example.com"),
            },
        ] {
            assert_eq!(roundtrip(&rd), rd);
        }
    }

    #[test]
    fn https_roundtrip_with_params() {
        let rd = RData::HTTPS(ServiceBinding {
            priority: 1,
            target: Name::root(),
            params: vec![
                SvcParam::Alpn(vec![b"h3".to_vec(), b"h2".to_vec()]),
                SvcParam::Port(443),
                SvcParam::Ipv4Hint(vec![Ipv4Addr::new(192, 0, 2, 1)]),
                SvcParam::Ipv6Hint(vec!["2001:db8::1".parse().unwrap()]),
            ],
        });
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn svcb_params_must_ascend() {
        // port (3) before alpn (1) on the wire → reject.
        let mut w = Writer::new();
        w.put_u16(1); // priority
        Name::root().encode(&mut w);
        w.put_u16(3);
        w.put_u16(2);
        w.put_u16(443);
        w.put_u16(1);
        w.put_u16(3);
        w.put_u8(2);
        w.put_slice(b"h2");
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert!(RData::decode(RecordType::SVCB, &mut r, buf.len()).is_err());
    }

    #[test]
    fn unknown_type_is_opaque() {
        let rd = RData::Unknown {
            rtype: 999,
            data: vec![1, 2, 3],
        };
        assert_eq!(roundtrip(&rd), rd);
        assert_eq!(rd.rtype(), RecordType::Unknown(999));
    }

    #[test]
    fn rdata_length_mismatch_rejected() {
        // A record with 5 bytes of RDATA.
        let buf = [1, 2, 3, 4, 5];
        let mut r = Reader::new(&buf);
        assert!(RData::decode(RecordType::A, &mut r, 5).is_err());
    }

    #[test]
    fn truncated_rdata_rejected() {
        let buf = [1, 2];
        let mut r = Reader::new(&buf);
        assert!(RData::decode(RecordType::A, &mut r, 4).is_err());
    }

    #[test]
    fn display_samples() {
        assert_eq!(RData::A(Ipv4Addr::new(1, 2, 3, 4)).to_string(), "1.2.3.4");
        assert_eq!(
            RData::MX {
                preference: 5,
                exchange: n("m.x")
            }
            .to_string(),
            "5 m.x."
        );
        let https = RData::HTTPS(ServiceBinding {
            priority: 1,
            target: Name::root(),
            params: vec![SvcParam::Alpn(vec![b"h3".to_vec()])],
        });
        assert_eq!(https.to_string(), "1 . alpn=h3");
    }

    proptest! {
        #[test]
        fn prop_a_record_roundtrip(o in any::<[u8; 4]>()) {
            let rd = RData::A(Ipv4Addr::from(o));
            prop_assert_eq!(roundtrip(&rd), rd);
        }

        #[test]
        fn prop_txt_roundtrip(strings in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..4)
        ) {
            let rd = RData::TXT(strings);
            prop_assert_eq!(roundtrip(&rd), rd.clone());
        }

        #[test]
        fn prop_decode_arbitrary_never_panics(
            t in any::<u16>(),
            bytes in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut r = Reader::new(&bytes);
            let _ = RData::decode(RecordType::from_u16(t), &mut r, bytes.len());
        }
    }
}
