//! The iterative resolution state machine (RFC 1034 §5.3.3).
//!
//! `Iterative` is sans-io: it decides *which server to ask next* (root →
//! TLD → authoritative, following referrals and CNAME chains) while the
//! caller performs the actual exchanges — over classic UDP, or over MoQT
//! FETCH/SUBSCRIBE in the pub/sub variant. The recursive resolvers in
//! `moqdns-core` drive this machine for both transports, which is what the
//! paper means by "DNS over MoQT does not change the recursive nature of
//! the process" (§4.1).

use crate::message::{Message, Question, Rcode};
use crate::name::Name;
use crate::rdata::RData;
use crate::rr::{Record, RecordType};
use std::collections::HashSet;
use std::fmt;
use std::net::IpAddr;

/// Maximum referral hops (root → TLD → auth is 2; leave headroom).
const MAX_REFERRALS: usize = 16;
/// Maximum CNAME indirections across zones.
const MAX_CNAME: usize = 8;

/// A root hint: the name and address of a root server.
#[derive(Debug, Clone)]
pub struct RootHint {
    /// Server name (e.g. `a.root-servers.net`).
    pub name: Name,
    /// Server address.
    pub addr: IpAddr,
}

/// What the driver should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IterAction {
    /// Send `query` to `server` and feed the response (or timeout) back.
    SendQuery {
        /// Destination server.
        server: IpAddr,
        /// The query message to transmit.
        query: Message,
    },
    /// Resolution finished (positively or negatively).
    Finished(Resolution),
    /// Resolution failed.
    Failed(ResolveError),
}

/// A completed resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// Final response code (NoError or NxDomain).
    pub rcode: Rcode,
    /// Accumulated answer records (CNAME chain plus final answers).
    pub answers: Vec<Record>,
    /// SOA from the final response, for negative caching.
    pub soa: Option<Record>,
    /// The address of the authoritative server that produced the final
    /// answer — the pub/sub variant subscribes to updates *there*.
    pub auth_server: IpAddr,
    /// How many query/response exchanges the resolution took.
    pub exchanges: u32,
}

/// Why a resolution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// All candidate servers timed out.
    AllServersTimedOut,
    /// A referral carried no usable glue addresses.
    NoGlue(Name),
    /// Referral or CNAME limits exceeded, or servers answered uselessly.
    Lame(&'static str),
    /// The server returned an unexpected rcode (e.g. SERVFAIL, REFUSED).
    BadRcode(Rcode),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::AllServersTimedOut => write!(f, "all servers timed out"),
            ResolveError::NoGlue(n) => write!(f, "referral to {n} had no glue"),
            ResolveError::Lame(why) => write!(f, "lame resolution: {why}"),
            ResolveError::BadRcode(rc) => write!(f, "server returned {rc}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// The iterative resolution state machine for one question.
pub struct Iterative {
    /// Name currently being chased (changes on CNAME).
    current_name: Name,
    /// The original question's type/class.
    qtype: RecordType,
    question: Question,
    /// Candidate servers for the current step, tried in order.
    servers: Vec<IpAddr>,
    next_server: usize,
    /// Server the in-flight query went to.
    in_flight: Option<IpAddr>,
    roots: Vec<IpAddr>,
    answers: Vec<Record>,
    referrals: usize,
    cnames: usize,
    exchanges: u32,
    next_id: u16,
    /// Guards against referral loops (same NS set seen twice).
    seen_referrals: HashSet<Name>,
}

impl Iterative {
    /// Starts resolving `question` from the given root servers. `id_seed`
    /// randomizes transaction ids (pass an RNG draw).
    pub fn new(question: Question, roots: &[RootHint], id_seed: u16) -> Iterative {
        let root_addrs: Vec<IpAddr> = roots.iter().map(|r| r.addr).collect();
        Iterative {
            current_name: question.qname.clone(),
            qtype: question.qtype,
            question,
            servers: root_addrs.clone(),
            next_server: 0,
            in_flight: None,
            roots: root_addrs,
            answers: Vec::new(),
            referrals: 0,
            cnames: 0,
            exchanges: 0,
            next_id: id_seed,
            seen_referrals: HashSet::new(),
        }
    }

    /// The first action (a query to a root server, unless no roots exist).
    pub fn start(&mut self) -> IterAction {
        self.query_next_server()
    }

    fn fresh_id(&mut self) -> u16 {
        self.next_id = self.next_id.wrapping_add(1);
        self.next_id
    }

    fn query_next_server(&mut self) -> IterAction {
        if self.next_server >= self.servers.len() {
            return IterAction::Failed(ResolveError::AllServersTimedOut);
        }
        let server = self.servers[self.next_server];
        self.next_server += 1;
        self.in_flight = Some(server);
        self.exchanges += 1;
        let id = self.fresh_id();
        // Iterative queries do not request recursion.
        let mut q = Message::query(
            id,
            Question {
                qname: self.current_name.clone(),
                qtype: self.qtype,
                qclass: self.question.qclass,
            },
        );
        q.header.rd = false;
        IterAction::SendQuery { server, query: q }
    }

    /// The driver reports that the in-flight query timed out.
    pub fn on_timeout(&mut self) -> IterAction {
        self.in_flight = None;
        self.query_next_server()
    }

    /// The driver delivers a response from the in-flight server.
    pub fn on_response(&mut self, response: &Message) -> IterAction {
        let Some(server) = self.in_flight.take() else {
            return IterAction::Failed(ResolveError::Lame("response with nothing in flight"));
        };

        match response.header.rcode {
            Rcode::NoError => {}
            Rcode::NxDomain => {
                let soa = response
                    .authorities
                    .iter()
                    .find(|r| r.rtype() == RecordType::SOA)
                    .cloned();
                return IterAction::Finished(Resolution {
                    rcode: Rcode::NxDomain,
                    answers: std::mem::take(&mut self.answers),
                    soa,
                    auth_server: server,
                    exchanges: self.exchanges,
                });
            }
            rc => return IterAction::Failed(ResolveError::BadRcode(rc)),
        }

        // Final answers for the current name?
        let direct: Vec<Record> = response
            .answers
            .iter()
            .filter(|r| r.rtype() == self.qtype && r.name == self.current_name)
            .cloned()
            .collect();
        if !direct.is_empty() {
            // Keep any CNAME links the server included, then the answers.
            for r in &response.answers {
                if r.rtype() == RecordType::CNAME && !self.answers.contains(r) {
                    self.answers.push(r.clone());
                }
            }
            self.answers.extend(direct);
            return IterAction::Finished(Resolution {
                rcode: Rcode::NoError,
                answers: std::mem::take(&mut self.answers),
                soa: None,
                auth_server: server,
                exchanges: self.exchanges,
            });
        }

        // CNAME for the current name? Follow it (restarting from the roots,
        // unless the same response already answers the target).
        if let Some(cn) = response
            .answers
            .iter()
            .find(|r| r.rtype() == RecordType::CNAME && r.name == self.current_name)
        {
            self.cnames += 1;
            if self.cnames > MAX_CNAME {
                return IterAction::Failed(ResolveError::Lame("CNAME chain too long"));
            }
            let target = match &cn.rdata {
                RData::CNAME(t) => t.clone(),
                _ => unreachable!(),
            };
            self.answers.push(cn.clone());
            self.current_name = target;
            self.servers = self.roots.clone();
            self.next_server = 0;
            self.seen_referrals.clear();
            return self.query_next_server();
        }

        // NODATA: name exists, no records of this type.
        if response.answers.is_empty() && response.header.aa {
            let soa = response
                .authorities
                .iter()
                .find(|r| r.rtype() == RecordType::SOA)
                .cloned();
            return IterAction::Finished(Resolution {
                rcode: Rcode::NoError,
                answers: std::mem::take(&mut self.answers),
                soa,
                auth_server: server,
                exchanges: self.exchanges,
            });
        }

        // Referral: collect NS + glue, descend.
        let ns_names: Vec<Name> = response
            .authorities
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::NS(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        if !ns_names.is_empty() {
            self.referrals += 1;
            if self.referrals > MAX_REFERRALS {
                return IterAction::Failed(ResolveError::Lame("too many referrals"));
            }
            // Loop guard: a referral must be for a new delegation point.
            let deleg = response.authorities[0].name.clone();
            if !self.seen_referrals.insert(deleg.to_lowercase()) {
                return IterAction::Failed(ResolveError::Lame("referral loop"));
            }
            let glue: Vec<IpAddr> = response
                .additionals
                .iter()
                .filter(|g| ns_names.contains(&g.name))
                .filter_map(|g| match &g.rdata {
                    RData::A(a) => Some(IpAddr::V4(*a)),
                    RData::AAAA(a) => Some(IpAddr::V6(*a)),
                    _ => None,
                })
                .collect();
            if glue.is_empty() {
                return IterAction::Failed(ResolveError::NoGlue(ns_names[0].clone()));
            }
            self.servers = glue;
            self.next_server = 0;
            return self.query_next_server();
        }

        IterAction::Failed(ResolveError::Lame("useless response"))
    }

    /// The question being resolved.
    pub fn question(&self) -> &Question {
        &self.question
    }

    /// Exchanges performed so far.
    pub fn exchanges(&self) -> u32 {
        self.exchanges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Authority;
    use crate::zone::Zone;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(name: &str, ttl: u32, ip: [u8; 4]) -> Record {
        Record::new(n(name), ttl, RData::A(Ipv4Addr::from(ip)))
    }

    /// Builds the classic three-level hierarchy: root, com, example.com.
    fn hierarchy() -> (Authority, Authority, Authority, Vec<RootHint>) {
        let mut root = Zone::with_default_soa(Name::root());
        root.add_record(Record::new(n("com"), 86_400, RData::NS(n("ns.tld"))));
        root.add_record(a("ns.tld", 86_400, [10, 0, 0, 2]));

        let mut com = Zone::with_default_soa(n("com"));
        com.add_record(Record::new(
            n("example.com"),
            86_400,
            RData::NS(n("ns1.example.com")),
        ));
        com.add_record(a("ns1.example.com", 86_400, [10, 0, 0, 3]));

        let mut ex = Zone::with_default_soa(n("example.com"));
        ex.add_record(a("www.example.com", 300, [192, 0, 2, 1]));
        ex.add_record(Record::new(
            n("alias.example.com"),
            300,
            RData::CNAME(n("www.example.com")),
        ));

        let hints = vec![RootHint {
            name: n("a.root-servers.net"),
            addr: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
        }];
        (
            Authority::single(root),
            Authority::single(com),
            Authority::single(ex),
            hints,
        )
    }

    /// Drives `iter` against the in-memory hierarchy, mapping addresses to
    /// authorities, and returns the terminal action.
    fn drive(iter: &mut Iterative, auths: &[(IpAddr, &Authority)]) -> IterAction {
        let mut action = iter.start();
        for _ in 0..64 {
            match action {
                IterAction::SendQuery { server, ref query } => {
                    let auth = auths
                        .iter()
                        .find(|(a, _)| *a == server)
                        .map(|(_, a)| *a)
                        .expect("query to unknown server");
                    let resp = auth.answer(query);
                    action = iter.on_response(&resp);
                }
                terminal => return terminal,
            }
        }
        panic!("resolution did not terminate");
    }

    fn addr(o: [u8; 4]) -> IpAddr {
        IpAddr::V4(Ipv4Addr::from(o))
    }

    #[test]
    fn resolves_through_root_tld_auth() {
        let (root, com, ex, hints) = hierarchy();
        let auths = [
            (addr([10, 0, 0, 1]), &root),
            (addr([10, 0, 0, 2]), &com),
            (addr([10, 0, 0, 3]), &ex),
        ];
        let mut iter = Iterative::new(
            Question::new(n("www.example.com"), RecordType::A),
            &hints,
            7,
        );
        match drive(&mut iter, &auths) {
            IterAction::Finished(res) => {
                assert_eq!(res.rcode, Rcode::NoError);
                assert_eq!(res.answers.len(), 1);
                assert_eq!(res.answers[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
                assert_eq!(res.auth_server, addr([10, 0, 0, 3]));
                assert_eq!(res.exchanges, 3); // root, TLD, auth
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn follows_cname_chains() {
        let (root, com, ex, hints) = hierarchy();
        let auths = [
            (addr([10, 0, 0, 1]), &root),
            (addr([10, 0, 0, 2]), &com),
            (addr([10, 0, 0, 3]), &ex),
        ];
        let mut iter = Iterative::new(
            Question::new(n("alias.example.com"), RecordType::A),
            &hints,
            7,
        );
        match drive(&mut iter, &auths) {
            IterAction::Finished(res) => {
                // CNAME + A (the authoritative server chases in-zone, so one
                // exchange chain suffices).
                assert_eq!(res.answers.len(), 2);
                assert_eq!(res.answers[0].rtype(), RecordType::CNAME);
                assert_eq!(res.answers[1].rtype(), RecordType::A);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nxdomain_finishes_negatively_with_soa() {
        let (root, com, ex, hints) = hierarchy();
        let auths = [
            (addr([10, 0, 0, 1]), &root),
            (addr([10, 0, 0, 2]), &com),
            (addr([10, 0, 0, 3]), &ex),
        ];
        let mut iter = Iterative::new(
            Question::new(n("missing.example.com"), RecordType::A),
            &hints,
            7,
        );
        match drive(&mut iter, &auths) {
            IterAction::Finished(res) => {
                assert_eq!(res.rcode, Rcode::NxDomain);
                assert!(res.soa.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nodata_finishes_with_soa() {
        let (root, com, ex, hints) = hierarchy();
        let auths = [
            (addr([10, 0, 0, 1]), &root),
            (addr([10, 0, 0, 2]), &com),
            (addr([10, 0, 0, 3]), &ex),
        ];
        let mut iter = Iterative::new(
            Question::new(n("www.example.com"), RecordType::AAAA),
            &hints,
            7,
        );
        match drive(&mut iter, &auths) {
            IterAction::Finished(res) => {
                assert_eq!(res.rcode, Rcode::NoError);
                assert!(res.answers.is_empty());
                assert!(res.soa.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timeout_rotates_servers_then_fails() {
        let hints = vec![
            RootHint {
                name: n("a.root"),
                addr: addr([10, 0, 0, 1]),
            },
            RootHint {
                name: n("b.root"),
                addr: addr([10, 0, 0, 9]),
            },
        ];
        let mut iter = Iterative::new(Question::new(n("x.com"), RecordType::A), &hints, 7);
        let first = iter.start();
        let IterAction::SendQuery { server: s1, .. } = first else {
            panic!()
        };
        assert_eq!(s1, addr([10, 0, 0, 1]));
        let second = iter.on_timeout();
        let IterAction::SendQuery { server: s2, .. } = second else {
            panic!()
        };
        assert_eq!(s2, addr([10, 0, 0, 9]));
        assert_eq!(
            iter.on_timeout(),
            IterAction::Failed(ResolveError::AllServersTimedOut)
        );
    }

    #[test]
    fn servfail_propagates() {
        let hints = vec![RootHint {
            name: n("a.root"),
            addr: addr([10, 0, 0, 1]),
        }];
        let mut iter = Iterative::new(Question::new(n("x.com"), RecordType::A), &hints, 7);
        let IterAction::SendQuery { query, .. } = iter.start() else {
            panic!()
        };
        let mut resp = Message::response_to(&query);
        resp.header.rcode = Rcode::ServFail;
        assert_eq!(
            iter.on_response(&resp),
            IterAction::Failed(ResolveError::BadRcode(Rcode::ServFail))
        );
    }

    #[test]
    fn referral_without_glue_fails() {
        let hints = vec![RootHint {
            name: n("a.root"),
            addr: addr([10, 0, 0, 1]),
        }];
        let mut iter = Iterative::new(Question::new(n("x.com"), RecordType::A), &hints, 7);
        let IterAction::SendQuery { query, .. } = iter.start() else {
            panic!()
        };
        let mut resp = Message::response_to(&query);
        resp.authorities
            .push(Record::new(n("com"), 60, RData::NS(n("ns.com"))));
        match iter.on_response(&resp) {
            IterAction::Failed(ResolveError::NoGlue(name)) => assert_eq!(name, n("ns.com")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn referral_loop_detected() {
        let hints = vec![RootHint {
            name: n("a.root"),
            addr: addr([10, 0, 0, 1]),
        }];
        let mut iter = Iterative::new(Question::new(n("x.com"), RecordType::A), &hints, 7);
        let IterAction::SendQuery { query, .. } = iter.start() else {
            panic!()
        };
        let mut referral = Message::response_to(&query);
        referral
            .authorities
            .push(Record::new(n("com"), 60, RData::NS(n("ns.com"))));
        referral.additionals.push(a("ns.com", 60, [10, 0, 0, 1]));
        // First referral is accepted and re-queries…
        let act = iter.on_response(&referral);
        assert!(matches!(act, IterAction::SendQuery { .. }));
        // …but the same delegation point again is a loop.
        let referral2 = {
            let IterAction::SendQuery { query, .. } = act else {
                panic!()
            };
            let mut r = Message::response_to(&query);
            r.authorities
                .push(Record::new(n("com"), 60, RData::NS(n("ns.com"))));
            r.additionals.push(a("ns.com", 60, [10, 0, 0, 1]));
            r
        };
        assert!(matches!(
            iter.on_response(&referral2),
            IterAction::Failed(ResolveError::Lame("referral loop"))
        ));
    }

    #[test]
    fn iterative_queries_do_not_request_recursion() {
        let hints = vec![RootHint {
            name: n("a.root"),
            addr: addr([10, 0, 0, 1]),
        }];
        let mut iter = Iterative::new(Question::new(n("x.com"), RecordType::A), &hints, 7);
        let IterAction::SendQuery { query, .. } = iter.start() else {
            panic!()
        };
        assert!(!query.header.rd);
    }
}
