//! Record types, classes, and resource records.

use crate::name::Name;
use crate::rdata::RData;
use std::fmt;

/// A DNS record type (the TYPE/QTYPE field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordType {
    /// IPv4 address (RFC 1035).
    A,
    /// Authoritative name server.
    NS,
    /// Canonical name (alias).
    CNAME,
    /// Start of authority.
    SOA,
    /// Domain name pointer.
    PTR,
    /// Mail exchange.
    MX,
    /// Text strings.
    TXT,
    /// IPv6 address (RFC 3596).
    AAAA,
    /// Service locator (RFC 2782).
    SRV,
    /// EDNS(0) pseudo-record (RFC 6891).
    OPT,
    /// Service binding (RFC 9460).
    SVCB,
    /// HTTPS service binding (RFC 9460) — the 2024-standardized type the
    /// paper's Fig 1a measures.
    HTTPS,
    /// Any type we do not model explicitly.
    Unknown(u16),
}

impl RecordType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::NS => 2,
            RecordType::CNAME => 5,
            RecordType::SOA => 6,
            RecordType::PTR => 12,
            RecordType::MX => 15,
            RecordType::TXT => 16,
            RecordType::AAAA => 28,
            RecordType::SRV => 33,
            RecordType::OPT => 41,
            RecordType::SVCB => 64,
            RecordType::HTTPS => 65,
            RecordType::Unknown(v) => v,
        }
    }

    /// Parses the 16-bit wire value.
    pub fn from_u16(v: u16) -> RecordType {
        match v {
            1 => RecordType::A,
            2 => RecordType::NS,
            5 => RecordType::CNAME,
            6 => RecordType::SOA,
            12 => RecordType::PTR,
            15 => RecordType::MX,
            16 => RecordType::TXT,
            28 => RecordType::AAAA,
            33 => RecordType::SRV,
            41 => RecordType::OPT,
            64 => RecordType::SVCB,
            65 => RecordType::HTTPS,
            other => RecordType::Unknown(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::NS => write!(f, "NS"),
            RecordType::CNAME => write!(f, "CNAME"),
            RecordType::SOA => write!(f, "SOA"),
            RecordType::PTR => write!(f, "PTR"),
            RecordType::MX => write!(f, "MX"),
            RecordType::TXT => write!(f, "TXT"),
            RecordType::AAAA => write!(f, "AAAA"),
            RecordType::SRV => write!(f, "SRV"),
            RecordType::OPT => write!(f, "OPT"),
            RecordType::SVCB => write!(f, "SVCB"),
            RecordType::HTTPS => write!(f, "HTTPS"),
            RecordType::Unknown(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// A DNS class (almost always `IN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum RClass {
    /// The Internet.
    #[default]
    IN,
    /// Chaos (used for server identification).
    CH,
    /// Any class we do not model explicitly.
    Unknown(u16),
}

impl RClass {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RClass::IN => 1,
            RClass::CH => 3,
            RClass::Unknown(v) => v,
        }
    }

    /// Parses the 16-bit wire value.
    pub fn from_u16(v: u16) -> RClass {
        match v {
            1 => RClass::IN,
            3 => RClass::CH,
            other => RClass::Unknown(other),
        }
    }
}

impl fmt::Display for RClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RClass::IN => write!(f, "IN"),
            RClass::CH => write!(f, "CH"),
            RClass::Unknown(v) => write!(f, "CLASS{v}"),
        }
    }
}

/// A resource record: owner name, type, class, TTL and typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (normally `IN`).
    pub class: RClass,
    /// Time to live in seconds. The paper's Fig 1a clusters observed TTLs
    /// at {20, 60, 300, 600, 1200, 3600} s.
    pub ttl: u32,
    /// Typed record data; the record's TYPE is implied by the variant.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Record {
        Record {
            name,
            class: RClass::IN,
            ttl,
            rdata,
        }
    }

    /// The record's type, derived from the RDATA variant.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.name,
            self.ttl,
            self.class,
            self.rtype(),
            self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn type_wire_values_roundtrip() {
        let all = [
            RecordType::A,
            RecordType::NS,
            RecordType::CNAME,
            RecordType::SOA,
            RecordType::PTR,
            RecordType::MX,
            RecordType::TXT,
            RecordType::AAAA,
            RecordType::SRV,
            RecordType::OPT,
            RecordType::SVCB,
            RecordType::HTTPS,
            RecordType::Unknown(999),
        ];
        for t in all {
            assert_eq!(RecordType::from_u16(t.to_u16()), t);
        }
        assert_eq!(RecordType::A.to_u16(), 1);
        assert_eq!(RecordType::AAAA.to_u16(), 28);
        assert_eq!(RecordType::HTTPS.to_u16(), 65);
    }

    #[test]
    fn class_wire_values_roundtrip() {
        for c in [RClass::IN, RClass::CH, RClass::Unknown(42)] {
            assert_eq!(RClass::from_u16(c.to_u16()), c);
        }
    }

    #[test]
    fn record_type_derived_from_rdata() {
        let r = Record::new(
            "example.com".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        );
        assert_eq!(r.rtype(), RecordType::A);
        assert_eq!(r.class, RClass::IN);
    }

    #[test]
    fn display() {
        let r = Record::new(
            "example.com".parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        );
        assert_eq!(r.to_string(), "example.com. 300 IN A 192.0.2.1");
        assert_eq!(RecordType::Unknown(7).to_string(), "TYPE7");
        assert_eq!(RClass::Unknown(7).to_string(), "CLASS7");
    }
}
