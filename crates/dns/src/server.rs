//! Authoritative answer construction: turns a zone lookup into a full DNS
//! response message (RFC 1034 §4.3.2 within one zone).

use crate::message::{Message, Question, Rcode};
use crate::name::Name;
use crate::rdata::RData;
use crate::zone::{Zone, ZoneLookup};

/// Maximum CNAME chain length followed inside one zone.
const MAX_CNAME_CHAIN: usize = 8;

/// An authoritative engine over a set of zones.
///
/// One engine can serve several zones (a root server and a TLD server are
/// both just `Authority` instances with different zone files).
pub struct Authority {
    zones: Vec<Zone>,
}

impl Authority {
    /// Creates an engine serving `zones`.
    pub fn new(zones: Vec<Zone>) -> Authority {
        Authority { zones }
    }

    /// Creates an engine serving one zone.
    pub fn single(zone: Zone) -> Authority {
        Authority { zones: vec![zone] }
    }

    /// The zones served, immutable.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Mutable access to zone `i` (for record updates; the zone bumps its
    /// version itself).
    pub fn zone_mut(&mut self, i: usize) -> &mut Zone {
        &mut self.zones[i]
    }

    /// Finds the zone with the longest origin matching `name`.
    pub fn find_zone(&self, name: &Name) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| name.is_subdomain_of(z.origin()))
            .max_by_key(|z| z.origin().num_labels())
    }

    /// Mutable variant of [`Authority::find_zone`].
    pub fn find_zone_mut(&mut self, name: &Name) -> Option<&mut Zone> {
        self.zones
            .iter_mut()
            .filter(|z| name.is_subdomain_of(z.origin()))
            .max_by_key(|z| z.origin().num_labels())
    }

    /// Answers `query` authoritatively. Always returns a response message
    /// (REFUSED when no zone matches).
    pub fn answer(&self, query: &Message) -> Message {
        let mut resp = Message::response_to(query);
        let Some(q) = query.question() else {
            resp.header.rcode = Rcode::FormErr;
            return resp;
        };
        let Some(zone) = self.find_zone(&q.qname) else {
            resp.header.rcode = Rcode::Refused;
            return resp;
        };
        self.answer_in_zone(zone, q, &mut resp);
        resp
    }

    /// Answers a bare question (no enclosing query message) with a fresh
    /// response — the form DNS-over-MoQT uses, where the "request" arrived
    /// as a SUBSCRIBE/FETCH rather than a DNS query message (paper §4.3).
    pub fn answer_question(&self, q: &Question) -> Message {
        let query = Message::query(0, q.clone());
        let mut resp = Message::response_to(&query);
        match self.find_zone(&q.qname) {
            Some(zone) => self.answer_in_zone(zone, q, &mut resp),
            None => resp.header.rcode = Rcode::Refused,
        }
        resp
    }

    fn answer_in_zone(&self, zone: &Zone, q: &Question, resp: &mut Message) {
        let mut qname = q.qname.clone();
        resp.header.aa = true;
        for _ in 0..MAX_CNAME_CHAIN {
            match zone.lookup(&qname, q.qtype) {
                ZoneLookup::Answer(rs) => {
                    resp.answers.extend(rs);
                    return;
                }
                ZoneLookup::CName(cn) => {
                    let target = match &cn.rdata {
                        RData::CNAME(t) => t.clone(),
                        _ => unreachable!("CName lookup returns CNAME rdata"),
                    };
                    resp.answers.push(cn);
                    if !target.is_subdomain_of(zone.origin()) {
                        // Chain leaves the zone: the resolver continues.
                        return;
                    }
                    qname = target;
                }
                ZoneLookup::Referral { ns, glue } => {
                    resp.header.aa = false;
                    resp.authorities.extend(ns);
                    resp.additionals.extend(glue);
                    return;
                }
                ZoneLookup::NoData => {
                    resp.authorities.push(zone.soa_record());
                    return;
                }
                ZoneLookup::NxDomain => {
                    resp.header.rcode = Rcode::NxDomain;
                    resp.authorities.push(zone.soa_record());
                    return;
                }
                ZoneLookup::OutOfZone => {
                    resp.header.rcode = Rcode::Refused;
                    return;
                }
            }
        }
        // CNAME chain too long.
        resp.header.rcode = Rcode::ServFail;
    }

    /// Looks up which zone (if any) would answer `name`, returning its
    /// current version — used by DNS-over-MoQT to stamp group IDs.
    pub fn zone_version_for(&self, name: &Name) -> Option<u64> {
        self.find_zone(name).map(|z| z.version())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::{Record, RecordType};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(name: &str, ttl: u32, ip: [u8; 4]) -> Record {
        Record::new(n(name), ttl, RData::A(Ipv4Addr::from(ip)))
    }

    fn authority() -> Authority {
        let mut z = Zone::with_default_soa(n("example.com"));
        z.add_record(a("www.example.com", 300, [192, 0, 2, 1]));
        z.add_record(Record::new(
            n("alias.example.com"),
            300,
            RData::CNAME(n("www.example.com")),
        ));
        z.add_record(Record::new(
            n("ext.example.com"),
            300,
            RData::CNAME(n("elsewhere.org")),
        ));
        z.add_record(Record::new(
            n("sub.example.com"),
            3600,
            RData::NS(n("ns.sub.example.com")),
        ));
        z.add_record(a("ns.sub.example.com", 3600, [192, 0, 2, 53]));
        Authority::single(z)
    }

    fn ask(auth: &Authority, name: &str, t: RecordType) -> Message {
        auth.answer(&Message::query(9, Question::new(n(name), t)))
    }

    #[test]
    fn positive_answer_is_authoritative() {
        let auth = authority();
        let r = ask(&auth, "www.example.com", RecordType::A);
        assert!(r.header.qr);
        assert!(r.header.aa);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn cname_is_chased_in_zone() {
        let auth = authority();
        let r = ask(&auth, "alias.example.com", RecordType::A);
        assert_eq!(r.answers.len(), 2);
        assert_eq!(r.answers[0].rtype(), RecordType::CNAME);
        assert_eq!(r.answers[1].rtype(), RecordType::A);
    }

    #[test]
    fn cname_leaving_zone_stops() {
        let auth = authority();
        let r = ask(&auth, "ext.example.com", RecordType::A);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].rtype(), RecordType::CNAME);
        assert_eq!(r.header.rcode, Rcode::NoError);
    }

    #[test]
    fn referral_clears_aa_and_carries_glue() {
        let auth = authority();
        let r = ask(&auth, "x.sub.example.com", RecordType::A);
        assert!(!r.header.aa);
        assert_eq!(r.answers.len(), 0);
        assert_eq!(r.authorities.len(), 1);
        assert_eq!(r.additionals.len(), 1);
    }

    #[test]
    fn nxdomain_carries_soa() {
        let auth = authority();
        let r = ask(&auth, "missing.example.com", RecordType::A);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert_eq!(r.authorities.len(), 1);
        assert_eq!(r.authorities[0].rtype(), RecordType::SOA);
    }

    #[test]
    fn nodata_carries_soa_with_noerror() {
        let auth = authority();
        let r = ask(&auth, "www.example.com", RecordType::AAAA);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert!(r.answers.is_empty());
        assert_eq!(r.authorities[0].rtype(), RecordType::SOA);
    }

    #[test]
    fn out_of_zone_is_refused() {
        let auth = authority();
        let r = ask(&auth, "www.other.org", RecordType::A);
        assert_eq!(r.header.rcode, Rcode::Refused);
    }

    #[test]
    fn cname_loop_is_servfail() {
        let mut z = Zone::with_default_soa(n("example.com"));
        z.add_record(Record::new(
            n("a.example.com"),
            60,
            RData::CNAME(n("b.example.com")),
        ));
        z.add_record(Record::new(
            n("b.example.com"),
            60,
            RData::CNAME(n("a.example.com")),
        ));
        let auth = Authority::single(z);
        let r = ask(&auth, "a.example.com", RecordType::A);
        assert_eq!(r.header.rcode, Rcode::ServFail);
    }

    #[test]
    fn longest_zone_match_wins() {
        let mut parent = Zone::with_default_soa(n("com"));
        parent.add_record(a("com", 60, [9, 9, 9, 9]));
        let mut child = Zone::with_default_soa(n("example.com"));
        child.add_record(a("www.example.com", 60, [1, 1, 1, 1]));
        let auth = Authority::new(vec![parent, child]);
        let z = auth.find_zone(&n("www.example.com")).unwrap();
        assert_eq!(z.origin(), &n("example.com"));
    }

    #[test]
    fn answer_question_form() {
        let auth = authority();
        let r = auth.answer_question(&Question::new(n("www.example.com"), RecordType::A));
        assert_eq!(r.answers.len(), 1);
        assert!(r.header.qr);
    }

    #[test]
    fn zone_version_for_names() {
        let auth = authority();
        assert!(auth.zone_version_for(&n("www.example.com")).is_some());
        assert!(auth.zone_version_for(&n("other.org")).is_none());
    }

    #[test]
    fn missing_question_is_formerr() {
        let auth = authority();
        let r = auth.answer(&Message::default());
        assert_eq!(r.header.rcode, Rcode::FormErr);
    }
}
