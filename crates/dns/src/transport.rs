//! Classic DNS-over-UDP framing: one message per datagram, client-side
//! retransmission with exponential backoff, and a server-side helper.
//!
//! Sans-io like everything else: [`UdpExchange`] tells the driver what to
//! transmit and when to arm timers; the driver feeds datagrams and timeouts
//! back. This is the "traditional DNS" baseline the paper compares its
//! pub/sub variant against, and the fallback path for incremental
//! deployment (§4.5).

use crate::message::Message;
use crate::server::Authority;
use moqdns_wire::WireResult;
use std::time::Duration;

/// Default initial retransmission timeout.
pub const DEFAULT_RTO: Duration = Duration::from_millis(1000);
/// Default number of transmissions (1 original + 2 retries).
pub const DEFAULT_MAX_TRANSMISSIONS: u32 = 3;

/// Client-side state for one UDP query/response exchange.
#[derive(Debug, Clone)]
pub struct UdpExchange {
    query: Message,
    wire: Vec<u8>,
    rto: Duration,
    transmissions: u32,
    max_transmissions: u32,
    done: bool,
}

/// What the exchange wants the driver to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpAction {
    /// Transmit `datagram` now and arm a timer for `timeout` from now.
    Transmit {
        /// Encoded query bytes.
        datagram: Vec<u8>,
        /// Retransmission timeout to arm.
        timeout: Duration,
    },
    /// The exchange completed with a validated response.
    Complete(Box<Message>),
    /// The datagram did not match this exchange; keep waiting.
    Ignored(IgnoreReason),
    /// All transmissions exhausted without a response.
    Failed,
}

/// Why an inbound datagram was ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IgnoreReason {
    /// Could not be decoded as a DNS message.
    Undecodable,
    /// Transaction id mismatch (off-path injection or stale response).
    WrongId,
    /// Question section mismatch.
    WrongQuestion,
    /// Not a response (QR bit clear).
    NotAResponse,
    /// The exchange already completed.
    AlreadyDone,
}

impl UdpExchange {
    /// Creates an exchange for `query` with the default RTO policy.
    pub fn new(query: Message) -> UdpExchange {
        UdpExchange::with_policy(query, DEFAULT_RTO, DEFAULT_MAX_TRANSMISSIONS)
    }

    /// Creates an exchange with explicit RTO and transmission budget.
    pub fn with_policy(query: Message, rto: Duration, max_transmissions: u32) -> UdpExchange {
        let wire = query.encode();
        UdpExchange {
            query,
            wire,
            rto,
            transmissions: 0,
            max_transmissions: max_transmissions.max(1),
            done: false,
        }
    }

    /// The query message this exchange carries.
    pub fn query(&self) -> &Message {
        &self.query
    }

    /// Number of datagrams transmitted so far.
    pub fn transmissions(&self) -> u32 {
        self.transmissions
    }

    /// First transmission. Call once, immediately after construction.
    pub fn start(&mut self) -> UdpAction {
        self.transmit()
    }

    fn transmit(&mut self) -> UdpAction {
        if self.transmissions >= self.max_transmissions {
            self.done = true;
            return UdpAction::Failed;
        }
        self.transmissions += 1;
        // Exponential backoff: RTO, 2*RTO, 4*RTO, ...
        let timeout = self.rto * 2u32.pow(self.transmissions - 1);
        UdpAction::Transmit {
            datagram: self.wire.clone(),
            timeout,
        }
    }

    /// The armed retransmission timer fired.
    pub fn on_timeout(&mut self) -> UdpAction {
        if self.done {
            return UdpAction::Ignored(IgnoreReason::AlreadyDone);
        }
        self.transmit()
    }

    /// A datagram arrived from the queried server.
    pub fn on_datagram(&mut self, datagram: &[u8]) -> UdpAction {
        if self.done {
            return UdpAction::Ignored(IgnoreReason::AlreadyDone);
        }
        let Ok(msg) = Message::decode(datagram) else {
            return UdpAction::Ignored(IgnoreReason::Undecodable);
        };
        if !msg.header.qr {
            return UdpAction::Ignored(IgnoreReason::NotAResponse);
        }
        if msg.header.id != self.query.header.id {
            return UdpAction::Ignored(IgnoreReason::WrongId);
        }
        if msg.questions != self.query.questions {
            return UdpAction::Ignored(IgnoreReason::WrongQuestion);
        }
        self.done = true;
        UdpAction::Complete(Box::new(msg))
    }
}

/// Server-side: decodes a query datagram, answers from `auth`, returns the
/// encoded response (or `Err` for undecodable input, which servers drop).
pub fn serve_datagram(auth: &Authority, datagram: &[u8]) -> WireResult<Vec<u8>> {
    let query = Message::decode(datagram)?;
    let response = auth.answer(&query);
    Ok(response.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Question, Rcode};
    use crate::name::Name;
    use crate::rdata::RData;
    use crate::rr::{Record, RecordType};
    use crate::zone::Zone;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn query() -> Message {
        Message::query(0x42, Question::new(n("www.example.com"), RecordType::A))
    }

    fn authority() -> Authority {
        let mut z = Zone::with_default_soa(n("example.com"));
        z.add_record(Record::new(
            n("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        Authority::single(z)
    }

    #[test]
    fn happy_path_exchange() {
        let mut ex = UdpExchange::new(query());
        let UdpAction::Transmit { datagram, timeout } = ex.start() else {
            panic!()
        };
        assert_eq!(timeout, DEFAULT_RTO);
        let resp = serve_datagram(&authority(), &datagram).unwrap();
        match ex.on_datagram(&resp) {
            UdpAction::Complete(msg) => {
                assert_eq!(msg.header.rcode, Rcode::NoError);
                assert_eq!(msg.answers.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retransmits_with_backoff_then_fails() {
        let mut ex = UdpExchange::with_policy(query(), Duration::from_millis(100), 3);
        let UdpAction::Transmit { timeout: t1, .. } = ex.start() else {
            panic!()
        };
        let UdpAction::Transmit { timeout: t2, .. } = ex.on_timeout() else {
            panic!()
        };
        let UdpAction::Transmit { timeout: t3, .. } = ex.on_timeout() else {
            panic!()
        };
        assert_eq!(t1, Duration::from_millis(100));
        assert_eq!(t2, Duration::from_millis(200));
        assert_eq!(t3, Duration::from_millis(400));
        assert_eq!(ex.on_timeout(), UdpAction::Failed);
        assert_eq!(ex.transmissions(), 3);
    }

    #[test]
    fn rejects_wrong_id() {
        let mut ex = UdpExchange::new(query());
        ex.start();
        let mut q2 = query();
        q2.header.id = 0x43;
        let resp = serve_datagram(&authority(), &q2.encode()).unwrap();
        assert_eq!(
            ex.on_datagram(&resp),
            UdpAction::Ignored(IgnoreReason::WrongId)
        );
    }

    #[test]
    fn rejects_wrong_question() {
        let mut ex = UdpExchange::new(query());
        ex.start();
        let mut other = Message::query(0x42, Question::new(n("evil.com"), RecordType::A));
        other.header.qr = true;
        assert_eq!(
            ex.on_datagram(&other.encode()),
            UdpAction::Ignored(IgnoreReason::WrongQuestion)
        );
    }

    #[test]
    fn rejects_non_response_and_garbage() {
        let mut ex = UdpExchange::new(query());
        ex.start();
        assert_eq!(
            ex.on_datagram(&query().encode()),
            UdpAction::Ignored(IgnoreReason::NotAResponse)
        );
        assert_eq!(
            ex.on_datagram(b"not dns"),
            UdpAction::Ignored(IgnoreReason::Undecodable)
        );
    }

    #[test]
    fn completed_exchange_ignores_everything() {
        let mut ex = UdpExchange::new(query());
        let UdpAction::Transmit { datagram, .. } = ex.start() else {
            panic!()
        };
        let resp = serve_datagram(&authority(), &datagram).unwrap();
        assert!(matches!(ex.on_datagram(&resp), UdpAction::Complete(_)));
        assert_eq!(
            ex.on_datagram(&resp),
            UdpAction::Ignored(IgnoreReason::AlreadyDone)
        );
        assert_eq!(
            ex.on_timeout(),
            UdpAction::Ignored(IgnoreReason::AlreadyDone)
        );
    }

    #[test]
    fn serve_datagram_rejects_garbage() {
        assert!(serve_datagram(&authority(), b"xx").is_err());
    }

    #[test]
    fn serve_datagram_answers_refused_out_of_zone() {
        let q = Message::query(1, Question::new(n("other.org"), RecordType::A));
        let resp = serve_datagram(&authority(), &q.encode()).unwrap();
        let msg = Message::decode(&resp).unwrap();
        assert_eq!(msg.header.rcode, Rcode::Refused);
    }
}
