//! Authoritative zones with strictly monotonic version numbers.
//!
//! The paper (§4.2) requires authoritative servers to keep "a version number
//! of the managed zone … a strictly monotonically increasing sequence of
//! integers"; every record change bumps it, and the new version becomes the
//! group ID of the MoQT objects that push the update. [`Zone`] implements
//! exactly that: every mutation increments [`Zone::version`], and the SOA
//! serial mirrors the version so classic DNS observers see changes too.

use crate::name::Name;
use crate::rdata::{RData, Soa};
use crate::rr::{Record, RecordType};
use std::collections::BTreeMap;

/// Result of looking a name/type up in one zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// Authoritative answer records (non-empty).
    Answer(Vec<Record>),
    /// The name exists and is an alias; chase the target.
    CName(Record),
    /// The name is below a delegation: NS records plus any in-zone glue.
    Referral {
        /// NS records at the delegation point.
        ns: Vec<Record>,
        /// A/AAAA glue for the NS targets, when present in the zone.
        glue: Vec<Record>,
    },
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in this zone.
    NxDomain,
    /// The name is not within this zone at all.
    OutOfZone,
}

/// An authoritative zone: origin, SOA, records, and the monotonic version.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    soa: Soa,
    /// (owner, type) -> records. BTreeMap for deterministic iteration.
    records: BTreeMap<(Name, RecordType), Vec<Record>>,
    /// Strictly monotonically increasing; bumped on every mutation.
    version: u64,
}

impl Zone {
    /// Creates a zone for `origin` with an initial SOA (version 1).
    pub fn new(origin: Name, mut soa: Soa) -> Zone {
        soa.serial = 1;
        Zone {
            origin,
            soa,
            records: BTreeMap::new(),
            version: 1,
        }
    }

    /// Creates a zone with a boilerplate SOA — convenient for tests and
    /// synthetic workloads.
    pub fn with_default_soa(origin: Name) -> Zone {
        let mname = origin.prepend("ns1").unwrap_or_else(|_| origin.clone());
        let rname = origin
            .prepend("hostmaster")
            .unwrap_or_else(|_| origin.clone());
        Zone::new(
            origin,
            Soa {
                mname,
                rname,
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        )
    }

    /// The zone origin (apex name).
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Current zone version — the MoQT group ID for pushed updates.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The SOA record (serial mirrors the version).
    pub fn soa_record(&self) -> Record {
        let mut soa = self.soa.clone();
        soa.serial = self.version as u32;
        Record::new(self.origin.clone(), self.soa.minimum, RData::SOA(soa))
    }

    /// Negative-caching TTL (SOA minimum, RFC 2308).
    pub fn negative_ttl(&self) -> u32 {
        self.soa.minimum
    }

    fn bump(&mut self) {
        self.version += 1;
    }

    fn key(&self, name: &Name, rtype: RecordType) -> (Name, RecordType) {
        (name.to_lowercase(), rtype)
    }

    /// Adds one record (appending to any existing set of the same
    /// name/type). Bumps the version.
    pub fn add_record(&mut self, record: Record) {
        let key = self.key(&record.name, record.rtype());
        self.records.entry(key).or_default().push(record);
        self.bump();
    }

    /// Replaces the full record set for (name, type). Bumps the version.
    /// An empty `records` removes the set.
    pub fn set_records(&mut self, name: &Name, rtype: RecordType, records: Vec<Record>) {
        let key = self.key(name, rtype);
        if records.is_empty() {
            self.records.remove(&key);
        } else {
            self.records.insert(key, records);
        }
        self.bump();
    }

    /// Removes all records of (name, type). Bumps the version only if
    /// something was removed.
    pub fn remove_records(&mut self, name: &Name, rtype: RecordType) {
        let key = self.key(name, rtype);
        if self.records.remove(&key).is_some() {
            self.bump();
        }
    }

    /// The record set for exactly (name, type), if any.
    pub fn get(&self, name: &Name, rtype: RecordType) -> Option<&[Record]> {
        self.records
            .get(&self.key(name, rtype))
            .map(|v| v.as_slice())
    }

    /// True if any record set exists at `name` (any type).
    pub fn name_exists(&self, name: &Name) -> bool {
        let lname = name.to_lowercase();
        self.records.keys().any(|(n, _)| *n == lname) || lname == self.origin.to_lowercase()
    }

    /// Iterates all record sets, deterministically ordered.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, RecordType, &[Record])> {
        self.records.iter().map(|((n, t), v)| (n, *t, v.as_slice()))
    }

    /// Total number of records in the zone.
    pub fn record_count(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// Finds the closest enclosing delegation for `name`, if the zone
    /// delegates a sub-zone at or above it (excluding the apex).
    fn find_delegation(&self, name: &Name) -> Option<&[Record]> {
        let mut cut = Some(name.clone());
        while let Some(c) = cut {
            if c == self.origin || !c.is_subdomain_of(&self.origin) {
                break;
            }
            if let Some(ns) = self.get(&c, RecordType::NS) {
                return Some(ns);
            }
            cut = c.parent();
        }
        None
    }

    /// Authoritative lookup of (name, type) following RFC 1034 §4.3.2
    /// within this single zone: answer, CNAME, referral, NODATA, NXDOMAIN.
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> ZoneLookup {
        if !name.is_subdomain_of(&self.origin) {
            return ZoneLookup::OutOfZone;
        }
        // Delegations take precedence below the cut (except asking the apex
        // for its own NS set, which is authoritative data).
        if let Some(ns) = self.find_delegation(name) {
            let is_apex_ns_query = rtype == RecordType::NS && *name == self.origin;
            if !is_apex_ns_query {
                let ns = ns.to_vec();
                let mut glue = Vec::new();
                for r in &ns {
                    if let RData::NS(target) = &r.rdata {
                        for t in [RecordType::A, RecordType::AAAA] {
                            if let Some(g) = self.get(target, t) {
                                glue.extend(g.iter().cloned());
                            }
                        }
                    }
                }
                return ZoneLookup::Referral { ns, glue };
            }
        }
        if let Some(rs) = self.get(name, rtype) {
            return ZoneLookup::Answer(rs.to_vec());
        }
        if rtype != RecordType::CNAME {
            if let Some(cn) = self.get(name, RecordType::CNAME) {
                return ZoneLookup::CName(cn[0].clone());
            }
        }
        if rtype == RecordType::SOA && *name == self.origin {
            return ZoneLookup::Answer(vec![self.soa_record()]);
        }
        if self.name_exists(name) {
            ZoneLookup::NoData
        } else {
            // A name "exists" (empty non-terminal) if anything lives below it.
            let lname = name.to_lowercase();
            let has_descendant = self
                .records
                .keys()
                .any(|(n, _)| n.is_subdomain_of(&lname) && *n != lname);
            if has_descendant {
                ZoneLookup::NoData
            } else {
                ZoneLookup::NxDomain
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(name: &str, ttl: u32, ip: [u8; 4]) -> Record {
        Record::new(n(name), ttl, RData::A(Ipv4Addr::from(ip)))
    }

    fn example_zone() -> Zone {
        let mut z = Zone::with_default_soa(n("example.com"));
        z.add_record(a("www.example.com", 300, [192, 0, 2, 1]));
        z.add_record(a("example.com", 300, [192, 0, 2, 2]));
        z.add_record(Record::new(
            n("alias.example.com"),
            300,
            RData::CNAME(n("www.example.com")),
        ));
        // Delegation of sub.example.com with glue.
        z.add_record(Record::new(
            n("sub.example.com"),
            3600,
            RData::NS(n("ns.sub.example.com")),
        ));
        z.add_record(a("ns.sub.example.com", 3600, [192, 0, 2, 53]));
        z
    }

    #[test]
    fn version_starts_at_one_and_bumps_on_every_mutation() {
        let mut z = Zone::with_default_soa(n("example.com"));
        assert_eq!(z.version(), 1);
        z.add_record(a("www.example.com", 300, [1, 2, 3, 4]));
        assert_eq!(z.version(), 2);
        z.set_records(
            &n("www.example.com"),
            RecordType::A,
            vec![a("www.example.com", 300, [5, 6, 7, 8])],
        );
        assert_eq!(z.version(), 3);
        z.remove_records(&n("www.example.com"), RecordType::A);
        assert_eq!(z.version(), 4);
        // Removing nothing does not bump.
        z.remove_records(&n("www.example.com"), RecordType::A);
        assert_eq!(z.version(), 4);
    }

    #[test]
    fn version_is_strictly_monotonic() {
        let mut z = Zone::with_default_soa(n("example.com"));
        let mut last = z.version();
        for i in 0..100u8 {
            z.set_records(
                &n("www.example.com"),
                RecordType::A,
                vec![a("www.example.com", 300, [192, 0, 2, i])],
            );
            assert!(z.version() > last);
            last = z.version();
        }
    }

    #[test]
    fn soa_serial_mirrors_version() {
        let mut z = Zone::with_default_soa(n("example.com"));
        z.add_record(a("x.example.com", 60, [1, 1, 1, 1]));
        let soa = z.soa_record();
        match &soa.rdata {
            RData::SOA(s) => assert_eq!(s.serial as u64, z.version()),
            _ => panic!(),
        }
    }

    #[test]
    fn lookup_answer() {
        let z = example_zone();
        match z.lookup(&n("www.example.com"), RecordType::A) {
            ZoneLookup::Answer(rs) => {
                assert_eq!(rs.len(), 1);
                assert_eq!(rs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let z = example_zone();
        assert!(matches!(
            z.lookup(&n("WWW.Example.COM"), RecordType::A),
            ZoneLookup::Answer(_)
        ));
    }

    #[test]
    fn lookup_cname() {
        let z = example_zone();
        match z.lookup(&n("alias.example.com"), RecordType::A) {
            ZoneLookup::CName(r) => {
                assert_eq!(r.rdata, RData::CNAME(n("www.example.com")))
            }
            other => panic!("{other:?}"),
        }
        // Asking for the CNAME itself returns it as an answer.
        assert!(matches!(
            z.lookup(&n("alias.example.com"), RecordType::CNAME),
            ZoneLookup::Answer(_)
        ));
    }

    #[test]
    fn lookup_referral_with_glue() {
        let z = example_zone();
        match z.lookup(&n("deep.sub.example.com"), RecordType::A) {
            ZoneLookup::Referral { ns, glue } => {
                assert_eq!(ns.len(), 1);
                assert_eq!(glue.len(), 1);
                assert_eq!(glue[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 53)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lookup_nodata_vs_nxdomain() {
        let z = example_zone();
        assert_eq!(
            z.lookup(&n("www.example.com"), RecordType::AAAA),
            ZoneLookup::NoData
        );
        assert_eq!(
            z.lookup(&n("missing.example.com"), RecordType::A),
            ZoneLookup::NxDomain
        );
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let mut z = Zone::with_default_soa(n("example.com"));
        z.add_record(a("a.b.example.com", 60, [1, 1, 1, 1]));
        // b.example.com has no records but has a descendant.
        assert_eq!(
            z.lookup(&n("b.example.com"), RecordType::A),
            ZoneLookup::NoData
        );
    }

    #[test]
    fn lookup_out_of_zone() {
        let z = example_zone();
        assert_eq!(
            z.lookup(&n("www.other.org"), RecordType::A),
            ZoneLookup::OutOfZone
        );
    }

    #[test]
    fn apex_soa_lookup() {
        let z = example_zone();
        match z.lookup(&n("example.com"), RecordType::SOA) {
            ZoneLookup::Answer(rs) => assert_eq!(rs[0].rtype(), RecordType::SOA),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn record_count_and_iter() {
        let z = example_zone();
        assert_eq!(z.record_count(), 5);
        assert_eq!(z.iter().count(), 5);
    }
}
