//! Object encodings on data streams and datagrams (draft-12 §9, subset).
//!
//! Objects travel outside the control stream:
//!
//! * **subgroup streams** — a unidirectional stream per (group, subgroup)
//!   of a subscribed track, headed by the track alias and group id;
//! * **fetch streams** — a unidirectional stream carrying a FETCH
//!   response's objects, headed by the fetch request id;
//! * **object datagrams** — unreliable delivery (RFC 9221), implemented
//!   for the streams-vs-datagrams ablation only; the DNS mapping always
//!   uses streams (§4.1).
//!
//! DNS-over-MoQT objects always have `object_id == 0` and
//! `group_id == zone version` (§4.2/§4.3); groups contain exactly one
//! object (§4.3, Fig 4).
//!
//! Payloads are [`Payload`] handles: decoding a data stream carves
//! zero-copy sub-views out of the stream buffer, and forwarding an object
//! to N subscribers shares one backing allocation instead of copying the
//! bytes N times.

use moqdns_wire::{varint, Payload, Reader, WireError, WireResult, Writer};

/// Stream type tag for subgroup streams.
pub const STREAM_TYPE_SUBGROUP: u64 = 0x4;
/// Stream type tag for fetch streams.
pub const STREAM_TYPE_FETCH: u64 = 0x5;

/// An object as delivered to the application. `Clone` is O(1): the
/// payload is a shared handle, not a byte copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// Group id. In DNS-over-MoQT this is the zone version.
    pub group_id: u64,
    /// Object id within the group. Always 0 in DNS-over-MoQT.
    pub object_id: u64,
    /// Payload bytes (a full DNS response message in DNS-over-MoQT).
    pub payload: Payload,
}

/// Header of a subgroup data stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubgroupHeader {
    /// Alias bound by the SUBSCRIBE.
    pub track_alias: u64,
    /// Group this stream carries.
    pub group_id: u64,
    /// Subgroup (always 0 in DNS-over-MoQT).
    pub subgroup_id: u64,
    /// Publisher priority (informational).
    pub priority: u8,
}

impl SubgroupHeader {
    /// Encodes the stream header.
    pub fn encode(&self, w: &mut Writer) {
        varint::put_varint(w, STREAM_TYPE_SUBGROUP);
        varint::put_varint(w, self.track_alias);
        varint::put_varint(w, self.group_id);
        varint::put_varint(w, self.subgroup_id);
        w.put_u8(self.priority);
    }

    fn decode_after_type(r: &mut Reader<'_>) -> WireResult<SubgroupHeader> {
        Ok(SubgroupHeader {
            track_alias: varint::get_varint(r)?,
            group_id: varint::get_varint(r)?,
            subgroup_id: varint::get_varint(r)?,
            priority: r.get_u8()?,
        })
    }
}

/// A fully parsed unidirectional data stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataStream {
    /// Subscription delivery: header + objects of one group.
    Subgroup {
        /// The stream header.
        header: SubgroupHeader,
        /// Objects, in order (object ids are explicit).
        objects: Vec<Object>,
    },
    /// Fetch delivery: request id + objects (groups may vary per object).
    Fetch {
        /// The fetch's request id.
        request_id: u64,
        /// Objects, in fetch order.
        objects: Vec<Object>,
    },
}

/// Encodes a subgroup stream onto `w`: header + objects (object id +
/// length-prefixed payload each). Callers on hot paths pass a recycled
/// [`Writer`] (see [`moqdns_wire::BufPool`]).
pub fn encode_subgroup_stream_into(w: &mut Writer, header: &SubgroupHeader, objects: &[Object]) {
    header.encode(w);
    for o in objects {
        varint::put_varint(w, o.object_id);
        varint::put_varint(w, o.payload.len() as u64);
        w.put_slice(&o.payload);
    }
}

/// Encodes a subgroup stream into a fresh buffer.
pub fn encode_subgroup_stream(header: &SubgroupHeader, objects: &[Object]) -> Vec<u8> {
    let mut w = Writer::with_capacity(64);
    encode_subgroup_stream_into(&mut w, header, objects);
    w.into_vec()
}

/// Encodes a fetch stream onto `w`: type + request id, then (group,
/// object, payload-len, payload) per object.
pub fn encode_fetch_stream_into(w: &mut Writer, request_id: u64, objects: &[Object]) {
    varint::put_varint(w, STREAM_TYPE_FETCH);
    varint::put_varint(w, request_id);
    for o in objects {
        varint::put_varint(w, o.group_id);
        varint::put_varint(w, o.object_id);
        varint::put_varint(w, o.payload.len() as u64);
        w.put_slice(&o.payload);
    }
}

/// Encodes a fetch stream into a fresh buffer.
pub fn encode_fetch_stream(request_id: u64, objects: &[Object]) -> Vec<u8> {
    let mut w = Writer::with_capacity(64);
    encode_fetch_stream_into(&mut w, request_id, objects);
    w.into_vec()
}

/// Decodes a complete unidirectional data stream (call once FIN arrives).
///
/// Takes the stream buffer as a [`Payload`] (pass the owned receive
/// buffer via `.into()`); each object's payload is a zero-copy sub-view
/// of it.
pub fn decode_data_stream(buf: impl Into<Payload>) -> WireResult<DataStream> {
    let buf = buf.into();
    let mut r = Reader::new(buf.as_slice());
    // Reads the next length-prefixed payload as a zero-copy slice.
    let take_payload = |r: &mut Reader<'_>| -> WireResult<Payload> {
        let len = varint::get_varint(r)? as usize;
        let start = r.position();
        r.skip(len)?;
        Ok(buf.slice(start..start + len))
    };
    match varint::get_varint(&mut r)? {
        STREAM_TYPE_SUBGROUP => {
            let header = SubgroupHeader::decode_after_type(&mut r)?;
            let mut objects = Vec::new();
            while !r.is_empty() {
                let object_id = varint::get_varint(&mut r)?;
                let payload = take_payload(&mut r)?;
                objects.push(Object {
                    group_id: header.group_id,
                    object_id,
                    payload,
                });
            }
            Ok(DataStream::Subgroup { header, objects })
        }
        STREAM_TYPE_FETCH => {
            let request_id = varint::get_varint(&mut r)?;
            let mut objects = Vec::new();
            while !r.is_empty() {
                let group_id = varint::get_varint(&mut r)?;
                let object_id = varint::get_varint(&mut r)?;
                let payload = take_payload(&mut r)?;
                objects.push(Object {
                    group_id,
                    object_id,
                    payload,
                });
            }
            Ok(DataStream::Fetch {
                request_id,
                objects,
            })
        }
        _ => Err(WireError::Invalid {
            what: "data stream type",
        }),
    }
}

/// An object datagram (RFC 9221 delivery; ablation A2 only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectDatagram {
    /// Alias bound by the SUBSCRIBE.
    pub track_alias: u64,
    /// The contained object.
    pub object: Object,
}

impl ObjectDatagram {
    /// Encodes the datagram payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(32 + self.object.payload.len());
        varint::put_varint(&mut w, self.track_alias);
        varint::put_varint(&mut w, self.object.group_id);
        varint::put_varint(&mut w, self.object.object_id);
        w.put_slice(&self.object.payload);
        w.into_vec()
    }

    /// Decodes a datagram payload; the object's payload is a zero-copy
    /// sub-view of `buf`.
    pub fn decode(buf: impl Into<Payload>) -> WireResult<ObjectDatagram> {
        let buf = buf.into();
        let mut r = Reader::new(buf.as_slice());
        let track_alias = varint::get_varint(&mut r)?;
        let group_id = varint::get_varint(&mut r)?;
        let object_id = varint::get_varint(&mut r)?;
        let payload = buf.slice(r.position()..buf.len());
        Ok(ObjectDatagram {
            track_alias,
            object: Object {
                group_id,
                object_id,
                payload,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn subgroup_stream_roundtrip() {
        let header = SubgroupHeader {
            track_alias: 7,
            group_id: 42,
            subgroup_id: 0,
            priority: 128,
        };
        let objects = vec![Object {
            group_id: 42,
            object_id: 0,
            payload: b"dns response bytes".to_vec().into(),
        }];
        let buf = encode_subgroup_stream(&header, &objects);
        match decode_data_stream(buf).unwrap() {
            DataStream::Subgroup {
                header: h,
                objects: o,
            } => {
                assert_eq!(h, header);
                assert_eq!(o, objects);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decoded_objects_share_stream_storage() {
        // Zero-copy invariant: all objects decoded from one stream buffer
        // are sub-views of it, not fresh allocations.
        let objects = vec![
            Object {
                group_id: 1,
                object_id: 0,
                payload: vec![0xAA; 64].into(),
            },
            Object {
                group_id: 2,
                object_id: 0,
                payload: vec![0xBB; 64].into(),
            },
        ];
        let buf = moqdns_wire::Payload::new(encode_fetch_stream(9, &objects));
        match decode_data_stream(buf.clone()).unwrap() {
            DataStream::Fetch {
                objects: decoded, ..
            } => {
                assert_eq!(decoded.len(), 2);
                for o in &decoded {
                    assert!(o.payload.shares_storage_with(&buf));
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fetch_stream_roundtrip_multiple_groups() {
        let objects = vec![
            Object {
                group_id: 10,
                object_id: 0,
                payload: vec![1, 2].into(),
            },
            Object {
                group_id: 11,
                object_id: 0,
                payload: vec![].into(),
            },
        ];
        let buf = encode_fetch_stream(99, &objects);
        match decode_data_stream(buf).unwrap() {
            DataStream::Fetch {
                request_id,
                objects: o,
            } => {
                assert_eq!(request_id, 99);
                assert_eq!(o, objects);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_fetch_stream() {
        let buf = encode_fetch_stream(5, &[]);
        match decode_data_stream(buf).unwrap() {
            DataStream::Fetch { objects, .. } => assert!(objects.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn datagram_roundtrip() {
        let d = ObjectDatagram {
            track_alias: 3,
            object: Object {
                group_id: 9,
                object_id: 0,
                payload: b"update".to_vec().into(),
            },
        };
        assert_eq!(ObjectDatagram::decode(d.encode()).unwrap(), d);
    }

    #[test]
    fn unknown_stream_type_rejected() {
        let mut w = Writer::new();
        varint::put_varint(&mut w, 0x9);
        assert!(decode_data_stream(w.into_vec()).is_err());
    }

    #[test]
    fn truncated_object_rejected() {
        let header = SubgroupHeader {
            track_alias: 1,
            group_id: 1,
            subgroup_id: 0,
            priority: 0,
        };
        let mut buf = encode_subgroup_stream(
            &header,
            &[Object {
                group_id: 1,
                object_id: 0,
                payload: vec![1, 2, 3, 4].into(),
            }],
        );
        buf.truncate(buf.len() - 2);
        assert!(decode_data_stream(buf).is_err());
    }

    proptest! {
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
            let _ = decode_data_stream(&bytes);
            let _ = ObjectDatagram::decode(&bytes);
        }

        // Datagram encode/decode roundtrip: the decoder reads exactly the
        // three header varints and treats every remaining byte as payload
        // — no byte is lost, invented, or read past the buffer.
        #[test]
        fn prop_datagram_roundtrip(
            alias in any::<u32>(),
            group in any::<u32>(),
            object in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let dg = ObjectDatagram {
                track_alias: alias as u64,
                object: Object {
                    group_id: group as u64,
                    object_id: object as u64,
                    payload: payload.into(),
                },
            };
            let decoded = ObjectDatagram::decode(dg.encode()).unwrap();
            prop_assert_eq!(decoded, dg);
        }

        #[test]
        fn prop_subgroup_roundtrip(
            alias in any::<u32>(),
            group in any::<u32>(),
            payload in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let header = SubgroupHeader {
                track_alias: alias as u64,
                group_id: group as u64,
                subgroup_id: 0,
                priority: 0,
            };
            let objects = vec![Object { group_id: group as u64, object_id: 0, payload: payload.into() }];
            let buf = encode_subgroup_stream(&header, &objects);
            let parsed = decode_data_stream(buf).unwrap();
            prop_assert_eq!(parsed, DataStream::Subgroup { header, objects });
        }
    }
}
