//! # moqdns-moqt
//!
//! Media over QUIC Transport (MoQT), after draft-ietf-moq-transport-12 —
//! the subset the paper's DNS mapping uses, rebuilt from scratch on top of
//! `moqdns-quic`.
//!
//! * [`track`] — full track names: a **namespace tuple** plus a **track
//!   name**, with the 4096-byte combined limit the paper leans on for its
//!   QNAME budget (§4.3);
//! * [`message`] — control messages (SETUP, SUBSCRIBE family, FETCH family,
//!   ANNOUNCE family, GOAWAY, MAX_REQUEST_ID) exchanged on the single
//!   bidirectional control stream;
//! * [`data`] — object encodings: subgroup streams for subscriptions,
//!   fetch streams for FETCH responses, and object datagrams (used only by
//!   the streams-vs-datagrams ablation; the DNS mapping always uses
//!   streams, §4.1);
//! * [`session`] — the sans-io session state machine, an **explicit**
//!   machine (`Init → Handshaking → Ready → Draining → Closed`) driven by
//!   an exhaustive input enum: version negotiation, subscription/fetch
//!   bookkeeping on both publisher and subscriber side, object delivery,
//!   and the **joining fetch** (§4.1: subscribe, then fetch "the version
//!   immediately before the start of the subscription by using an offset
//!   of one"). Illegal or malformed inputs *poison* the session into
//!   `Closed`; the per-state legality table lives in the module docs;
//! * [`relay`] — relay logic: aggregation of many downstream subscriptions
//!   into one upstream subscription and an object cache, operating purely
//!   on `(track, group, object)` identities — relays never inspect payloads
//!   (§3).

pub mod data;
pub mod message;
pub mod relay;
pub mod session;
pub mod track;

pub use message::ControlMessage;
pub use relay::{
    Failover, FederationConfig, HashShard, LinkClass, LinkId, RelayAction, RelayCore, RelayStats,
    RoutePolicy, StaticParent, UplinkId,
};
pub use session::{Session, SessionConfig, SessionEvent};
pub use track::FullTrackName;

/// The MoQT protocol version this implementation speaks (draft-12).
pub const MOQT_VERSION: u64 = 0xff00_000c;

/// ALPN identifier for MoQT over QUIC.
pub const MOQT_ALPN: &[u8] = b"moq-00";
