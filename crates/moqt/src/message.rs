//! Control messages (draft-ietf-moq-transport-12 §6, subset).
//!
//! All control messages flow on the single bidirectional control stream,
//! framed as `type (varint) | length (varint) | payload`. The subset here
//! is exactly what DNS-over-MoQT exercises: session setup, the SUBSCRIBE
//! family, the FETCH family (including the relative joining fetch), the
//! ANNOUNCE family (used by relays), GOAWAY and MAX_REQUEST_ID.

use crate::track::FullTrackName;
use moqdns_wire::{varint, Reader, WireError, WireResult, Writer};

/// Subscription filter: where in the track the subscription starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterType {
    /// Deliver objects from the next group onward (the DNS mapping's mode).
    LatestObject,
    /// Deliver from an absolute (group, object) position.
    AbsoluteStart {
        /// Starting group.
        group: u64,
        /// Starting object within the group.
        object: u64,
    },
}

/// How a FETCH names its range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchType {
    /// Standalone fetch of an absolute range (inclusive start, exclusive
    /// end group; end_group == 0 means "just start group").
    StandAlone {
        /// Track to fetch from.
        track: FullTrackName,
        /// First group.
        start_group: u64,
        /// First object.
        start_object: u64,
        /// Last group (inclusive).
        end_group: u64,
    },
    /// Joining fetch relative to an existing subscription: fetch the
    /// `joining_start` groups preceding the subscription's start. The DNS
    /// lookup uses offset 1 — "the version immediately before the start of
    /// the subscription" (paper §4.1).
    RelativeJoining {
        /// Request id of the subscription being joined.
        joining_request_id: u64,
        /// How many groups before the subscription start to fetch.
        joining_start: u64,
    },
    /// Relay-federation fetch between peer cores (not part of draft-12;
    /// a private extension tag). Identical to a standalone fetch except it
    /// carries the remaining **hop budget**: each core that re-forwards a
    /// peer fetch decrements it, and a fetch arriving with budget 0 is
    /// rejected — rerouted requests can therefore never cycle through the
    /// core graph.
    Peer {
        /// Track to fetch from.
        track: FullTrackName,
        /// First group.
        start_group: u64,
        /// Last group (inclusive).
        end_group: u64,
        /// Remaining core-to-core forwards this fetch may take.
        hop_budget: u64,
    },
}

/// A control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// Client's session setup offer.
    ClientSetup {
        /// Supported protocol versions.
        versions: Vec<u64>,
        /// Maximum request id the peer may use.
        max_request_id: u64,
    },
    /// Server's setup answer.
    ServerSetup {
        /// Selected version.
        version: u64,
        /// Maximum request id the peer may use.
        max_request_id: u64,
    },
    /// Request ongoing delivery of a track.
    Subscribe {
        /// Request id (even = client-initiated, odd = server-initiated).
        request_id: u64,
        /// Subscriber-chosen alias used in data streams.
        track_alias: u64,
        /// The track.
        track: FullTrackName,
        /// Where to start.
        filter: FilterType,
    },
    /// Accept a subscription.
    SubscribeOk {
        /// Request being answered.
        request_id: u64,
        /// Subscription expiry in milliseconds (0 = never).
        expires_ms: u64,
        /// Largest (group, object) the publisher has, if any.
        largest: Option<(u64, u64)>,
    },
    /// Refuse a subscription — also the fallback signal when a recursive
    /// resolver cannot provide updates for a record (paper §4.5).
    SubscribeError {
        /// Request being answered.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Subscriber ends a subscription.
    Unsubscribe {
        /// The subscription's request id.
        request_id: u64,
    },
    /// Publisher ends a subscription.
    SubscribeDone {
        /// The subscription's request id.
        request_id: u64,
        /// Status code.
        code: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Request past objects.
    Fetch {
        /// Request id.
        request_id: u64,
        /// What to fetch.
        fetch: FetchType,
    },
    /// Accept a fetch; objects follow on a fetch stream.
    FetchOk {
        /// Request being answered.
        request_id: u64,
        /// Largest (group, object) available.
        largest: (u64, u64),
    },
    /// Refuse a fetch.
    FetchError {
        /// Request being answered.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Cancel an in-progress fetch.
    FetchCancel {
        /// The fetch's request id.
        request_id: u64,
    },
    /// Publisher advertises a namespace (relays use this upstream).
    Announce {
        /// Request id.
        request_id: u64,
        /// The namespace tuple being announced.
        namespace: Vec<Vec<u8>>,
    },
    /// Accept an announcement.
    AnnounceOk {
        /// Request being answered.
        request_id: u64,
    },
    /// Refuse an announcement.
    AnnounceError {
        /// Request being answered.
        request_id: u64,
        /// Error code.
        code: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Withdraw an announcement.
    Unannounce {
        /// The announcement's namespace.
        namespace: Vec<Vec<u8>>,
    },
    /// Raise the peer's allowed request id space.
    MaxRequestId {
        /// New maximum.
        max: u64,
    },
    /// Ask the peer to move to another session.
    GoAway {
        /// Redirect URI (may be empty).
        uri: String,
    },
}

const T_CLIENT_SETUP: u64 = 0x20;
const T_SERVER_SETUP: u64 = 0x21;
const T_SUBSCRIBE: u64 = 0x03;
const T_SUBSCRIBE_OK: u64 = 0x04;
const T_SUBSCRIBE_ERROR: u64 = 0x05;
const T_UNSUBSCRIBE: u64 = 0x0A;
const T_SUBSCRIBE_DONE: u64 = 0x0B;
const T_FETCH: u64 = 0x16;
const T_FETCH_CANCEL: u64 = 0x17;
const T_FETCH_OK: u64 = 0x18;
const T_FETCH_ERROR: u64 = 0x19;
const T_ANNOUNCE: u64 = 0x06;
const T_ANNOUNCE_OK: u64 = 0x07;
const T_ANNOUNCE_ERROR: u64 = 0x08;
const T_UNANNOUNCE: u64 = 0x09;
const T_MAX_REQUEST_ID: u64 = 0x15;
const T_GOAWAY: u64 = 0x10;

fn put_string(w: &mut Writer, s: &str) {
    varint::put_varint(w, s.len() as u64);
    w.put_slice(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> WireResult<String> {
    let len = varint::get_varint(r)? as usize;
    if len > 8192 {
        return Err(WireError::Invalid {
            what: "string length",
        });
    }
    let bytes = r.get_vec(len)?;
    String::from_utf8(bytes).map_err(|_| WireError::Invalid {
        what: "utf-8 string",
    })
}

fn put_namespace(w: &mut Writer, ns: &[Vec<u8>]) {
    varint::put_varint(w, ns.len() as u64);
    for e in ns {
        varint::put_varint(w, e.len() as u64);
        w.put_slice(e);
    }
}

fn get_namespace(r: &mut Reader<'_>) -> WireResult<Vec<Vec<u8>>> {
    let n = varint::get_varint(r)? as usize;
    if n > crate::track::MAX_NAMESPACE_ELEMENTS {
        return Err(WireError::Invalid {
            what: "namespace element count",
        });
    }
    let mut ns = Vec::with_capacity(n);
    for _ in 0..n {
        let len = varint::get_varint(r)? as usize;
        ns.push(r.get_vec(len)?);
    }
    Ok(ns)
}

impl ControlMessage {
    /// Message type code.
    pub fn type_code(&self) -> u64 {
        match self {
            ControlMessage::ClientSetup { .. } => T_CLIENT_SETUP,
            ControlMessage::ServerSetup { .. } => T_SERVER_SETUP,
            ControlMessage::Subscribe { .. } => T_SUBSCRIBE,
            ControlMessage::SubscribeOk { .. } => T_SUBSCRIBE_OK,
            ControlMessage::SubscribeError { .. } => T_SUBSCRIBE_ERROR,
            ControlMessage::Unsubscribe { .. } => T_UNSUBSCRIBE,
            ControlMessage::SubscribeDone { .. } => T_SUBSCRIBE_DONE,
            ControlMessage::Fetch { .. } => T_FETCH,
            ControlMessage::FetchOk { .. } => T_FETCH_OK,
            ControlMessage::FetchError { .. } => T_FETCH_ERROR,
            ControlMessage::FetchCancel { .. } => T_FETCH_CANCEL,
            ControlMessage::Announce { .. } => T_ANNOUNCE,
            ControlMessage::AnnounceOk { .. } => T_ANNOUNCE_OK,
            ControlMessage::AnnounceError { .. } => T_ANNOUNCE_ERROR,
            ControlMessage::Unannounce { .. } => T_UNANNOUNCE,
            ControlMessage::MaxRequestId { .. } => T_MAX_REQUEST_ID,
            ControlMessage::GoAway { .. } => T_GOAWAY,
        }
    }

    /// Encodes as a framed control-stream message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        let mut scratch = Writer::new();
        self.encode_into(&mut w, &mut scratch);
        w.into_vec()
    }

    /// Encodes onto `w`, using `scratch` for the length-prefixed body.
    /// Hot paths pass recycled writers (see [`moqdns_wire::BufPool`]) so
    /// per-message encoding allocates nothing in steady state.
    pub fn encode_into(&self, w: &mut Writer, scratch: &mut Writer) {
        scratch.clear();
        self.encode_body(scratch);
        varint::put_varint(w, self.type_code());
        varint::put_varint(w, scratch.len() as u64);
        w.put_slice(scratch.as_slice());
    }

    fn encode_body(&self, body: &mut Writer) {
        match self {
            ControlMessage::ClientSetup {
                versions,
                max_request_id,
            } => {
                varint::put_varint(body, versions.len() as u64);
                for v in versions {
                    varint::put_varint(body, *v);
                }
                varint::put_varint(body, *max_request_id);
            }
            ControlMessage::ServerSetup {
                version,
                max_request_id,
            } => {
                varint::put_varint(body, *version);
                varint::put_varint(body, *max_request_id);
            }
            ControlMessage::Subscribe {
                request_id,
                track_alias,
                track,
                filter,
            } => {
                varint::put_varint(body, *request_id);
                varint::put_varint(body, *track_alias);
                track.encode(body);
                match filter {
                    FilterType::LatestObject => varint::put_varint(body, 0x2),
                    FilterType::AbsoluteStart { group, object } => {
                        varint::put_varint(body, 0x3);
                        varint::put_varint(body, *group);
                        varint::put_varint(body, *object);
                    }
                }
            }
            ControlMessage::SubscribeOk {
                request_id,
                expires_ms,
                largest,
            } => {
                varint::put_varint(body, *request_id);
                varint::put_varint(body, *expires_ms);
                match largest {
                    Some((g, o)) => {
                        body.put_u8(1);
                        varint::put_varint(body, *g);
                        varint::put_varint(body, *o);
                    }
                    None => body.put_u8(0),
                }
            }
            ControlMessage::SubscribeError {
                request_id,
                code,
                reason,
            }
            | ControlMessage::FetchError {
                request_id,
                code,
                reason,
            }
            | ControlMessage::SubscribeDone {
                request_id,
                code,
                reason,
            }
            | ControlMessage::AnnounceError {
                request_id,
                code,
                reason,
            } => {
                varint::put_varint(body, *request_id);
                varint::put_varint(body, *code);
                put_string(body, reason);
            }
            ControlMessage::Unsubscribe { request_id }
            | ControlMessage::FetchCancel { request_id }
            | ControlMessage::AnnounceOk { request_id } => {
                varint::put_varint(body, *request_id);
            }
            ControlMessage::Fetch { request_id, fetch } => {
                varint::put_varint(body, *request_id);
                match fetch {
                    FetchType::StandAlone {
                        track,
                        start_group,
                        start_object,
                        end_group,
                    } => {
                        varint::put_varint(body, 0x1);
                        track.encode(body);
                        varint::put_varint(body, *start_group);
                        varint::put_varint(body, *start_object);
                        varint::put_varint(body, *end_group);
                    }
                    FetchType::RelativeJoining {
                        joining_request_id,
                        joining_start,
                    } => {
                        varint::put_varint(body, 0x2);
                        varint::put_varint(body, *joining_request_id);
                        varint::put_varint(body, *joining_start);
                    }
                    FetchType::Peer {
                        track,
                        start_group,
                        end_group,
                        hop_budget,
                    } => {
                        varint::put_varint(body, 0x3);
                        track.encode(body);
                        varint::put_varint(body, *start_group);
                        varint::put_varint(body, *end_group);
                        varint::put_varint(body, *hop_budget);
                    }
                }
            }
            ControlMessage::FetchOk {
                request_id,
                largest,
            } => {
                varint::put_varint(body, *request_id);
                varint::put_varint(body, largest.0);
                varint::put_varint(body, largest.1);
            }
            ControlMessage::Announce {
                request_id,
                namespace,
            } => {
                varint::put_varint(body, *request_id);
                put_namespace(body, namespace);
            }
            ControlMessage::Unannounce { namespace } => {
                put_namespace(body, namespace);
            }
            ControlMessage::MaxRequestId { max } => {
                varint::put_varint(body, *max);
            }
            ControlMessage::GoAway { uri } => {
                put_string(body, uri);
            }
        }
    }

    /// Tries to decode one framed message from the front of `buf`.
    /// Returns `Ok(None)` if more bytes are needed, otherwise the message
    /// and how many bytes it consumed.
    pub fn decode(buf: &[u8]) -> WireResult<Option<(ControlMessage, usize)>> {
        let mut r = Reader::new(buf);
        let Ok(ty) = varint::get_varint(&mut r) else {
            return Ok(None);
        };
        let Ok(len) = varint::get_varint(&mut r) else {
            return Ok(None);
        };
        if len > 65_536 {
            return Err(WireError::Invalid {
                what: "control message length",
            });
        }
        if r.remaining() < len as usize {
            return Ok(None);
        }
        let body_start = r.position();
        let msg = Self::decode_body(ty, &mut r)?;
        let consumed = r.position();
        if consumed - body_start != len as usize {
            return Err(WireError::Invalid {
                what: "control message length mismatch",
            });
        }
        Ok(Some((msg, consumed)))
    }

    fn decode_body(ty: u64, r: &mut Reader<'_>) -> WireResult<ControlMessage> {
        Ok(match ty {
            T_CLIENT_SETUP => {
                let n = varint::get_varint(r)? as usize;
                if n == 0 || n > 32 {
                    return Err(WireError::Invalid {
                        what: "version count",
                    });
                }
                let mut versions = Vec::with_capacity(n);
                for _ in 0..n {
                    versions.push(varint::get_varint(r)?);
                }
                ControlMessage::ClientSetup {
                    versions,
                    max_request_id: varint::get_varint(r)?,
                }
            }
            T_SERVER_SETUP => ControlMessage::ServerSetup {
                version: varint::get_varint(r)?,
                max_request_id: varint::get_varint(r)?,
            },
            T_SUBSCRIBE => {
                let request_id = varint::get_varint(r)?;
                let track_alias = varint::get_varint(r)?;
                let track = FullTrackName::decode(r)?;
                let filter = match varint::get_varint(r)? {
                    0x2 => FilterType::LatestObject,
                    0x3 => FilterType::AbsoluteStart {
                        group: varint::get_varint(r)?,
                        object: varint::get_varint(r)?,
                    },
                    _ => {
                        return Err(WireError::Invalid {
                            what: "filter type",
                        })
                    }
                };
                ControlMessage::Subscribe {
                    request_id,
                    track_alias,
                    track,
                    filter,
                }
            }
            T_SUBSCRIBE_OK => {
                let request_id = varint::get_varint(r)?;
                let expires_ms = varint::get_varint(r)?;
                let largest = match r.get_u8()? {
                    0 => None,
                    1 => Some((varint::get_varint(r)?, varint::get_varint(r)?)),
                    _ => {
                        return Err(WireError::Invalid {
                            what: "content-exists flag",
                        })
                    }
                };
                ControlMessage::SubscribeOk {
                    request_id,
                    expires_ms,
                    largest,
                }
            }
            T_SUBSCRIBE_ERROR => ControlMessage::SubscribeError {
                request_id: varint::get_varint(r)?,
                code: varint::get_varint(r)?,
                reason: get_string(r)?,
            },
            T_UNSUBSCRIBE => ControlMessage::Unsubscribe {
                request_id: varint::get_varint(r)?,
            },
            T_SUBSCRIBE_DONE => ControlMessage::SubscribeDone {
                request_id: varint::get_varint(r)?,
                code: varint::get_varint(r)?,
                reason: get_string(r)?,
            },
            T_FETCH => {
                let request_id = varint::get_varint(r)?;
                let fetch = match varint::get_varint(r)? {
                    0x1 => FetchType::StandAlone {
                        track: FullTrackName::decode(r)?,
                        start_group: varint::get_varint(r)?,
                        start_object: varint::get_varint(r)?,
                        end_group: varint::get_varint(r)?,
                    },
                    0x2 => FetchType::RelativeJoining {
                        joining_request_id: varint::get_varint(r)?,
                        joining_start: varint::get_varint(r)?,
                    },
                    0x3 => FetchType::Peer {
                        track: FullTrackName::decode(r)?,
                        start_group: varint::get_varint(r)?,
                        end_group: varint::get_varint(r)?,
                        hop_budget: varint::get_varint(r)?,
                    },
                    _ => return Err(WireError::Invalid { what: "fetch type" }),
                };
                ControlMessage::Fetch { request_id, fetch }
            }
            T_FETCH_OK => ControlMessage::FetchOk {
                request_id: varint::get_varint(r)?,
                largest: (varint::get_varint(r)?, varint::get_varint(r)?),
            },
            T_FETCH_ERROR => ControlMessage::FetchError {
                request_id: varint::get_varint(r)?,
                code: varint::get_varint(r)?,
                reason: get_string(r)?,
            },
            T_FETCH_CANCEL => ControlMessage::FetchCancel {
                request_id: varint::get_varint(r)?,
            },
            T_ANNOUNCE => ControlMessage::Announce {
                request_id: varint::get_varint(r)?,
                namespace: get_namespace(r)?,
            },
            T_ANNOUNCE_OK => ControlMessage::AnnounceOk {
                request_id: varint::get_varint(r)?,
            },
            T_ANNOUNCE_ERROR => ControlMessage::AnnounceError {
                request_id: varint::get_varint(r)?,
                code: varint::get_varint(r)?,
                reason: get_string(r)?,
            },
            T_UNANNOUNCE => ControlMessage::Unannounce {
                namespace: get_namespace(r)?,
            },
            T_MAX_REQUEST_ID => ControlMessage::MaxRequestId {
                max: varint::get_varint(r)?,
            },
            T_GOAWAY => ControlMessage::GoAway {
                uri: get_string(r)?,
            },
            _ => {
                return Err(WireError::Invalid {
                    what: "control message type",
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn track() -> FullTrackName {
        FullTrackName::new(
            vec![vec![0x01], vec![0x00, 0x01], vec![0x00, 0x01]],
            b"\x03www\x07example\x03com\x00".to_vec(),
        )
        .unwrap()
    }

    fn all_messages() -> Vec<ControlMessage> {
        vec![
            ControlMessage::ClientSetup {
                versions: vec![crate::MOQT_VERSION, 0xff00_000b],
                max_request_id: 256,
            },
            ControlMessage::ServerSetup {
                version: crate::MOQT_VERSION,
                max_request_id: 128,
            },
            ControlMessage::Subscribe {
                request_id: 2,
                track_alias: 2,
                track: track(),
                filter: FilterType::LatestObject,
            },
            ControlMessage::Subscribe {
                request_id: 4,
                track_alias: 4,
                track: track(),
                filter: FilterType::AbsoluteStart {
                    group: 9,
                    object: 0,
                },
            },
            ControlMessage::SubscribeOk {
                request_id: 2,
                expires_ms: 0,
                largest: Some((17, 0)),
            },
            ControlMessage::SubscribeOk {
                request_id: 2,
                expires_ms: 60_000,
                largest: None,
            },
            ControlMessage::SubscribeError {
                request_id: 2,
                code: 0x4,
                reason: "no updates available".into(),
            },
            ControlMessage::Unsubscribe { request_id: 2 },
            ControlMessage::SubscribeDone {
                request_id: 2,
                code: 0x0,
                reason: "track ended".into(),
            },
            ControlMessage::Fetch {
                request_id: 6,
                fetch: FetchType::StandAlone {
                    track: track(),
                    start_group: 1,
                    start_object: 0,
                    end_group: 5,
                },
            },
            ControlMessage::Fetch {
                request_id: 8,
                fetch: FetchType::RelativeJoining {
                    joining_request_id: 2,
                    joining_start: 1,
                },
            },
            ControlMessage::Fetch {
                request_id: 10,
                fetch: FetchType::Peer {
                    track: track(),
                    start_group: 0,
                    end_group: 5,
                    hop_budget: 3,
                },
            },
            ControlMessage::FetchOk {
                request_id: 6,
                largest: (17, 0),
            },
            ControlMessage::FetchError {
                request_id: 6,
                code: 0x5,
                reason: "no such track".into(),
            },
            ControlMessage::FetchCancel { request_id: 6 },
            ControlMessage::Announce {
                request_id: 10,
                namespace: vec![vec![1], vec![2, 3]],
            },
            ControlMessage::AnnounceOk { request_id: 10 },
            ControlMessage::AnnounceError {
                request_id: 10,
                code: 1,
                reason: "not authorized".into(),
            },
            ControlMessage::Unannounce {
                namespace: vec![vec![1]],
            },
            ControlMessage::MaxRequestId { max: 1024 },
            ControlMessage::GoAway { uri: "".into() },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for m in all_messages() {
            let enc = m.encode();
            let (dec, used) = ControlMessage::decode(&enc).unwrap().unwrap();
            assert_eq!(dec, m);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn streamed_messages_parse_sequentially() {
        let msgs = all_messages();
        let mut buf = Vec::new();
        for m in &msgs {
            buf.extend_from_slice(&m.encode());
        }
        let mut off = 0;
        let mut out = Vec::new();
        while off < buf.len() {
            let (m, used) = ControlMessage::decode(&buf[off..]).unwrap().unwrap();
            out.push(m);
            off += used;
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn partial_message_needs_more_bytes() {
        let enc = ControlMessage::MaxRequestId { max: 100_000 }.encode();
        for cut in 0..enc.len() {
            assert!(matches!(ControlMessage::decode(&enc[..cut]), Ok(None)));
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut enc = ControlMessage::MaxRequestId { max: 5 }.encode();
        // Inflate the declared length.
        enc[1] += 1;
        enc.push(0);
        assert!(ControlMessage::decode(&enc).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        let mut w = Writer::new();
        varint::put_varint(&mut w, 0x3A);
        varint::put_varint(&mut w, 0);
        assert!(ControlMessage::decode(&w.into_vec()).is_err());
    }

    #[test]
    fn giant_length_rejected() {
        let mut w = Writer::new();
        varint::put_varint(&mut w, T_GOAWAY);
        varint::put_varint(&mut w, 1 << 30);
        assert!(ControlMessage::decode(&w.into_vec()).is_err());
    }

    proptest! {
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = ControlMessage::decode(&bytes);
        }

        // The framing contract the session's control-buffer drain loop
        // relies on: a successful decode never claims more bytes than the
        // buffer holds (an over-read would desynchronize every later
        // message), and never claims zero (a zero-read would spin the
        // drain loop forever).
        #[test]
        fn prop_decode_never_over_reads(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            if let Ok(Some((_, used))) = ControlMessage::decode(&bytes) {
                prop_assert!(used <= bytes.len());
                prop_assert!(used > 0);
            }
        }

        // Re-decoding an encoded message from a buffer with trailing
        // garbage must consume exactly the encoding — the next message's
        // bytes are not this message's to eat.
        #[test]
        fn prop_decode_consumes_exactly_one_frame(
            request_id in any::<u32>(),
            trailing in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let msg = ControlMessage::MaxRequestId { max: request_id as u64 };
            let mut buf = msg.encode();
            let frame_len = buf.len();
            buf.extend_from_slice(&trailing);
            let (decoded, used) = ControlMessage::decode(&buf).unwrap().unwrap();
            prop_assert_eq!(used, frame_len);
            prop_assert_eq!(decoded, msg);
        }
    }
}
