//! Relay core: subscription aggregation and object caching.
//!
//! Paper §3: "Relays are MoQT endpoints that do not publish or consume
//! media but forward and route objects from publishers to subscribers.
//! Relays can aggregate subscriptions of multiple subscribers to a single
//! upstream subscription and cache objects without accessing the object
//! payload."
//!
//! [`RelayCore`] is the pure logic of such a relay: it maps downstream
//! subscriptions onto (at most) one upstream subscription per track, caches
//! objects by `(track, group, object)` identity, and computes fan-out
//! lists. It never parses payloads — there is no DNS dependency in this
//! crate at all, which *proves* payload agnosticism at the type level.
//! The surrounding node (in `moqdns-core`) owns the actual sessions and
//! executes the actions this core emits.

use crate::data::Object;
use crate::track::FullTrackName;
use moqdns_wire::Payload;
use std::collections::{BTreeMap, HashMap};

/// Identifies one downstream session at the owning node.
pub type SessionKey = u64;

/// What the owning node must do after feeding the core an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayAction {
    /// Open (or reuse) the upstream session and subscribe to `track`;
    /// associate the upstream subscription with `track`.
    SubscribeUpstream {
        /// Track to subscribe to upstream.
        track: FullTrackName,
    },
    /// Accept the downstream subscription with our current largest version.
    AcceptDownstream {
        /// Downstream session.
        session: SessionKey,
        /// Downstream request id.
        request_id: u64,
        /// Largest cached (group, object), if any.
        largest: Option<(u64, u64)>,
    },
    /// Forward an object to a downstream subscriber.
    Forward {
        /// Downstream session.
        session: SessionKey,
        /// Downstream request id.
        request_id: u64,
        /// The object (payload untouched).
        object: Object,
    },
    /// Answer a downstream fetch from cache.
    ServeFetch {
        /// Downstream session.
        session: SessionKey,
        /// Downstream fetch request id.
        request_id: u64,
        /// Largest cached (group, object).
        largest: (u64, u64),
        /// Cached objects in range.
        objects: Vec<Object>,
    },
    /// Cache miss: the node must fetch upstream and then call
    /// [`RelayCore::on_upstream_fetch_result`].
    FetchUpstream {
        /// Track to fetch.
        track: FullTrackName,
        /// Downstream session waiting.
        session: SessionKey,
        /// Downstream fetch request id waiting.
        request_id: u64,
        /// Start group requested.
        start_group: u64,
        /// End group requested (inclusive).
        end_group: u64,
    },
    /// No downstream subscribers remain: drop the upstream subscription.
    UnsubscribeUpstream {
        /// Track to drop.
        track: FullTrackName,
    },
}

/// Per-track relay state.
#[derive(Debug, Default)]
struct TrackState {
    /// Downstream subscribers: (session, request_id).
    subscribers: Vec<(SessionKey, u64)>,
    /// Whether an upstream subscription exists (or is being set up).
    upstream_active: bool,
    /// Object cache: (group, object) -> payload handle. BTreeMap gives
    /// range queries for fetches; storing [`Payload`] means caching an
    /// object shares the publisher's bytes instead of copying them.
    cache: BTreeMap<(u64, u64), Payload>,
}

impl TrackState {
    fn largest(&self) -> Option<(u64, u64)> {
        self.cache.keys().next_back().copied()
    }
}

/// Counters for relay effectiveness (ablation A3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Downstream subscription requests seen.
    pub downstream_subscribes: u64,
    /// Upstream subscriptions opened.
    pub upstream_subscribes: u64,
    /// Objects forwarded downstream.
    pub objects_forwarded: u64,
    /// Fetches served from cache.
    pub fetch_cache_hits: u64,
    /// Fetches requiring an upstream fetch.
    pub fetch_cache_misses: u64,
}

/// The relay's track/subscription/cache bookkeeping.
#[derive(Debug, Default)]
pub struct RelayCore {
    tracks: HashMap<FullTrackName, TrackState>,
    /// Cap on cached objects per track (oldest groups evicted first).
    cache_per_track: usize,
    stats: RelayStats,
}

impl RelayCore {
    /// Creates a relay core caching up to `cache_per_track` objects per
    /// track (0 = unlimited).
    pub fn new(cache_per_track: usize) -> RelayCore {
        RelayCore {
            tracks: HashMap::new(),
            cache_per_track,
            stats: RelayStats::default(),
        }
    }

    /// Relay effectiveness counters.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// Number of tracks with any state.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Total downstream subscriptions across tracks.
    pub fn subscriber_count(&self) -> usize {
        self.tracks.values().map(|t| t.subscribers.len()).sum()
    }

    /// Upstream aggregation factor: downstream subs per upstream sub
    /// (the relay's whole point — N downstream cost 1 upstream).
    pub fn aggregation_factor(&self) -> f64 {
        let up = self.tracks.values().filter(|t| t.upstream_active).count();
        if up == 0 {
            0.0
        } else {
            self.subscriber_count() as f64 / up as f64
        }
    }

    /// A downstream session subscribed to `track`.
    pub fn on_downstream_subscribe(
        &mut self,
        session: SessionKey,
        request_id: u64,
        track: FullTrackName,
    ) -> Vec<RelayAction> {
        self.stats.downstream_subscribes += 1;
        let st = self.tracks.entry(track.clone()).or_default();
        st.subscribers.push((session, request_id));
        let mut actions = vec![RelayAction::AcceptDownstream {
            session,
            request_id,
            largest: st.largest(),
        }];
        if !st.upstream_active {
            st.upstream_active = true;
            self.stats.upstream_subscribes += 1;
            actions.insert(0, RelayAction::SubscribeUpstream { track });
        }
        actions
    }

    /// A downstream session unsubscribed.
    pub fn on_downstream_unsubscribe(
        &mut self,
        session: SessionKey,
        request_id: u64,
    ) -> Vec<RelayAction> {
        let mut actions = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            st.subscribers
                .retain(|&(s, r)| !(s == session && r == request_id));
            if st.subscribers.is_empty() && st.upstream_active {
                st.upstream_active = false;
                actions.push(RelayAction::UnsubscribeUpstream {
                    track: track.clone(),
                });
            }
        }
        actions
    }

    /// A whole downstream session died: drop all its subscriptions.
    pub fn on_session_closed(&mut self, session: SessionKey) -> Vec<RelayAction> {
        let mut actions = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            st.subscribers.retain(|&(s, _)| s != session);
            if st.subscribers.is_empty() && st.upstream_active {
                st.upstream_active = false;
                actions.push(RelayAction::UnsubscribeUpstream {
                    track: track.clone(),
                });
            }
        }
        actions
    }

    /// An object arrived from upstream on `track`: cache + fan out.
    /// The payload is moved through untouched, and *shared*: caching and
    /// every per-subscriber [`RelayAction::Forward`] clone the payload
    /// handle (a refcount bump), so publish cost is O(1) in subscriber
    /// count for payload bytes copied.
    pub fn on_upstream_object(
        &mut self,
        track: &FullTrackName,
        object: Object,
    ) -> Vec<RelayAction> {
        let Some(st) = self.tracks.get_mut(track) else {
            return Vec::new();
        };
        st.cache
            .insert((object.group_id, object.object_id), object.payload.clone());
        if self.cache_per_track > 0 {
            while st.cache.len() > self.cache_per_track {
                let oldest = *st.cache.keys().next().unwrap();
                st.cache.remove(&oldest);
            }
        }
        let mut actions = Vec::with_capacity(st.subscribers.len());
        for &(session, request_id) in &st.subscribers {
            self.stats.objects_forwarded += 1;
            actions.push(RelayAction::Forward {
                session,
                request_id,
                object: object.clone(),
            });
        }
        actions
    }

    /// A downstream fetch for groups `[start_group, end_group]` of `track`.
    /// Served from cache when the range is present; otherwise escalated.
    pub fn on_downstream_fetch(
        &mut self,
        session: SessionKey,
        request_id: u64,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
    ) -> Vec<RelayAction> {
        let st = self.tracks.entry(track.clone()).or_default();
        let objects: Vec<Object> = st
            .cache
            .range((start_group, 0)..=(end_group, u64::MAX))
            .map(|(&(g, o), payload)| Object {
                group_id: g,
                object_id: o,
                payload: payload.clone(),
            })
            .collect();
        if let (Some(largest), false) = (st.largest(), objects.is_empty()) {
            self.stats.fetch_cache_hits += 1;
            vec![RelayAction::ServeFetch {
                session,
                request_id,
                largest,
                objects,
            }]
        } else {
            self.stats.fetch_cache_misses += 1;
            vec![RelayAction::FetchUpstream {
                track,
                session,
                request_id,
                start_group,
                end_group,
            }]
        }
    }

    /// The node completed an upstream fetch triggered by
    /// [`RelayAction::FetchUpstream`]: cache the objects and serve the
    /// waiting downstream fetch.
    pub fn on_upstream_fetch_result(
        &mut self,
        track: &FullTrackName,
        session: SessionKey,
        request_id: u64,
        objects: Vec<Object>,
    ) -> Vec<RelayAction> {
        let st = self.tracks.entry(track.clone()).or_default();
        for o in &objects {
            st.cache
                .insert((o.group_id, o.object_id), o.payload.clone());
        }
        let largest = st.largest().unwrap_or((0, 0));
        vec![RelayAction::ServeFetch {
            session,
            request_id,
            largest,
            objects,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track(n: u8) -> FullTrackName {
        FullTrackName::new(vec![vec![n]], vec![n, n]).unwrap()
    }

    fn obj(group: u64, payload: &[u8]) -> Object {
        Object {
            group_id: group,
            object_id: 0,
            payload: payload.into(),
        }
    }

    #[test]
    fn first_subscriber_triggers_upstream() {
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_subscribe(1, 2, track(1));
        assert_eq!(a.len(), 2);
        assert!(matches!(a[0], RelayAction::SubscribeUpstream { .. }));
        assert!(matches!(
            a[1],
            RelayAction::AcceptDownstream { largest: None, .. }
        ));
    }

    #[test]
    fn aggregation_single_upstream_for_many_downstream() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        let a2 = r.on_downstream_subscribe(2, 2, track(1));
        let a3 = r.on_downstream_subscribe(3, 4, track(1));
        // Only accepts; no further upstream subscribes.
        assert!(a2
            .iter()
            .all(|a| !matches!(a, RelayAction::SubscribeUpstream { .. })));
        assert!(a3
            .iter()
            .all(|a| !matches!(a, RelayAction::SubscribeUpstream { .. })));
        assert_eq!(r.stats().upstream_subscribes, 1);
        assert_eq!(r.stats().downstream_subscribes, 3);
        assert!((r.aggregation_factor() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn objects_fan_out_to_all_subscribers() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_subscribe(2, 2, track(1));
        let acts = r.on_upstream_object(&track(1), obj(7, b"payload"));
        assert_eq!(acts.len(), 2);
        for a in &acts {
            match a {
                RelayAction::Forward { object, .. } => {
                    assert_eq!(object.group_id, 7);
                    assert_eq!(object.payload, b"payload");
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(r.stats().objects_forwarded, 2);
    }

    #[test]
    fn late_subscriber_sees_cached_largest() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_upstream_object(&track(1), obj(9, b"v9"));
        let a = r.on_downstream_subscribe(2, 2, track(1));
        assert!(a.iter().any(|a| matches!(
            a,
            RelayAction::AcceptDownstream {
                largest: Some((9, 0)),
                ..
            }
        )));
    }

    #[test]
    fn fetch_served_from_cache() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_upstream_object(&track(1), obj(5, b"v5"));
        let a = r.on_downstream_fetch(2, 8, track(1), 5, 5);
        match &a[0] {
            RelayAction::ServeFetch {
                objects, largest, ..
            } => {
                assert_eq!(objects.len(), 1);
                assert_eq!(*largest, (5, 0));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.stats().fetch_cache_hits, 1);
    }

    #[test]
    fn fetch_miss_escalates_upstream_then_serves() {
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_fetch(2, 8, track(1), 5, 5);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
        assert_eq!(r.stats().fetch_cache_misses, 1);
        let a = r.on_upstream_fetch_result(&track(1), 2, 8, vec![obj(5, b"v5")]);
        match &a[0] {
            RelayAction::ServeFetch { objects, .. } => assert_eq!(objects.len(), 1),
            other => panic!("{other:?}"),
        }
        // Now cached for the next fetch.
        let a = r.on_downstream_fetch(3, 2, track(1), 5, 5);
        assert!(matches!(a[0], RelayAction::ServeFetch { .. }));
    }

    #[test]
    fn last_unsubscribe_drops_upstream() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_subscribe(2, 4, track(1));
        assert!(r.on_downstream_unsubscribe(1, 2).is_empty());
        let a = r.on_downstream_unsubscribe(2, 4);
        assert!(matches!(a[0], RelayAction::UnsubscribeUpstream { .. }));
    }

    #[test]
    fn session_close_drops_all_its_subscriptions() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_subscribe(1, 4, track(2));
        r.on_downstream_subscribe(2, 2, track(1));
        let a = r.on_session_closed(1);
        // track(2) loses its last subscriber; track(1) still has session 2.
        assert_eq!(a.len(), 1);
        assert!(matches!(
            &a[0],
            RelayAction::UnsubscribeUpstream { track: t } if *t == track(2)
        ));
        assert_eq!(r.subscriber_count(), 1);
    }

    #[test]
    fn cache_eviction_keeps_newest_groups() {
        let mut r = RelayCore::new(2);
        r.on_downstream_subscribe(1, 2, track(1));
        for g in 1..=5 {
            r.on_upstream_object(&track(1), obj(g, b"x"));
        }
        // Only groups 4 and 5 remain.
        let a = r.on_downstream_fetch(2, 8, track(1), 4, 5);
        match &a[0] {
            RelayAction::ServeFetch { objects, .. } => {
                assert_eq!(
                    objects.iter().map(|o| o.group_id).collect::<Vec<_>>(),
                    vec![4, 5]
                );
            }
            other => panic!("{other:?}"),
        }
        let a = r.on_downstream_fetch(2, 10, track(1), 1, 3);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
    }

    #[test]
    fn payload_is_passed_through_byte_identical() {
        // The relay never interprets payloads: any bytes survive intact.
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        let weird: Vec<u8> = (0..=255).collect();
        let acts = r.on_upstream_object(&track(1), obj(1, &weird));
        match &acts[0] {
            RelayAction::Forward { object, .. } => assert_eq!(object.payload, weird),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fanout_shares_payload_storage() {
        // Zero-copy invariant: every Forward action and the cache entry
        // reference the published object's backing bytes — no
        // per-subscriber payload copies.
        let mut r = RelayCore::new(0);
        for s in 0..32 {
            r.on_downstream_subscribe(s, 2, track(1));
        }
        let object = obj(3, &[0x5A; 600]);
        let original = object.payload.clone();
        let acts = r.on_upstream_object(&track(1), object);
        assert_eq!(acts.len(), 32);
        for a in &acts {
            match a {
                RelayAction::Forward { object, .. } => {
                    assert!(object.payload.shares_storage_with(&original));
                }
                other => panic!("{other:?}"),
            }
        }
        // Cached fetch responses share it too.
        let a = r.on_downstream_fetch(99, 1, track(1), 3, 3);
        match &a[0] {
            RelayAction::ServeFetch { objects, .. } => {
                assert!(objects[0].payload.shares_storage_with(&original));
            }
            other => panic!("{other:?}"),
        }
    }
}
