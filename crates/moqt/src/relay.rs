//! Relay core: subscription aggregation, object caching, and
//! topology-aware upstream routing.
//!
//! Paper §3: "Relays are MoQT endpoints that do not publish or consume
//! media but forward and route objects from publishers to subscribers.
//! Relays can aggregate subscriptions of multiple subscribers to a single
//! upstream subscription and cache objects without accessing the object
//! payload."
//!
//! [`RelayCore`] is the pure logic of such a relay: it maps downstream
//! subscriptions onto (at most) one upstream subscription per track,
//! caches objects by `(track, group, object)` identity, and computes
//! fan-out lists. It never parses payloads — there is no DNS dependency in
//! this crate at all, which *proves* payload agnosticism at the type
//! level. The surrounding node (in `moqdns-core`) owns the actual sessions
//! and executes the actions this core emits.
//!
//! ## Routing
//!
//! The paper's §5.3 scenarios assume distribution paths of several relays
//! ("involving 5 MoQ relays on average"), so a relay is not limited to one
//! upstream parent: it holds an ordered set of *uplinks* and a
//! [`RoutePolicy`] that picks, per track, which uplink serves the upstream
//! subscription. The policy only ever sees the track identity and the
//! current uplink health — never payloads — so routing stays
//! payload-agnostic too. Three policies cover the §5.3 topologies:
//!
//! * [`StaticParent`] — the classic single-parent chain (uplink 0 always);
//! * [`HashShard`] — deterministic track-hash sharding across K parents,
//!   spreading distinct tracks over a multi-relay mesh;
//! * [`Failover`] — primary-first with fail-over to the next healthy
//!   uplink when the upstream connection closes.
//!
//! Every [`RelayAction::SubscribeUpstream`] carries the chosen
//! [`UplinkId`]; when an uplink dies the owning node reports it via
//! [`RelayCore::on_uplink_closed`] and executes the re-subscribe actions
//! the core emits (the re-route is where fail-over actually happens).
//!
//! ## Federation
//!
//! Parents are not the only upstream direction: a core relay may join a
//! **cross-region federation** ([`RelayCore::federate`]) in which every
//! core is the shard-home of part of the track space and the cores serve
//! *each other* over dedicated **peer links** ([`LinkClass`],
//! [`FederationConfig`]). A cache miss for a track homed on a peer core
//! emits [`RelayAction::FetchPeer`] / [`RelayAction::SubscribePeer`]
//! toward that peer instead of escalating to the origin; only the home
//! core of a track ever contacts the origin for it. Peer fetches carry a
//! **hop budget** so rerouted requests can never cycle, and peer traffic
//! is tallied in [`RelayStats::peer_fetches`],
//! [`RelayStats::peer_objects`], and [`RelayStats::origin_offload`].

use crate::data::Object;
use crate::track::FullTrackName;
use moqdns_wire::Payload;
use std::collections::BTreeMap;

/// Identifies one downstream session at the owning node.
pub type SessionKey = u64;

/// Index of one upstream link in the relay's ordered link set.
///
/// Links come in two classes (see [`LinkClass`]): indices
/// `0..n_parents` are **parent** uplinks (routed by the [`RoutePolicy`]),
/// and indices `n_parents..` are **peer** links toward federated sibling
/// cores (routed by the [`FederationConfig`] shard map).
pub type LinkId = usize;

/// Backwards-compatible alias from the pre-federation, parents-only era.
pub type UplinkId = LinkId;

/// The class of one upstream link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// A parent uplink toward the origin side of the hierarchy.
    Parent,
    /// A peer link toward a federated sibling core.
    Peer,
}

/// Cross-region core federation: this relay is one shard-home among
/// `shards` peered cores. Tracks whose [`track_hash`] shard differs from
/// `my_shard` are resolved over the **peer link** toward their home core
/// (subscribe and fetch alike) instead of escalating to the origin; only
/// the home core of a track ever talks to the origin for it.
///
/// Peer links are ordered by shard index with `my_shard` omitted, so the
/// peer link for shard `s` is `n_parents + s - (s > my_shard)`.
#[derive(Debug, Clone, Copy)]
pub struct FederationConfig {
    /// This core's own shard index in `0..shards`.
    pub my_shard: usize,
    /// Total number of federated cores (= shards).
    pub shards: usize,
    /// Initial hop budget stamped on outgoing peer fetches. Each
    /// core-to-core re-forward decrements it; a fetch arriving with
    /// budget 0 that would need another peer hop is rejected instead,
    /// which makes federation routing loop-free by construction.
    pub hop_budget: u64,
}

impl FederationConfig {
    /// Federation among `shards` cores as shard `my_shard`, with the
    /// default hop budget of `shards` (any loop-free path is shorter).
    pub fn new(my_shard: usize, shards: usize) -> FederationConfig {
        assert!(shards >= 1 && my_shard < shards, "shard out of range");
        FederationConfig {
            my_shard,
            shards,
            hop_budget: shards as u64,
        }
    }

    /// The home shard of `track` (the same arithmetic [`HashShard`] uses
    /// at the edges, so edge sharding and core federation agree).
    pub fn home_shard(&self, track: &FullTrackName) -> usize {
        (track_hash(track) % self.shards as u64) as usize
    }
}

/// Liveness of each uplink, as reported by the owning node.
///
/// The core marks an uplink down in [`RelayCore::on_uplink_closed`] and up
/// again in [`RelayCore::on_uplink_up`]; policies consult this view when
/// choosing where a track's upstream subscription should live.
#[derive(Debug, Clone)]
pub struct UplinkHealth {
    up: Vec<bool>,
}

impl UplinkHealth {
    /// All `n` uplinks start healthy.
    pub fn new(n: usize) -> UplinkHealth {
        UplinkHealth { up: vec![true; n] }
    }

    /// Number of configured uplinks.
    pub fn len(&self) -> usize {
        self.up.len()
    }

    /// True when no uplinks are configured.
    pub fn is_empty(&self) -> bool {
        self.up.is_empty()
    }

    /// Whether uplink `i` is currently believed healthy.
    pub fn is_up(&self, i: UplinkId) -> bool {
        self.up.get(i).copied().unwrap_or(false)
    }

    fn set(&mut self, i: UplinkId, up: bool) {
        if let Some(slot) = self.up.get_mut(i) {
            *slot = up;
        }
    }

    /// First healthy uplink in index order, if any.
    pub fn first_up(&self) -> Option<UplinkId> {
        self.up.iter().position(|&u| u)
    }
}

/// Per-track upstream selection. Implementations must be deterministic:
/// the same track and the same health view always yield the same uplink,
/// so a simulation replays identically from its seed. `Send` because a
/// relay node (and thus its policy) may live on a parallel-sim worker
/// thread.
pub trait RoutePolicy: std::fmt::Debug + Send {
    /// Chooses the uplink that should carry `track`'s upstream
    /// subscription. `None` means no uplink can serve it (e.g. zero
    /// uplinks configured).
    fn route(&self, track: &FullTrackName, health: &UplinkHealth) -> Option<UplinkId>;

    /// Short label for stats tables.
    fn name(&self) -> &'static str;
}

/// The classic single-parent chain: every track routes to uplink 0, even
/// when it is marked down (routing to a down uplink makes the owning node
/// redial it — the reconnect semantics a single-parent relay needs).
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticParent;

impl RoutePolicy for StaticParent {
    fn route(&self, _track: &FullTrackName, health: &UplinkHealth) -> Option<UplinkId> {
        (!health.is_empty()).then_some(0)
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Deterministic track-hash sharding across K uplinks: a track's home
/// shard is `track_hash % K`; when the home shard is down the policy walks
/// the ring to the next healthy uplink, and when everything is down it
/// returns the home shard (forcing a redial there).
#[derive(Debug, Default, Clone, Copy)]
pub struct HashShard;

impl RoutePolicy for HashShard {
    fn route(&self, track: &FullTrackName, health: &UplinkHealth) -> Option<UplinkId> {
        let k = health.len();
        if k == 0 {
            return None;
        }
        let home = (track_hash(track) % k as u64) as usize;
        for step in 0..k {
            let cand = (home + step) % k;
            if health.is_up(cand) {
                return Some(cand);
            }
        }
        Some(home)
    }

    fn name(&self) -> &'static str {
        "hash-shard"
    }
}

/// Primary-first with fail-over: tracks ride the lowest-index healthy
/// uplink; when the primary's connection closes everything re-routes to
/// the next healthy one. With all uplinks down it falls back to uplink 0.
#[derive(Debug, Default, Clone, Copy)]
pub struct Failover;

impl RoutePolicy for Failover {
    fn route(&self, _track: &FullTrackName, health: &UplinkHealth) -> Option<UplinkId> {
        if health.is_empty() {
            return None;
        }
        Some(health.first_up().unwrap_or(0))
    }

    fn name(&self) -> &'static str {
        "failover"
    }
}

/// Stable 64-bit FNV-1a hash of a track identity (namespace tuple +
/// name, length-delimited so distinct tuples never collide by
/// concatenation). Independent of process, seed, and run — the property
/// the sharding determinism tests pin down.
pub fn track_hash(track: &FullTrackName) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    fn eat(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    let mut h = OFFSET;
    for part in &track.namespace {
        h = eat(h, &(part.len() as u64).to_le_bytes());
        h = eat(h, part);
    }
    h = eat(h, &(track.name.len() as u64).to_le_bytes());
    eat(h, &track.name)
}

/// What the owning node must do after feeding the core an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayAction {
    /// Open (or reuse) the upstream session on `uplink` and subscribe to
    /// `track`; associate the upstream subscription with `track`.
    SubscribeUpstream {
        /// Track to subscribe to upstream.
        track: FullTrackName,
        /// Which uplink the route policy chose.
        uplink: UplinkId,
    },
    /// Accept the downstream subscription with our current largest version.
    AcceptDownstream {
        /// Downstream session.
        session: SessionKey,
        /// Downstream request id.
        request_id: u64,
        /// Largest cached (group, object), if any.
        largest: Option<(u64, u64)>,
    },
    /// Forward an object to a downstream subscriber.
    Forward {
        /// Downstream session.
        session: SessionKey,
        /// Downstream request id.
        request_id: u64,
        /// The object (payload untouched).
        object: Object,
    },
    /// Answer a downstream fetch from cache.
    ServeFetch {
        /// Downstream session.
        session: SessionKey,
        /// Downstream fetch request id.
        request_id: u64,
        /// Largest cached (group, object).
        largest: (u64, u64),
        /// Cached objects in range.
        objects: Vec<Object>,
    },
    /// Cache miss with no fetch already in flight: the node must fetch on
    /// `uplink` and then call [`RelayCore::on_upstream_fetch_result`] (or
    /// [`RelayCore::on_upstream_fetch_failed`]). The waiting downstream
    /// fetches live in the core's pending-fetch table, not in the action:
    /// any number of concurrent same-track fetches collapse into one
    /// upstream fetch whose result fans out to every waiter.
    FetchUpstream {
        /// Track to fetch.
        track: FullTrackName,
        /// Which uplink to fetch from.
        uplink: UplinkId,
        /// Start group requested.
        start_group: u64,
        /// End group requested (inclusive).
        end_group: u64,
    },
    /// Reject a downstream fetch (upstream unavailable or fetch failed).
    RejectFetch {
        /// Downstream session.
        session: SessionKey,
        /// Downstream fetch request id.
        request_id: u64,
    },
    /// Evict an abusive downstream session: close its connection. Emitted
    /// when a session exceeds [`RelayLimits::evict_after_throttles`]; the
    /// node also follows up with [`RelayCore::on_session_closed`] when
    /// the close lands.
    CloseSession {
        /// Downstream session to evict.
        session: SessionKey,
    },
    /// No downstream subscribers remain: drop the upstream subscription.
    UnsubscribeUpstream {
        /// Track to drop.
        track: FullTrackName,
        /// Link (parent or peer) that carried the subscription.
        uplink: LinkId,
    },
    /// Federation: open (or reuse) the session on peer link `link` and
    /// subscribe to `track` there — the track is homed on that peer core,
    /// so the subscription must not ride a parent uplink to the origin.
    SubscribePeer {
        /// Track to subscribe to at the peer core.
        track: FullTrackName,
        /// Which peer link the federation map chose.
        link: LinkId,
    },
    /// Federation: cache miss for a track homed on a peer core — fetch it
    /// over `link` instead of escalating to the origin. Carries the
    /// remaining hop budget; the waiting downstream fetches live in the
    /// pending-fetch table exactly like [`RelayAction::FetchUpstream`].
    FetchPeer {
        /// Track to fetch.
        track: FullTrackName,
        /// Which peer link to fetch over.
        link: LinkId,
        /// Start group requested.
        start_group: u64,
        /// End group requested (inclusive).
        end_group: u64,
        /// Core-to-core forwards the fetch may still take.
        hop_budget: u64,
    },
}

/// Per-track relay state.
#[derive(Debug, Default)]
struct TrackState {
    /// Downstream subscribers: (session, request_id).
    subscribers: Vec<(SessionKey, u64)>,
    /// Uplink carrying the upstream subscription, when one exists (or is
    /// being set up).
    upstream: Option<UplinkId>,
    /// Object cache: (group, object) -> payload handle. BTreeMap gives
    /// range queries for fetches; storing [`Payload`] means caching an
    /// object shares the publisher's bytes instead of copying them.
    cache: BTreeMap<(u64, u64), Payload>,
}

impl TrackState {
    fn largest(&self) -> Option<(u64, u64)> {
        self.cache.keys().next_back().copied()
    }
}

/// One in-flight upstream fetch and the downstream fetches blocked on it.
///
/// The §3 stampede problem: when N downstreams issue a joining fetch for
/// the same (cold) track at once, a naive relay escalates N upstream
/// fetches — `fetch_cache_misses` multiplies up the tree exactly the way
/// aggregation is supposed to prevent. The pending-fetch table collapses
/// them: the first miss opens the upstream fetch, every later one joins
/// the waiter list, and the single result fans out to all of them.
#[derive(Debug)]
struct PendingFetch {
    /// Link carrying the in-flight upstream fetch(es).
    uplink: LinkId,
    /// Start group of the in-flight request (union of all issued).
    start_group: u64,
    /// End group (inclusive) of the in-flight request (union).
    end_group: u64,
    /// Upstream fetches currently in flight for this track. Usually 1;
    /// becomes 2 when a wider request arrives while a narrower fetch is
    /// in flight (the widened union is re-issued). Results serve only
    /// the waiters they cover until the last fetch lands.
    outstanding: u32,
    /// Downstream fetches blocked on a result.
    waiters: Vec<Waiter>,
}

/// One downstream fetch blocked on an in-flight upstream fetch. The
/// requested range is kept per waiter so the fan-out serves each waiter
/// only the groups it asked for, exactly like the cache-hit path.
#[derive(Debug)]
struct Waiter {
    session: SessionKey,
    request_id: u64,
    start_group: u64,
    end_group: u64,
}

/// Counters for relay effectiveness (ablation A3, §3 aggregation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Downstream subscription requests seen.
    pub downstream_subscribes: u64,
    /// Upstream subscriptions opened (including re-subscribes after an
    /// uplink loss).
    pub upstream_subscribes: u64,
    /// Objects forwarded downstream.
    pub objects_forwarded: u64,
    /// Fetches served from cache.
    pub fetch_cache_hits: u64,
    /// Fetches requiring upstream data (whether they opened a new upstream
    /// fetch or joined one already in flight).
    pub fetch_cache_misses: u64,
    /// Cache-missing fetches absorbed by an in-flight upstream fetch for
    /// the same track (no extra upstream fetch was opened).
    pub fetch_coalesced: u64,
    /// Upstream fetches actually opened
    /// (`fetch_cache_misses - fetch_coalesced`, plus re-issues after an
    /// uplink died with the fetch in flight).
    pub upstream_fetches: u64,
    /// Downstream fetches answered from an upstream fetch result fanning
    /// out through the waiter list.
    pub fetch_waiters_served: u64,
    /// Tracks moved to a *different* uplink after their uplink closed.
    pub reroutes: u64,
    /// Tracks moved back onto a recovered uplink (its hash shard or
    /// failover priority reclaimed) by [`RelayCore::on_uplink_up`].
    pub rebalances: u64,
    /// Upstream fetches that rode a **peer link** to a federated sibling
    /// core instead of a parent uplink (subset of `upstream_fetches`).
    pub peer_fetches: u64,
    /// Objects that arrived over a peer link (federated distribution:
    /// region-to-region traffic that never touched the origin).
    pub peer_objects: u64,
    /// Upstream actions (subscribes + fetches) the federation map served
    /// over a peer link that a non-federated relay would have escalated
    /// to the origin — the §5.3 origin-offload headline counter.
    pub origin_offload: u64,
    /// Protocol violations observed across this relay's sessions (each
    /// one poisoned the offending session — see
    /// `moqdns_moqt::session::SessionStats`). Folded in by the owning
    /// node; the pure core never sees wire bytes.
    pub violations: u64,
    /// Datagrams dropped by this relay's sessions: malformed bytes or an
    /// unknown track alias. Folded in by the owning node.
    pub dropped_datagrams: u64,
    /// Downstream fetches rejected because the session was over its
    /// [`RelayLimits::max_outstanding_fetches_per_session`] budget — the
    /// fetch-bomb backpressure counter.
    pub throttled_fetches: u64,
    /// Sessions the relay decided to evict: fetch-bombers past
    /// [`RelayLimits::evict_after_throttles`] (counted here) plus
    /// slow-loris sessions the node closed over backlog (reported via
    /// [`RelayCore::note_session_evicted`]).
    pub evicted_sessions: u64,
    /// Recovery-probe redial attempts against uplinks believed down
    /// (each abandons any stalled previous dial and starts a fresh
    /// handshake). Counted by the owning node's link layer; chaos drills
    /// gate on this staying bounded instead of eyeballing logs.
    pub redials: u64,
    /// Dial attempts (initial or redial) that could not even create a
    /// connection — the remote address was unreachable at the endpoint
    /// layer. Counted by the owning node's link layer.
    pub failed_dials: u64,
}

/// Per-session abuse limits a relay enforces on its downstreams.
///
/// The defaults are deliberately permissive — far above anything the
/// honest scenarios produce — so enabling enforcement changes no honest
/// baseline; adversarial worlds tighten them explicitly.
#[derive(Debug, Clone, Copy)]
pub struct RelayLimits {
    /// Cache-missing fetches one downstream session may have parked in
    /// the pending-fetch table at once. Requests past the cap are
    /// rejected ([`RelayStats::throttled_fetches`]).
    pub max_outstanding_fetches_per_session: u32,
    /// Throttled fetches after which the session is evicted outright
    /// ([`RelayAction::CloseSession`], [`RelayStats::evicted_sessions`]).
    pub evict_after_throttles: u32,
}

impl Default for RelayLimits {
    fn default() -> RelayLimits {
        RelayLimits {
            max_outstanding_fetches_per_session: 1024,
            evict_after_throttles: 4096,
        }
    }
}

/// Per-session fetch accounting against [`RelayLimits`].
#[derive(Debug, Default)]
struct FetchBudget {
    /// Waiters this session currently has parked in the pending table.
    outstanding: u32,
    /// Fetches throttled so far (monotone; triggers eviction at the cap).
    throttles: u32,
}

/// The relay's track/subscription/cache bookkeeping.
#[derive(Debug)]
pub struct RelayCore {
    tracks: BTreeMap<FullTrackName, TrackState>,
    /// In-flight upstream fetches with their blocked downstreams.
    pending: BTreeMap<FullTrackName, PendingFetch>,
    /// Cap on cached objects per track (oldest groups evicted first).
    cache_per_track: usize,
    policy: Box<dyn RoutePolicy>,
    /// Health of the **parent** uplinks (what the route policy sees).
    health: UplinkHealth,
    /// Health of the peer links, in federation shard order (self
    /// omitted). Empty unless [`RelayCore::federate`] was called.
    peers_up: Vec<bool>,
    /// Cross-region federation shard map, when this core participates.
    federation: Option<FederationConfig>,
    /// Per-session fetch budgets against `limits`.
    budgets: BTreeMap<SessionKey, FetchBudget>,
    limits: RelayLimits,
    stats: RelayStats,
}

/// Per-track link choice with the federation map layered over the parent
/// route policy. A free function over disjoint fields so the re-route
/// loops can call it while iterating `tracks` mutably.
///
/// Tracks homed on a *peer* shard ride the peer link to their home core
/// while that link is healthy; when it is down (or no federation is
/// configured) the parent policy decides, which degrades a federated
/// track to the classic origin escalation until the peer recovers.
fn route_link(
    federation: Option<&FederationConfig>,
    peers_up: &[bool],
    policy: &dyn RoutePolicy,
    health: &UplinkHealth,
    track: &FullTrackName,
) -> Option<LinkId> {
    if let Some(fed) = federation {
        let home = fed.home_shard(track);
        if home != fed.my_shard {
            let peer = home - usize::from(home > fed.my_shard);
            if peers_up.get(peer).copied().unwrap_or(false) {
                return Some(health.len() + peer);
            }
        }
    }
    policy.route(track, health)
}

impl RelayCore {
    /// Creates a single-uplink relay core caching up to `cache_per_track`
    /// objects per track (0 = unlimited) — the classic single-parent chain.
    pub fn new(cache_per_track: usize) -> RelayCore {
        RelayCore::with_policy(cache_per_track, 1, Box::new(StaticParent))
    }

    /// Creates a relay core routing across `n_uplinks` upstream parents
    /// according to `policy`.
    pub fn with_policy(
        cache_per_track: usize,
        n_uplinks: usize,
        policy: Box<dyn RoutePolicy>,
    ) -> RelayCore {
        RelayCore {
            tracks: BTreeMap::new(),
            pending: BTreeMap::new(),
            cache_per_track,
            policy,
            health: UplinkHealth::new(n_uplinks),
            peers_up: Vec::new(),
            federation: None,
            budgets: BTreeMap::new(),
            limits: RelayLimits::default(),
            stats: RelayStats::default(),
        }
    }

    /// Replaces the per-session abuse limits (builder style).
    pub fn with_limits(mut self, limits: RelayLimits) -> RelayCore {
        self.limits = limits;
        self
    }

    /// The per-session abuse limits in force.
    pub fn limits(&self) -> RelayLimits {
        self.limits
    }

    /// The owning node evicted a session itself (e.g. a slow-loris
    /// subscriber whose connection backlog crossed the node's bound):
    /// record it in [`RelayStats::evicted_sessions`].
    pub fn note_session_evicted(&mut self) {
        self.stats.evicted_sessions += 1;
    }

    /// Joins a cross-region core federation: adds `fed.shards - 1` peer
    /// links (shard order, self omitted) after the parent uplinks and
    /// activates the shard map of [`FederationConfig`].
    pub fn federate(mut self, fed: FederationConfig) -> RelayCore {
        self.peers_up = vec![true; fed.shards - 1];
        self.federation = Some(fed);
        self
    }

    /// The federation config, when this core is federated.
    pub fn federation(&self) -> Option<&FederationConfig> {
        self.federation.as_ref()
    }

    /// Number of parent uplinks (links `0..n` are parents).
    pub fn parent_count(&self) -> usize {
        self.health.len()
    }

    /// Number of peer links (links `parent_count()..link_count()`).
    pub fn peer_count(&self) -> usize {
        self.peers_up.len()
    }

    /// Total links, parents first then peers.
    pub fn link_count(&self) -> usize {
        self.health.len() + self.peers_up.len()
    }

    /// The class of link `link`.
    pub fn link_class(&self, link: LinkId) -> LinkClass {
        if link < self.health.len() {
            LinkClass::Parent
        } else {
            LinkClass::Peer
        }
    }

    /// Whether link `link` (parent or peer) is currently believed healthy.
    pub fn is_link_up(&self, link: LinkId) -> bool {
        match self.link_class(link) {
            LinkClass::Parent => self.health.is_up(link),
            LinkClass::Peer => self
                .peers_up
                .get(link - self.health.len())
                .copied()
                .unwrap_or(false),
        }
    }

    /// The peer link carrying traffic toward shard `shard`'s home core.
    /// `None` for this core's own shard or without federation.
    pub fn peer_link_for_shard(&self, shard: usize) -> Option<LinkId> {
        let fed = self.federation.as_ref()?;
        if shard == fed.my_shard || shard >= fed.shards {
            return None;
        }
        Some(self.health.len() + shard - usize::from(shard > fed.my_shard))
    }

    /// The shard whose home core sits behind peer link `link` (inverse of
    /// [`RelayCore::peer_link_for_shard`]).
    pub fn shard_for_peer_link(&self, link: LinkId) -> Option<usize> {
        let fed = self.federation.as_ref()?;
        let peer = link.checked_sub(self.health.len())?;
        if peer >= fed.shards - 1 {
            return None;
        }
        Some(peer + usize::from(peer >= fed.my_shard))
    }

    fn set_link_health(&mut self, link: LinkId, up: bool) {
        let parents = self.health.len();
        if link < parents {
            self.health.set(link, up);
        } else if let Some(slot) = self.peers_up.get_mut(link - parents) {
            *slot = up;
        }
    }

    /// The subscribe action for `track` on `link`, typed by link class.
    fn subscribe_action(&self, track: FullTrackName, link: LinkId) -> RelayAction {
        match self.link_class(link) {
            LinkClass::Parent => RelayAction::SubscribeUpstream {
                track,
                uplink: link,
            },
            LinkClass::Peer => RelayAction::SubscribePeer { track, link },
        }
    }

    /// Drops all track, cache, and pending-fetch state and marks every
    /// uplink healthy again, keeping the cumulative counters. Used when
    /// the owning node is revived after a mid-run shutdown: downstream
    /// sessions and upstream connections are gone, so the bookkeeping
    /// must start over.
    pub fn reset(&mut self) {
        self.tracks.clear();
        self.pending.clear();
        self.budgets.clear();
        self.health = UplinkHealth::new(self.health.len());
        self.peers_up = vec![true; self.peers_up.len()];
    }

    /// Number of in-flight upstream fetches (pending-fetch table size).
    pub fn pending_fetch_count(&self) -> usize {
        self.pending.len()
    }

    /// Relay effectiveness counters.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// The route policy's label (for stats tables).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current uplink health view.
    pub fn health(&self) -> &UplinkHealth {
        &self.health
    }

    /// Number of tracks with any state.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Total downstream subscriptions across tracks.
    pub fn subscriber_count(&self) -> usize {
        self.tracks.values().map(|t| t.subscribers.len()).sum()
    }

    /// Number of live upstream subscriptions.
    pub fn upstream_count(&self) -> usize {
        self.tracks
            .values()
            .filter(|t| t.upstream.is_some())
            .count()
    }

    /// Upstream aggregation factor: downstream subs per upstream sub
    /// (the relay's whole point — N downstream cost 1 upstream).
    pub fn aggregation_factor(&self) -> f64 {
        let up = self.upstream_count();
        if up == 0 {
            0.0
        } else {
            self.subscriber_count() as f64 / up as f64
        }
    }

    /// A downstream session subscribed to `track`.
    pub fn on_downstream_subscribe(
        &mut self,
        session: SessionKey,
        request_id: u64,
        track: FullTrackName,
    ) -> Vec<RelayAction> {
        self.stats.downstream_subscribes += 1;
        let st = self.tracks.entry(track.clone()).or_default();
        st.subscribers.push((session, request_id));
        let mut actions = vec![RelayAction::AcceptDownstream {
            session,
            request_id,
            largest: st.largest(),
        }];
        if st.upstream.is_none() {
            if let Some(link) = route_link(
                self.federation.as_ref(),
                &self.peers_up,
                self.policy.as_ref(),
                &self.health,
                &track,
            ) {
                st.upstream = Some(link);
                self.stats.upstream_subscribes += 1;
                if self.link_class(link) == LinkClass::Peer {
                    self.stats.origin_offload += 1;
                }
                actions.insert(0, self.subscribe_action(track, link));
            }
        }
        actions
    }

    /// A downstream session unsubscribed.
    pub fn on_downstream_unsubscribe(
        &mut self,
        session: SessionKey,
        request_id: u64,
    ) -> Vec<RelayAction> {
        let mut actions = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            st.subscribers
                .retain(|&(s, r)| !(s == session && r == request_id));
            if st.subscribers.is_empty() {
                if let Some(uplink) = st.upstream.take() {
                    actions.push(RelayAction::UnsubscribeUpstream {
                        track: track.clone(),
                        uplink,
                    });
                }
            }
        }
        actions
    }

    /// A whole downstream session died: drop all its subscriptions, its
    /// fetch budget, and any waiters it still had parked.
    pub fn on_session_closed(&mut self, session: SessionKey) -> Vec<RelayAction> {
        self.budgets.remove(&session);
        for p in self.pending.values_mut() {
            p.waiters.retain(|w| w.session != session);
        }
        let mut actions = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            st.subscribers.retain(|&(s, _)| s != session);
            if st.subscribers.is_empty() {
                if let Some(uplink) = st.upstream.take() {
                    actions.push(RelayAction::UnsubscribeUpstream {
                        track: track.clone(),
                        uplink,
                    });
                }
            }
        }
        actions
    }

    /// The connection behind link `uplink` (parent *or* peer) closed.
    /// Marks it down and re-routes every track whose upstream
    /// subscription lived there: each gets a fresh subscribe action on
    /// the link the routing now picks (possibly the same one — that makes
    /// the node redial; a track homed on a dead peer degrades to the
    /// parent policy's pick until the peer recovers).
    pub fn on_uplink_closed(&mut self, uplink: LinkId) -> Vec<RelayAction> {
        self.set_link_health(uplink, false);
        let mut actions = Vec::new();
        let mut resubs: Vec<(FullTrackName, LinkId)> = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            if st.upstream != Some(uplink) {
                continue;
            }
            if st.subscribers.is_empty() {
                st.upstream = None;
                continue;
            }
            match route_link(
                self.federation.as_ref(),
                &self.peers_up,
                self.policy.as_ref(),
                &self.health,
                track,
            ) {
                Some(new) => {
                    if new != uplink {
                        self.stats.reroutes += 1;
                    }
                    self.stats.upstream_subscribes += 1;
                    if new >= self.health.len() {
                        self.stats.origin_offload += 1;
                    }
                    st.upstream = Some(new);
                    resubs.push((track.clone(), new));
                }
                None => st.upstream = None,
            }
        }
        for (track, link) in resubs {
            actions.push(self.subscribe_action(track, link));
        }
        // Pending upstream fetches that rode the dead link: re-issue on
        // the link the routing now picks (the waiter list survives), or
        // reject every waiter when no other link can serve the track.
        let stranded: Vec<FullTrackName> = self
            .pending
            .iter()
            .filter(|(_, p)| p.uplink == uplink)
            .map(|(t, _)| t.clone())
            .collect();
        for track in stranded {
            let new = route_link(
                self.federation.as_ref(),
                &self.peers_up,
                self.policy.as_ref(),
                &self.health,
                &track,
            );
            match new {
                Some(new) if new != uplink => {
                    let p = self.pending.get_mut(&track).unwrap();
                    p.uplink = new;
                    // Everything in flight rode the dead link; one fresh
                    // fetch for the whole recorded union replaces it.
                    p.outstanding = 1;
                    let (start_group, end_group) = (p.start_group, p.end_group);
                    self.stats.upstream_fetches += 1;
                    let stamp = self.fresh_peer_budget();
                    actions.push(self.fetch_action(track, new, start_group, end_group, stamp));
                }
                _ => {
                    let p = self.pending.remove(&track).unwrap();
                    for w in p.waiters {
                        self.release_fetch_budget(w.session);
                        actions.push(RelayAction::RejectFetch {
                            session: w.session,
                            request_id: w.request_id,
                        });
                    }
                }
            }
        }
        actions
    }

    /// A connection on link `uplink` (parent *or* peer) is live again:
    /// mark it healthy and *rebalance* — every track whose current link
    /// differs from what the routing now picks moves back (a recovered
    /// uplink reclaims its hash shard; a recovered failover primary
    /// reclaims everything; a recovered peer reclaims the federated
    /// tracks homed on it). Each move is an `UnsubscribeUpstream` on the
    /// old link plus a fresh subscribe on the recovered one, counted in
    /// [`RelayStats::rebalances`].
    pub fn on_uplink_up(&mut self, uplink: LinkId) -> Vec<RelayAction> {
        self.set_link_health(uplink, true);
        let mut actions = Vec::new();
        let mut moves: Vec<(FullTrackName, LinkId, LinkId)> = Vec::new();
        for (track, st) in self.tracks.iter_mut() {
            let Some(cur) = st.upstream else { continue };
            if st.subscribers.is_empty() {
                continue;
            }
            let Some(new) = route_link(
                self.federation.as_ref(),
                &self.peers_up,
                self.policy.as_ref(),
                &self.health,
                track,
            ) else {
                continue;
            };
            if new == cur {
                continue;
            }
            st.upstream = Some(new);
            self.stats.rebalances += 1;
            self.stats.upstream_subscribes += 1;
            if new >= self.health.len() {
                self.stats.origin_offload += 1;
            }
            moves.push((track.clone(), cur, new));
        }
        for (track, cur, new) in moves {
            actions.push(RelayAction::UnsubscribeUpstream {
                track: track.clone(),
                uplink: cur,
            });
            actions.push(self.subscribe_action(track, new));
        }
        actions
    }

    /// An object arrived over link `link` on `track`: counts federated
    /// (peer-link) traffic in [`RelayStats::peer_objects`], then caches
    /// and fans out exactly like [`RelayCore::on_upstream_object`].
    pub fn on_link_object(
        &mut self,
        link: LinkId,
        track: &FullTrackName,
        object: Object,
    ) -> Vec<RelayAction> {
        if self.link_class(link) == LinkClass::Peer {
            self.stats.peer_objects += 1;
        }
        self.on_upstream_object(track, object)
    }

    /// An object arrived from upstream on `track`: cache + fan out.
    /// The payload is moved through untouched, and *shared*: caching and
    /// every per-subscriber [`RelayAction::Forward`] clone the payload
    /// handle (a refcount bump), so publish cost is O(1) in subscriber
    /// count for payload bytes copied.
    pub fn on_upstream_object(
        &mut self,
        track: &FullTrackName,
        object: Object,
    ) -> Vec<RelayAction> {
        let Some(st) = self.tracks.get_mut(track) else {
            return Vec::new();
        };
        st.cache
            .insert((object.group_id, object.object_id), object.payload.clone());
        if self.cache_per_track > 0 {
            while st.cache.len() > self.cache_per_track {
                let oldest = *st.cache.keys().next().unwrap();
                st.cache.remove(&oldest);
            }
        }
        let mut actions = Vec::with_capacity(st.subscribers.len());
        for &(session, request_id) in &st.subscribers {
            self.stats.objects_forwarded += 1;
            actions.push(RelayAction::Forward {
                session,
                request_id,
                object: object.clone(),
            });
        }
        actions
    }

    /// The fetch action for `track` on `link`, typed by link class, with
    /// peer-traffic counters applied. A peer fetch is stamped with
    /// `stamp_budget`, the hops the *receiver* may still spend.
    fn fetch_action(
        &mut self,
        track: FullTrackName,
        link: LinkId,
        start_group: u64,
        end_group: u64,
        stamp_budget: u64,
    ) -> RelayAction {
        match self.link_class(link) {
            LinkClass::Parent => RelayAction::FetchUpstream {
                track,
                uplink: link,
                start_group,
                end_group,
            },
            LinkClass::Peer => {
                self.stats.peer_fetches += 1;
                self.stats.origin_offload += 1;
                RelayAction::FetchPeer {
                    track,
                    link,
                    start_group,
                    end_group,
                    hop_budget: stamp_budget,
                }
            }
        }
    }

    /// Budget stamped on a freshly originated peer fetch (the hop being
    /// taken is already spent).
    fn fresh_peer_budget(&self) -> u64 {
        self.federation
            .as_ref()
            .map(|f| f.hop_budget.saturating_sub(1))
            .unwrap_or(0)
    }

    /// A downstream fetch for groups `[start_group, end_group]` of `track`.
    /// Served from cache when the range is present; coalesced into an
    /// in-flight upstream fetch for the same track when one covers the
    /// range; otherwise escalated on the track's current link (or the
    /// routing's pick for it — a peer link when the track is federated
    /// and homed elsewhere).
    pub fn on_downstream_fetch(
        &mut self,
        session: SessionKey,
        request_id: u64,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
    ) -> Vec<RelayAction> {
        let budget = self
            .federation
            .as_ref()
            .map(|f| f.hop_budget)
            .unwrap_or(u64::MAX);
        self.fetch_inner(session, request_id, track, start_group, end_group, budget)
    }

    /// A federation fetch arrived from a peer core carrying `hop_budget`.
    /// Identical to a downstream fetch except that re-forwarding it to
    /// *another* peer spends budget: a fetch that would need a peer hop
    /// with budget 0 is rejected instead of forwarded, so a rerouted
    /// request can never cycle through the core graph.
    pub fn on_peer_fetch(
        &mut self,
        session: SessionKey,
        request_id: u64,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
        hop_budget: u64,
    ) -> Vec<RelayAction> {
        self.fetch_inner(
            session,
            request_id,
            track,
            start_group,
            end_group,
            hop_budget,
        )
    }

    fn fetch_inner(
        &mut self,
        session: SessionKey,
        request_id: u64,
        track: FullTrackName,
        start_group: u64,
        end_group: u64,
        budget: u64,
    ) -> Vec<RelayAction> {
        let st = self.tracks.entry(track.clone()).or_default();
        let objects: Vec<Object> = st
            .cache
            .range((start_group, 0)..=(end_group, u64::MAX))
            .map(|(&(g, o), payload)| Object {
                group_id: g,
                object_id: o,
                payload: payload.clone(),
            })
            .collect();
        if let (Some(largest), false) = (st.largest(), objects.is_empty()) {
            self.stats.fetch_cache_hits += 1;
            return vec![RelayAction::ServeFetch {
                session,
                request_id,
                largest,
                objects,
            }];
        }
        // Cache miss: this fetch will occupy upstream capacity, so it
        // spends the session's budget. A fetch-bomber issuing cold-track
        // fetches faster than answers return saturates its budget, gets
        // throttled, and past the throttle cap is evicted outright.
        {
            let b = self.budgets.entry(session).or_default();
            if b.outstanding >= self.limits.max_outstanding_fetches_per_session {
                b.throttles += 1;
                self.stats.throttled_fetches += 1;
                let evict = b.throttles >= self.limits.evict_after_throttles;
                let mut actions = vec![RelayAction::RejectFetch {
                    session,
                    request_id,
                }];
                if evict {
                    self.budgets.remove(&session);
                    self.stats.evicted_sessions += 1;
                    actions.push(RelayAction::CloseSession { session });
                }
                return actions;
            }
            b.outstanding += 1;
        }
        self.stats.fetch_cache_misses += 1;
        let waiter = Waiter {
            session,
            request_id,
            start_group,
            end_group,
        };
        if let Some(p) = self.pending.get_mut(&track) {
            if p.start_group <= start_group && end_group <= p.end_group {
                // The stampede case: an upstream fetch covering this range
                // is already in flight — join its waiter list. A budgeted
                // peer fetch may always coalesce: joining spends no hop.
                p.waiters.push(waiter);
                self.stats.fetch_coalesced += 1;
                return Vec::new();
            }
        }
        let uplink = st
            .upstream
            .or_else(|| {
                route_link(
                    self.federation.as_ref(),
                    &self.peers_up,
                    self.policy.as_ref(),
                    &self.health,
                    &track,
                )
            })
            .unwrap_or(0);
        if self.link_class(uplink) == LinkClass::Peer && budget == 0 {
            // Forwarding to another peer would exceed the hop budget:
            // reject rather than risk a routing cycle. Nothing was
            // parked, so the budget charge above is refunded.
            self.release_fetch_budget(session);
            return vec![RelayAction::RejectFetch {
                session,
                request_id,
            }];
        }
        // New upstream fetch. If a narrower one was in flight, widen the
        // recorded range to the union, re-issue for the union, and keep
        // its waiters: each result serves exactly the waiters it covers
        // (relay fetches are whole-track in practice, so the two-fetch
        // case is a correctness backstop).
        let entry = self.pending.entry(track.clone()).or_insert(PendingFetch {
            uplink,
            start_group,
            end_group,
            outstanding: 0,
            waiters: Vec::new(),
        });
        entry.start_group = entry.start_group.min(start_group);
        entry.end_group = entry.end_group.max(end_group);
        entry.outstanding += 1;
        let (start_group, end_group) = (entry.start_group, entry.end_group);
        entry.waiters.push(waiter);
        self.stats.upstream_fetches += 1;
        let stamp = budget.saturating_sub(1);
        vec![self.fetch_action(track, uplink, start_group, end_group, stamp)]
    }

    /// The node completed an upstream fetch triggered by
    /// [`RelayAction::FetchUpstream`] / [`RelayAction::FetchPeer`],
    /// answering a whole-track request: cache the objects and fan the
    /// result out to every downstream fetch blocked in the waiter list
    /// (each served exactly once).
    pub fn on_upstream_fetch_result(
        &mut self,
        track: &FullTrackName,
        objects: Vec<Object>,
    ) -> Vec<RelayAction> {
        self.on_upstream_fetch_result_range(track, objects, 0, u64::MAX)
    }

    /// Like [`RelayCore::on_upstream_fetch_result`], but the answer is
    /// known to cover only groups `[ans_start, ans_end]` (the range the
    /// fetch requested). Waiters whose requested range that answer covers
    /// are served now (from the updated cache); waiters blocked on a
    /// wider re-issued fetch stay pending until it lands — a narrow
    /// result must never short-serve a whole-track waiter.
    pub fn on_upstream_fetch_result_range(
        &mut self,
        track: &FullTrackName,
        objects: Vec<Object>,
        ans_start: u64,
        ans_end: u64,
    ) -> Vec<RelayAction> {
        let st = self.tracks.entry(track.clone()).or_default();
        for o in &objects {
            st.cache
                .insert((o.group_id, o.object_id), o.payload.clone());
        }
        let largest = st.largest().unwrap_or((0, 0));
        let Some(p) = self.pending.get_mut(track) else {
            self.evict(track);
            return Vec::new();
        };
        p.outstanding = p.outstanding.saturating_sub(1);
        let exhausted = p.outstanding == 0;
        let (ready, kept): (Vec<Waiter>, Vec<Waiter>) = std::mem::take(&mut p.waiters)
            .into_iter()
            // When nothing remains in flight, everything that will
            // arrive has arrived: serve everyone left.
            .partition(|w| exhausted || (ans_start <= w.start_group && w.end_group <= ans_end));
        if kept.is_empty() && exhausted {
            self.pending.remove(track);
        } else {
            p.waiters = kept;
        }
        for w in &ready {
            self.release_fetch_budget(w.session);
        }
        // Serve waiters from the cache *before* eviction trims it: the
        // pre-eviction cache holds this whole result plus every earlier
        // partial answer, so a bounded cache never truncates what a
        // waiter receives.
        let st = self.tracks.get(track).expect("entry created above");
        self.stats.fetch_waiters_served += ready.len() as u64;
        let actions: Vec<RelayAction> = ready
            .into_iter()
            .map(|w| RelayAction::ServeFetch {
                session: w.session,
                request_id: w.request_id,
                largest,
                // Each waiter gets only the groups it asked for — the
                // same filter the cache-hit path applies.
                objects: st
                    .cache
                    .range((w.start_group, 0)..=(w.end_group, u64::MAX))
                    .map(|(&(g, o), payload)| Object {
                        group_id: g,
                        object_id: o,
                        payload: payload.clone(),
                    })
                    .collect(),
            })
            .collect();
        self.evict(track);
        actions
    }

    /// Returns one unit of fetch budget to `session` (its waiter left the
    /// pending table: served, rejected, or purged).
    fn release_fetch_budget(&mut self, session: SessionKey) {
        if let Some(b) = self.budgets.get_mut(&session) {
            b.outstanding = b.outstanding.saturating_sub(1);
        }
    }

    /// Trims `track`'s cache to the per-track cap (oldest groups first).
    fn evict(&mut self, track: &FullTrackName) {
        if self.cache_per_track == 0 {
            return;
        }
        let Some(st) = self.tracks.get_mut(track) else {
            return;
        };
        while st.cache.len() > self.cache_per_track {
            let oldest = *st.cache.keys().next().unwrap();
            st.cache.remove(&oldest);
        }
    }

    /// An upstream fetch for `track` failed (rejected or its link could
    /// not be dialed). If a wider re-issued fetch is still in flight the
    /// waiters keep waiting on it; otherwise every blocked waiter is
    /// rejected.
    pub fn on_upstream_fetch_failed(&mut self, track: &FullTrackName) -> Vec<RelayAction> {
        let Some(p) = self.pending.get_mut(track) else {
            return Vec::new();
        };
        p.outstanding = p.outstanding.saturating_sub(1);
        if p.outstanding > 0 {
            return Vec::new();
        }
        let p = self.pending.remove(track).unwrap();
        for w in &p.waiters {
            self.release_fetch_budget(w.session);
        }
        p.waiters
            .into_iter()
            .map(|w| RelayAction::RejectFetch {
                session: w.session,
                request_id: w.request_id,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track(n: u8) -> FullTrackName {
        FullTrackName::new(vec![vec![n]], vec![n, n]).unwrap()
    }

    fn obj(group: u64, payload: &[u8]) -> Object {
        Object {
            group_id: group,
            object_id: 0,
            payload: payload.into(),
        }
    }

    #[test]
    fn first_subscriber_triggers_upstream() {
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_subscribe(1, 2, track(1));
        assert_eq!(a.len(), 2);
        assert!(matches!(
            a[0],
            RelayAction::SubscribeUpstream { uplink: 0, .. }
        ));
        assert!(matches!(
            a[1],
            RelayAction::AcceptDownstream { largest: None, .. }
        ));
    }

    #[test]
    fn aggregation_single_upstream_for_many_downstream() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        let a2 = r.on_downstream_subscribe(2, 2, track(1));
        let a3 = r.on_downstream_subscribe(3, 4, track(1));
        // Only accepts; no further upstream subscribes.
        assert!(a2
            .iter()
            .all(|a| !matches!(a, RelayAction::SubscribeUpstream { .. })));
        assert!(a3
            .iter()
            .all(|a| !matches!(a, RelayAction::SubscribeUpstream { .. })));
        assert_eq!(r.stats().upstream_subscribes, 1);
        assert_eq!(r.stats().downstream_subscribes, 3);
        assert!((r.aggregation_factor() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn objects_fan_out_to_all_subscribers() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_subscribe(2, 2, track(1));
        let acts = r.on_upstream_object(&track(1), obj(7, b"payload"));
        assert_eq!(acts.len(), 2);
        for a in &acts {
            match a {
                RelayAction::Forward { object, .. } => {
                    assert_eq!(object.group_id, 7);
                    assert_eq!(object.payload, b"payload");
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(r.stats().objects_forwarded, 2);
    }

    #[test]
    fn late_subscriber_sees_cached_largest() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_upstream_object(&track(1), obj(9, b"v9"));
        let a = r.on_downstream_subscribe(2, 2, track(1));
        assert!(a.iter().any(|a| matches!(
            a,
            RelayAction::AcceptDownstream {
                largest: Some((9, 0)),
                ..
            }
        )));
    }

    #[test]
    fn fetch_served_from_cache() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_upstream_object(&track(1), obj(5, b"v5"));
        let a = r.on_downstream_fetch(2, 8, track(1), 5, 5);
        match &a[0] {
            RelayAction::ServeFetch {
                objects, largest, ..
            } => {
                assert_eq!(objects.len(), 1);
                assert_eq!(*largest, (5, 0));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.stats().fetch_cache_hits, 1);
    }

    #[test]
    fn fetch_miss_escalates_upstream_then_serves() {
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_fetch(2, 8, track(1), 5, 5);
        assert!(matches!(a[0], RelayAction::FetchUpstream { uplink: 0, .. }));
        assert_eq!(r.stats().fetch_cache_misses, 1);
        assert_eq!(r.stats().upstream_fetches, 1);
        assert_eq!(r.pending_fetch_count(), 1);
        let a = r.on_upstream_fetch_result(&track(1), vec![obj(5, b"v5")]);
        assert_eq!(a.len(), 1, "one waiter, one ServeFetch");
        match &a[0] {
            RelayAction::ServeFetch {
                session,
                request_id,
                objects,
                ..
            } => {
                assert_eq!((*session, *request_id), (2, 8));
                assert_eq!(objects.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.pending_fetch_count(), 0);
        // Now cached for the next fetch.
        let a = r.on_downstream_fetch(3, 2, track(1), 5, 5);
        assert!(matches!(a[0], RelayAction::ServeFetch { .. }));
    }

    #[test]
    fn fetch_stampede_coalesces_to_one_upstream_fetch() {
        // N concurrent same-track joining fetches -> ONE FetchUpstream;
        // the single result fans out to every blocked downstream.
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_fetch(1, 10, track(1), 0, u64::MAX);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
        for s in 2..=8u64 {
            let a = r.on_downstream_fetch(s, 10 + s, track(1), 0, u64::MAX);
            assert!(a.is_empty(), "coalesced into the in-flight fetch");
        }
        assert_eq!(r.stats().fetch_cache_misses, 8);
        assert_eq!(r.stats().fetch_coalesced, 7);
        assert_eq!(r.stats().upstream_fetches, 1);

        let acts = r.on_upstream_fetch_result(&track(1), vec![obj(3, b"v3")]);
        assert_eq!(acts.len(), 8, "every waiter served");
        let mut served: Vec<(u64, u64)> = acts
            .iter()
            .map(|a| match a {
                RelayAction::ServeFetch {
                    session,
                    request_id,
                    objects,
                    largest,
                } => {
                    assert_eq!(objects.len(), 1);
                    assert_eq!(*largest, (3, 0));
                    (*session, *request_id)
                }
                other => panic!("{other:?}"),
            })
            .collect();
        served.sort_unstable();
        served.dedup();
        assert_eq!(served.len(), 8, "each downstream served exactly once");
        assert_eq!(r.stats().fetch_waiters_served, 8);
        // The result is cached: a late fetch is a plain hit.
        let a = r.on_downstream_fetch(99, 1, track(1), 0, u64::MAX);
        assert!(matches!(a[0], RelayAction::ServeFetch { .. }));
    }

    #[test]
    fn waiter_fanout_filters_objects_to_each_requested_range() {
        // A wide fetch opens the upstream fetch; a narrower one coalesces.
        // The fan-out must serve each waiter only the groups it asked for,
        // like the cache-hit path would.
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_fetch(1, 10, track(1), 0, 10);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
        assert!(r.on_downstream_fetch(2, 20, track(1), 2, 3).is_empty());
        let acts = r.on_upstream_fetch_result(&track(1), (0..=5).map(|g| obj(g, b"x")).collect());
        assert_eq!(acts.len(), 2);
        for a in &acts {
            match a {
                RelayAction::ServeFetch {
                    session, objects, ..
                } => {
                    let groups: Vec<u64> = objects.iter().map(|o| o.group_id).collect();
                    match session {
                        1 => assert_eq!(groups, vec![0, 1, 2, 3, 4, 5]),
                        2 => assert_eq!(groups, vec![2, 3], "narrow waiter filtered"),
                        other => panic!("unexpected session {other}"),
                    }
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn narrow_result_does_not_short_serve_widened_waiter() {
        // Reverse order of the stampede: a narrow fetch is in flight when
        // a whole-track fetch arrives. The union is re-issued; the narrow
        // result must serve ONLY the narrow waiter, and the wide waiter
        // is served when the union result lands — with everything.
        let mut r = RelayCore::new(0);
        let a = r.on_downstream_fetch(1, 10, track(1), 0, 2);
        assert!(matches!(
            a[0],
            RelayAction::FetchUpstream {
                start_group: 0,
                end_group: 2,
                ..
            }
        ));
        let a = r.on_downstream_fetch(2, 20, track(1), 0, u64::MAX);
        assert!(
            matches!(
                a[0],
                RelayAction::FetchUpstream {
                    end_group: u64::MAX,
                    ..
                }
            ),
            "union re-issued: {a:?}"
        );
        assert_eq!(r.stats().upstream_fetches, 2);
        // The narrow answer arrives first: only session 1 is served.
        let acts = r.on_upstream_fetch_result_range(&track(1), vec![obj(1, b"v1")], 0, 2);
        assert_eq!(acts.len(), 1);
        assert!(matches!(
            acts[0],
            RelayAction::ServeFetch { session: 1, .. }
        ));
        assert_eq!(r.pending_fetch_count(), 1, "wide waiter still pending");
        // The union answer lands: the wide waiter gets the full range
        // (including the earlier narrow result, via the cache).
        let acts = r.on_upstream_fetch_result_range(&track(1), vec![obj(5, b"v5")], 0, u64::MAX);
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            RelayAction::ServeFetch {
                session, objects, ..
            } => {
                assert_eq!(*session, 2);
                let groups: Vec<u64> = objects.iter().map(|o| o.group_id).collect();
                assert_eq!(groups, vec![1, 5], "full range, both results");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.pending_fetch_count(), 0);
        assert_eq!(r.stats().fetch_waiters_served, 2);
    }

    #[test]
    fn bounded_cache_does_not_truncate_fetch_results_to_waiters() {
        // cache cap 2, upstream result of 5 groups: the waiter must see
        // all 5 (served before eviction); the cache keeps the 2 newest.
        let mut r = RelayCore::new(2);
        let a = r.on_downstream_fetch(1, 10, track(1), 0, u64::MAX);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
        let acts = r.on_upstream_fetch_result(&track(1), (1..=5).map(|g| obj(g, b"x")).collect());
        match &acts[0] {
            RelayAction::ServeFetch { objects, .. } => {
                let groups: Vec<u64> = objects.iter().map(|o| o.group_id).collect();
                assert_eq!(groups, vec![1, 2, 3, 4, 5], "full result served");
            }
            other => panic!("{other:?}"),
        }
        // Eviction still applied afterwards: only groups 4, 5 remain.
        let a = r.on_downstream_fetch(2, 20, track(1), 4, 5);
        assert!(matches!(a[0], RelayAction::ServeFetch { .. }));
        let a = r.on_downstream_fetch(2, 30, track(1), 1, 3);
        assert!(
            matches!(a[0], RelayAction::FetchUpstream { .. }),
            "older groups evicted: {a:?}"
        );
    }

    #[test]
    fn narrow_failure_keeps_waiters_on_inflight_union_fetch() {
        let mut r = RelayCore::new(0);
        r.on_downstream_fetch(1, 10, track(1), 0, 2);
        r.on_downstream_fetch(2, 20, track(1), 0, u64::MAX);
        // The narrow fetch fails, but the union fetch is still in
        // flight: nobody is rejected yet.
        assert!(r.on_upstream_fetch_failed(&track(1)).is_empty());
        assert_eq!(r.pending_fetch_count(), 1);
        // The union result serves BOTH waiters.
        let acts = r.on_upstream_fetch_result_range(&track(1), vec![obj(1, b"v")], 0, u64::MAX);
        assert_eq!(acts.len(), 2);
        assert!(acts
            .iter()
            .all(|a| matches!(a, RelayAction::ServeFetch { .. })));
        // And if every in-flight fetch fails, waiters are rejected.
        r.on_downstream_fetch(3, 30, track(2), 0, 2);
        r.on_downstream_fetch(4, 40, track(2), 0, u64::MAX);
        assert!(r.on_upstream_fetch_failed(&track(2)).is_empty());
        let acts = r.on_upstream_fetch_failed(&track(2));
        assert_eq!(acts.len(), 2);
        assert!(acts
            .iter()
            .all(|a| matches!(a, RelayAction::RejectFetch { .. })));
    }

    #[test]
    fn failed_upstream_fetch_rejects_all_waiters() {
        let mut r = RelayCore::new(0);
        r.on_downstream_fetch(1, 10, track(1), 0, u64::MAX);
        r.on_downstream_fetch(2, 20, track(1), 0, u64::MAX);
        let acts = r.on_upstream_fetch_failed(&track(1));
        assert_eq!(acts.len(), 2);
        assert!(acts
            .iter()
            .all(|a| matches!(a, RelayAction::RejectFetch { .. })));
        assert_eq!(r.pending_fetch_count(), 0);
        // A later fetch opens a fresh upstream fetch.
        let a = r.on_downstream_fetch(3, 30, track(1), 0, u64::MAX);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
    }

    #[test]
    fn pending_fetch_reissued_when_uplink_dies() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(Failover));
        let a = r.on_downstream_fetch(1, 10, track(1), 0, u64::MAX);
        let died = match a[0] {
            RelayAction::FetchUpstream { uplink, .. } => uplink,
            ref other => panic!("{other:?}"),
        };
        let acts = r.on_uplink_closed(died);
        // The in-flight fetch moves to the surviving uplink, waiters kept.
        let refetched = acts.iter().find_map(|a| match a {
            RelayAction::FetchUpstream { uplink, .. } => Some(*uplink),
            _ => None,
        });
        assert_eq!(refetched, Some(1 - died));
        assert_eq!(r.pending_fetch_count(), 1);
        let served = r.on_upstream_fetch_result(&track(1), vec![obj(1, b"x")]);
        assert_eq!(served.len(), 1);
    }

    #[test]
    fn pending_fetch_rejected_when_no_uplink_left() {
        let mut r = RelayCore::new(0); // StaticParent: only uplink 0.
        r.on_downstream_fetch(1, 10, track(1), 0, u64::MAX);
        let acts = r.on_uplink_closed(0);
        // StaticParent routes back to the dead uplink 0: the fetch cannot
        // move, so the waiter is rejected (the node would redial for the
        // *subscription*, but an in-flight fetch has no result coming).
        assert!(acts.iter().any(|a| matches!(
            a,
            RelayAction::RejectFetch {
                session: 1,
                request_id: 10
            }
        )));
        assert_eq!(r.pending_fetch_count(), 0);
    }

    #[test]
    fn last_unsubscribe_drops_upstream() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_subscribe(2, 4, track(1));
        assert!(r.on_downstream_unsubscribe(1, 2).is_empty());
        let a = r.on_downstream_unsubscribe(2, 4);
        assert!(matches!(a[0], RelayAction::UnsubscribeUpstream { .. }));
        assert_eq!(r.upstream_count(), 0);
    }

    #[test]
    fn session_close_drops_all_its_subscriptions() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_subscribe(1, 4, track(2));
        r.on_downstream_subscribe(2, 2, track(1));
        let a = r.on_session_closed(1);
        // track(2) loses its last subscriber; track(1) still has session 2.
        assert_eq!(a.len(), 1);
        assert!(matches!(
            &a[0],
            RelayAction::UnsubscribeUpstream { track: t, .. } if *t == track(2)
        ));
        assert_eq!(r.subscriber_count(), 1);
    }

    #[test]
    fn cache_eviction_keeps_newest_groups() {
        let mut r = RelayCore::new(2);
        r.on_downstream_subscribe(1, 2, track(1));
        for g in 1..=5 {
            r.on_upstream_object(&track(1), obj(g, b"x"));
        }
        // Only groups 4 and 5 remain.
        let a = r.on_downstream_fetch(2, 8, track(1), 4, 5);
        match &a[0] {
            RelayAction::ServeFetch { objects, .. } => {
                assert_eq!(
                    objects.iter().map(|o| o.group_id).collect::<Vec<_>>(),
                    vec![4, 5]
                );
            }
            other => panic!("{other:?}"),
        }
        let a = r.on_downstream_fetch(2, 10, track(1), 1, 3);
        assert!(matches!(a[0], RelayAction::FetchUpstream { .. }));
    }

    #[test]
    fn payload_is_passed_through_byte_identical() {
        // The relay never interprets payloads: any bytes survive intact.
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        let weird: Vec<u8> = (0..=255).collect();
        let acts = r.on_upstream_object(&track(1), obj(1, &weird));
        match &acts[0] {
            RelayAction::Forward { object, .. } => assert_eq!(object.payload, weird),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fanout_shares_payload_storage() {
        // Zero-copy invariant: every Forward action and the cache entry
        // reference the published object's backing bytes — no
        // per-subscriber payload copies.
        let mut r = RelayCore::new(0);
        for s in 0..32 {
            r.on_downstream_subscribe(s, 2, track(1));
        }
        let object = obj(3, &[0x5A; 600]);
        let original = object.payload.clone();
        let acts = r.on_upstream_object(&track(1), object);
        assert_eq!(acts.len(), 32);
        for a in &acts {
            match a {
                RelayAction::Forward { object, .. } => {
                    assert!(object.payload.shares_storage_with(&original));
                }
                other => panic!("{other:?}"),
            }
        }
        // Cached fetch responses share it too.
        let a = r.on_downstream_fetch(99, 1, track(1), 3, 3);
        match &a[0] {
            RelayAction::ServeFetch { objects, .. } => {
                assert!(objects[0].payload.shares_storage_with(&original));
            }
            other => panic!("{other:?}"),
        }
    }

    // ---- routing ----

    fn subscribed_uplink(actions: &[RelayAction]) -> Option<UplinkId> {
        actions.iter().find_map(|a| match a {
            RelayAction::SubscribeUpstream { uplink, .. } => Some(*uplink),
            _ => None,
        })
    }

    #[test]
    fn hash_shard_spreads_tracks_across_uplinks() {
        let mut r = RelayCore::with_policy(0, 4, Box::new(HashShard));
        let mut used = [false; 4];
        for t in 0..32u8 {
            let a = r.on_downstream_subscribe(t as u64, 2, track(t));
            let u = subscribed_uplink(&a).expect("routed");
            assert!(u < 4);
            used[u] = true;
        }
        // 32 distinct tracks over 4 shards: every shard sees traffic.
        assert!(used.iter().all(|&u| u), "all shards used: {used:?}");
    }

    #[test]
    fn hash_shard_same_track_same_uplink() {
        let route = |r: &mut RelayCore, t: u8| {
            let a = r.on_downstream_subscribe(t as u64, 2, track(t));
            subscribed_uplink(&a).unwrap()
        };
        let mut r1 = RelayCore::with_policy(0, 3, Box::new(HashShard));
        let mut r2 = RelayCore::with_policy(0, 3, Box::new(HashShard));
        for t in 0..16u8 {
            assert_eq!(route(&mut r1, t), route(&mut r2, t), "track {t}");
        }
    }

    #[test]
    fn failover_moves_tracks_to_surviving_uplink() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(Failover));
        let a = r.on_downstream_subscribe(1, 2, track(1));
        assert_eq!(subscribed_uplink(&a), Some(0), "primary first");
        let a = r.on_uplink_closed(0);
        assert_eq!(a.len(), 1, "one re-subscribe per affected track");
        assert_eq!(subscribed_uplink(&a), Some(1), "failed over");
        assert_eq!(r.stats().reroutes, 1);
        // Upstream objects keep flowing to the same downstream set.
        let acts = r.on_upstream_object(&track(1), obj(3, b"x"));
        assert_eq!(acts.len(), 1);
    }

    #[test]
    fn failover_back_pressure_when_all_down() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(Failover));
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_uplink_closed(0);
        let a = r.on_uplink_closed(1);
        // Everything down: policy falls back to uplink 0 (redial).
        assert_eq!(subscribed_uplink(&a), Some(0));
        // Recovery marks it healthy — and rebalances the track onto the
        // recovered uplink (better than a dead fallback).
        let a = r.on_uplink_up(1);
        assert!(r.health().is_up(1));
        assert_eq!(subscribed_uplink(&a), Some(1));
        assert_eq!(r.stats().rebalances, 1);
    }

    #[test]
    fn recovered_uplink_reclaims_its_hash_shard() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(HashShard));
        // Subscribe tracks until both shards carry at least one.
        let mut home = [Vec::new(), Vec::new()];
        for t in 0..8u8 {
            let a = r.on_downstream_subscribe(t as u64, 2, track(t));
            home[subscribed_uplink(&a).unwrap()].push(t);
        }
        assert!(!home[0].is_empty() && !home[1].is_empty());
        // Uplink 0 dies: its tracks ring-walk to uplink 1.
        let a = r.on_uplink_closed(0);
        assert_eq!(a.len(), home[0].len());
        assert_eq!(r.stats().reroutes, home[0].len() as u64);
        // Uplink 0 recovers: exactly its home tracks move back.
        let acts = r.on_uplink_up(0);
        let resubs: Vec<&RelayAction> = acts
            .iter()
            .filter(|a| matches!(a, RelayAction::SubscribeUpstream { uplink: 0, .. }))
            .collect();
        assert_eq!(resubs.len(), home[0].len(), "shard reclaimed");
        // Every move pairs an unsubscribe on the temporary uplink.
        let unsubs = acts
            .iter()
            .filter(|a| matches!(a, RelayAction::UnsubscribeUpstream { uplink: 1, .. }))
            .count();
        assert_eq!(unsubs, home[0].len());
        assert_eq!(r.stats().rebalances, home[0].len() as u64);
        // Tracks already home stay put: recovering uplink 1 moves nothing.
        assert!(r.on_uplink_up(1).is_empty());
    }

    #[test]
    fn reset_clears_state_keeps_counters() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(HashShard));
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_fetch(2, 8, track(2), 0, u64::MAX);
        r.on_uplink_closed(0);
        let before = r.stats();
        r.reset();
        assert_eq!(r.track_count(), 0);
        assert_eq!(r.pending_fetch_count(), 0);
        assert!(r.health().is_up(0), "health restarts optimistic");
        assert_eq!(r.stats(), before, "cumulative counters survive");
    }

    #[test]
    fn static_parent_redials_same_uplink() {
        let mut r = RelayCore::new(0);
        r.on_downstream_subscribe(1, 2, track(1));
        let a = r.on_uplink_closed(0);
        // Single parent: re-subscribe on uplink 0 (the node reconnects).
        assert_eq!(subscribed_uplink(&a), Some(0));
        assert_eq!(r.stats().reroutes, 0, "same uplink is not a reroute");
    }

    #[test]
    fn uplink_close_skips_subscriberless_tracks() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(Failover));
        r.on_downstream_subscribe(1, 2, track(1));
        r.on_downstream_unsubscribe(1, 2);
        // Cache/track state may remain, but nothing re-subscribes.
        assert!(r.on_uplink_closed(0).is_empty());
    }

    #[test]
    fn hash_shard_walks_ring_past_down_uplink() {
        let mut r = RelayCore::with_policy(0, 2, Box::new(HashShard));
        // Find a track whose home shard is 0.
        let t_home0 = (0..64u8)
            .find(|&t| track_hash(&track(t)).is_multiple_of(2))
            .expect("some track hashes to shard 0");
        let a = r.on_downstream_subscribe(1, 2, track(t_home0));
        assert_eq!(subscribed_uplink(&a), Some(0));
        let a = r.on_uplink_closed(0);
        assert_eq!(subscribed_uplink(&a), Some(1), "ring walk to healthy");
    }

    proptest::proptest! {
        /// Waiter fan-out is exact: for ANY interleaving of cache-missing
        /// same-track fetches (distinct (session, request) pairs), one
        /// upstream fetch is opened and its result serves every blocked
        /// downstream exactly once — no drops, no duplicates.
        #[test]
        fn prop_waiter_fanout_serves_each_exactly_once(
            n_waiters in 1usize..40,
            track_byte in 0u8..255,
        ) {
            let mut r = RelayCore::new(0);
            let t = track(track_byte);
            let mut expected = Vec::new();
            let mut upstream_fetches = 0;
            for i in 0..n_waiters {
                let (session, request_id) = (i as u64, (i * 7 + 3) as u64);
                expected.push((session, request_id));
                let acts = r.on_downstream_fetch(session, request_id, t.clone(), 0, u64::MAX);
                upstream_fetches +=
                    acts.iter()
                        .filter(|a| matches!(a, RelayAction::FetchUpstream { .. }))
                        .count();
            }
            proptest::prop_assert_eq!(upstream_fetches, 1);
            proptest::prop_assert_eq!(r.stats().fetch_coalesced, n_waiters as u64 - 1);

            let acts = r.on_upstream_fetch_result(&t, vec![obj(1, b"v")]);
            let mut served: Vec<(u64, u64)> = acts
                .iter()
                .map(|a| match a {
                    RelayAction::ServeFetch { session, request_id, .. } => {
                        (*session, *request_id)
                    }
                    other => panic!("{other:?}"),
                })
                .collect();
            served.sort_unstable();
            expected.sort_unstable();
            proptest::prop_assert_eq!(served, expected);
            proptest::prop_assert_eq!(r.stats().fetch_waiters_served, n_waiters as u64);
            proptest::prop_assert_eq!(r.pending_fetch_count(), 0);
        }
    }

    // ---- federation ----

    /// A federated core: one parent uplink (the origin) + peers.
    fn fed_core(my_shard: usize, shards: usize) -> RelayCore {
        RelayCore::with_policy(0, 1, Box::new(StaticParent))
            .federate(FederationConfig::new(my_shard, shards))
    }

    /// A track whose home shard (mod `shards`) is `want`.
    fn track_homed(want: usize, shards: usize) -> FullTrackName {
        (0..=255u8)
            .map(track)
            .find(|t| track_hash(t) % shards as u64 == want as u64)
            .expect("some track hashes to the wanted shard")
    }

    #[test]
    fn peer_link_shard_maps_are_inverse() {
        for shards in 2..6 {
            for my in 0..shards {
                let r = fed_core(my, shards);
                assert_eq!(r.parent_count(), 1);
                assert_eq!(r.peer_count(), shards - 1);
                for s in 0..shards {
                    match r.peer_link_for_shard(s) {
                        Some(link) => {
                            assert_ne!(s, my);
                            assert_eq!(r.link_class(link), LinkClass::Peer);
                            assert_eq!(r.shard_for_peer_link(link), Some(s));
                        }
                        None => assert_eq!(s, my, "only the own shard has no peer link"),
                    }
                }
            }
        }
    }

    #[test]
    fn federated_subscribe_splits_home_and_peer_tracks() {
        let shards = 3;
        let mut r = fed_core(1, shards);
        // Home track rides the parent uplink to the origin.
        let home = track_homed(1, shards);
        let a = r.on_downstream_subscribe(1, 2, home);
        assert!(matches!(
            a[0],
            RelayAction::SubscribeUpstream { uplink: 0, .. }
        ));
        // A track homed on shard 2 rides the peer link to that core.
        let remote = track_homed(2, shards);
        let a = r.on_downstream_subscribe(2, 2, remote);
        let expect_link = r.peer_link_for_shard(2).unwrap();
        assert!(matches!(
            a[0],
            RelayAction::SubscribePeer { link, .. } if link == expect_link
        ));
        assert_eq!(r.stats().origin_offload, 1);
    }

    #[test]
    fn federated_fetch_miss_goes_to_peer_with_budget() {
        let shards = 3;
        let mut r = fed_core(0, shards);
        let remote = track_homed(2, shards);
        let a = r.on_downstream_fetch(1, 10, remote.clone(), 0, u64::MAX);
        match &a[0] {
            RelayAction::FetchPeer {
                link, hop_budget, ..
            } => {
                assert_eq!(*link, r.peer_link_for_shard(2).unwrap());
                // Fresh budget minus the hop being taken.
                assert_eq!(*hop_budget, shards as u64 - 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.stats().peer_fetches, 1);
        assert_eq!(r.stats().upstream_fetches, 1, "peer fetches are upstream");
        assert_eq!(r.stats().origin_offload, 1);
        // The result fans out through the same waiter machinery.
        let served = r.on_upstream_fetch_result(&remote, vec![obj(1, b"x")]);
        assert_eq!(served.len(), 1);
        // A home-shard miss still escalates to the origin parent.
        let home = track_homed(0, shards);
        let a = r.on_downstream_fetch(2, 20, home, 0, u64::MAX);
        assert!(matches!(a[0], RelayAction::FetchUpstream { uplink: 0, .. }));
        assert_eq!(r.stats().peer_fetches, 1, "home fetch is not peer");
    }

    #[test]
    fn peer_fetch_with_exhausted_budget_is_rejected_not_forwarded() {
        let shards = 3;
        // Core 0 receives a peer fetch for a track homed on shard 2 —
        // misdirected, so serving it needs another peer hop.
        let mut r = fed_core(0, shards);
        let remote = track_homed(2, shards);
        let a = r.on_peer_fetch(7, 70, remote.clone(), 0, u64::MAX, 0);
        assert!(
            matches!(
                a[0],
                RelayAction::RejectFetch {
                    session: 7,
                    request_id: 70
                }
            ),
            "budget 0 + needed peer hop must reject: {a:?}"
        );
        assert_eq!(r.pending_fetch_count(), 0);
        // With budget left the same fetch forwards, spending one hop.
        let a = r.on_peer_fetch(7, 71, remote, 0, u64::MAX, 2);
        assert!(matches!(a[0], RelayAction::FetchPeer { hop_budget: 1, .. }));
    }

    #[test]
    fn dead_peer_falls_back_to_origin_and_rebalances_home() {
        let shards = 3;
        let mut r = fed_core(0, shards);
        let remote = track_homed(1, shards);
        let peer = r.peer_link_for_shard(1).unwrap();
        let a = r.on_downstream_subscribe(1, 2, remote.clone());
        assert!(matches!(a[0], RelayAction::SubscribePeer { link, .. } if link == peer));
        // The peer core dies: the track degrades to the origin parent.
        let a = r.on_uplink_closed(peer);
        assert!(!r.is_link_up(peer));
        assert!(matches!(
            a[0],
            RelayAction::SubscribeUpstream { uplink: 0, .. }
        ));
        assert_eq!(r.stats().reroutes, 1);
        // While the peer is down, a cache miss escalates to the origin.
        let a = r.on_downstream_fetch(2, 20, remote.clone(), 0, u64::MAX);
        assert!(matches!(a[0], RelayAction::FetchUpstream { uplink: 0, .. }));
        // Peer recovery rebalances the federated track home.
        let a = r.on_uplink_up(peer);
        assert!(r.is_link_up(peer));
        assert!(a
            .iter()
            .any(|x| matches!(x, RelayAction::UnsubscribeUpstream { uplink: 0, .. })));
        assert!(a
            .iter()
            .any(|x| matches!(x, RelayAction::SubscribePeer { link, .. } if *link == peer)));
        assert_eq!(r.stats().rebalances, 1);
    }

    #[test]
    fn peer_objects_counted_on_link_ingress() {
        let shards = 2;
        let mut r = fed_core(0, shards);
        let remote = track_homed(1, shards);
        r.on_downstream_subscribe(1, 2, remote.clone());
        let peer = r.peer_link_for_shard(1).unwrap();
        let acts = r.on_link_object(peer, &remote, obj(3, b"x"));
        assert_eq!(acts.len(), 1, "fans out to the subscriber");
        assert_eq!(r.stats().peer_objects, 1);
        // Parent-link ingress does not count as peer traffic.
        let home = track_homed(0, shards);
        r.on_downstream_subscribe(1, 4, home.clone());
        r.on_link_object(0, &home, obj(3, b"y"));
        assert_eq!(r.stats().peer_objects, 1);
    }

    #[test]
    fn reset_restores_peer_health() {
        let mut r = fed_core(0, 3);
        let peer = r.peer_link_for_shard(1).unwrap();
        r.on_uplink_closed(peer);
        assert!(!r.is_link_up(peer));
        r.reset();
        assert!(r.is_link_up(peer), "peers restart optimistic");
    }

    proptest::proptest! {
        /// Satellite: federation routing is loop-free. For random core
        /// counts, shard assignments (via the fetched track), and any
        /// single dead core or dead directed peer link, following a fetch
        /// through the core graph never revisits a core, and in the
        /// healthy case the hop budget is never exhausted (the chain
        /// terminates at the origin or in a bounded refusal).
        #[test]
        fn prop_federation_routing_is_loop_free(
            cores in 2usize..7,
            track_byte in 0u8..255,
            start_sel in 0usize..64,
            mode in 0u8..3,
            kill_sel in 0usize..64,
        ) {
            let k = cores;
            let mut nodes: Vec<RelayCore> = (0..k).map(|c| fed_core(c, k)).collect();
            // mode 0: healthy. mode 1: one dead core (every other core's
            // peer link toward it is down). mode 2: one dead directed
            // peer link.
            let dead_core = (mode == 1).then(|| kill_sel % k);
            if let Some(d) = dead_core {
                for (c, node) in nodes.iter_mut().enumerate() {
                    if c == d { continue; }
                    let l = node.peer_link_for_shard(d).unwrap();
                    node.on_uplink_closed(l);
                }
            }
            if mode == 2 {
                let a = kill_sel % k;
                let b = (a + 1 + kill_sel / k % (k - 1)) % k;
                let l = nodes[a].peer_link_for_shard(b).unwrap();
                nodes[a].on_uplink_closed(l);
            }
            let healthy = mode == 0;
            let t = track(track_byte);
            let mut cur = start_sel % k;
            if Some(cur) == dead_core {
                cur = (cur + 1) % k;
            }
            let mut visited = vec![cur];
            let mut actions = nodes[cur].on_downstream_fetch(1, 1, t.clone(), 0, u64::MAX);
            let mut hops = 0usize;
            loop {
                hops += 1;
                proptest::prop_assert!(hops <= k + 1, "unbounded chain");
                proptest::prop_assert_eq!(actions.len(), 1);
                match actions[0].clone() {
                    RelayAction::FetchPeer { link, hop_budget, .. } => {
                        let target = nodes[cur].shard_for_peer_link(link)
                            .expect("peer link maps to a shard");
                        proptest::prop_assert!(
                            !visited.contains(&target),
                            "fetch revisited core {} (path {:?})", target, visited
                        );
                        if healthy {
                            proptest::prop_assert!(hop_budget > 0, "budget exhausted while healthy");
                        }
                        visited.push(target);
                        cur = target;
                        actions = nodes[cur].on_peer_fetch(9, 9, t.clone(), 0, u64::MAX, hop_budget);
                    }
                    // Terminal outcomes: escalated to the origin parent,
                    // refused (budget/dead upstream), or coalesced into a
                    // previous in-flight fetch at this core.
                    RelayAction::FetchUpstream { uplink, .. } => {
                        proptest::prop_assert_eq!(uplink, 0);
                        if healthy {
                            // With all links healthy only the home core
                            // contacts the origin.
                            let fed = nodes[cur].federation().unwrap();
                            proptest::prop_assert_eq!(fed.home_shard(&t), fed.my_shard);
                        }
                        break;
                    }
                    RelayAction::RejectFetch { .. } => {
                        proptest::prop_assert!(!healthy, "healthy fetch must not be refused");
                        break;
                    }
                    other => proptest::prop_assert!(false, "unexpected action {:?}", other),
                }
            }
            proptest::prop_assert!(visited.len() <= k);
            if healthy {
                proptest::prop_assert!(visited.len() <= 2, "healthy path is one peer hop at most");
            }
        }
    }

    #[test]
    fn track_hash_is_stable() {
        // Pin the hash so accidental algorithm changes (which would
        // re-shard every deployed track) fail loudly.
        let t = FullTrackName::new(vec![b"ns".to_vec()], b"name".to_vec()).unwrap();
        assert_eq!(track_hash(&t), track_hash(&t));
        let t2 = FullTrackName::new(vec![b"ns2".to_vec()], b"name".to_vec()).unwrap();
        assert_ne!(track_hash(&t), track_hash(&t2));
        // Length-delimited: ["ab","c"] and ["a","bc"] must differ.
        let ab_c = FullTrackName::new(vec![b"ab".to_vec(), b"c".to_vec()], vec![]).unwrap();
        let a_bc = FullTrackName::new(vec![b"a".to_vec(), b"bc".to_vec()], vec![]).unwrap();
        assert_ne!(track_hash(&ab_c), track_hash(&a_bc));
    }
}
